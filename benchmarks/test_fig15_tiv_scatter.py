"""Figure 15 — TIV detours are not confined to any RTT range.

Paper: plotting best-detour RTT against default-path RTT for every TIV
pair shows violations across the whole range, all below the x=y line,
with a visible band of >=30% improvements.
"""

import numpy as np

from repro.analysis.report import TextTable
from repro.apps.tiv import detour_scatter


def test_fig15_tiv_scatter(allpairs_dataset, benchmark, report):
    dataset = allpairs_dataset

    def analyze():
        return detour_scatter(dataset.matrix)

    direct, detour = benchmark(analyze)
    assert len(direct) > 0, "dataset produced no TIVs at all"

    all_rtts = dataset.matrix.values()
    terciles = np.percentile(all_rtts, [33, 66])
    bands = [
        ("low RTT", direct < terciles[0]),
        ("mid RTT", (direct >= terciles[0]) & (direct < terciles[1])),
        ("high RTT", direct >= terciles[1]),
    ]
    big_savers = float(np.mean((direct - detour) / direct >= 0.30))

    table = TextTable(
        f"Figure 15: TIV scatter ({len(direct)} violated pairs)",
        ["default-RTT band", "TIV pairs", "mean saving"],
    )
    populated = 0
    for name, mask in bands:
        count = int(mask.sum())
        saving = (
            float(((direct[mask] - detour[mask]) / direct[mask]).mean())
            if count
            else 0.0
        )
        if count:
            populated += 1
        table.add_row(name, count, saving)
    report(
        table.render()
        + f"\nfraction of TIVs saving >= 30%: {big_savers:.2f} "
        "(paper: a visible band below the 30% line)"
    )

    # Shape: every detour strictly beats its direct path, and TIVs appear
    # in at least two RTT bands (not relegated to one range).
    assert (detour < direct).all()
    assert populated >= 2
