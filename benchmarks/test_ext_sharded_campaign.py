"""Extension — the sharded multiprocess campaign at 60-relay scale.

The claim under test: partitioning an all-pairs campaign across worker
processes (a) cuts the per-process event load by ~the shard count, (b)
beats the single-process campaign's wall clock whenever more than one
core is actually available, and (c) changes *nothing* about the data —
the merged matrix covers exactly the same pairs.

On a single-core box (CI containers are often pinned to one CPU) the
wall-clock assertion is vacuous — four workers timeshare one core and
pay the task-isolation overhead on top — so it is gated on the core
count and the per-process work reduction carries the guard instead.
"""

import functools
import os
import time

from _config import scaled
from repro.analysis.report import TextTable
from repro.core.parallel import ParallelCampaign
from repro.core.sampling import SamplePolicy
from repro.core.shard import ShardedCampaign
from repro.testbeds.livetor import LiveTorTestbed


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def test_ext_sharded_campaign(report):
    n_relays = scaled(60, minimum=60)
    workers = 4
    seed, network = 47, n_relays + 15
    policy = SamplePolicy(samples=scaled(6, minimum=4), interval_ms=2.0)
    factory = functools.partial(LiveTorTestbed.build, seed=seed, n_relays=network)

    testbed = factory()
    relays = testbed.random_relays(n_relays, testbed.streams.get("shard.bench"))
    start = time.perf_counter()
    single = ParallelCampaign(
        testbed.measurement, relays, policy=policy, concurrency=16
    ).run()
    single_wall = time.perf_counter() - start
    single_events = testbed.sim.events_processed

    sharded = ShardedCampaign(
        factory,
        [r.fingerprint for r in relays],
        policy=policy,
        workers=workers,
    ).run()
    peak_shard_events = max(s.events_processed for s in sharded.shards)

    table = TextTable(
        f"Extension: sharded campaign ({n_relays} relays, "
        f"{len(sharded.shards)} shards, {_cpus()} cpus)",
        ["metric", "single-process", f"sharded x{workers}"],
    )
    table.add_row("wall (s)", f"{single_wall:.1f}", f"{sharded.wall_s:.1f}")
    table.add_row("events total", single_events, sharded.events_processed)
    table.add_row("events peak/process", single_events, peak_shard_events)
    table.add_row("pairs measured", single.pairs_measured, sharded.pairs_measured)
    report(table.render())

    # (c) same coverage either way.
    assert sharded.matrix.is_complete
    assert sharded.pairs_measured == single.pairs_measured
    # The leg phase measured every relay exactly once, campaign-wide;
    # no worker rebuilt a leg the phase had already paid for.
    assert sharded.legs_measured == n_relays
    assert all(s.legs_measured == 0 for s in sharded.shards)
    # (a) per-process event load drops by ~the shard count; task
    # isolation may add a modest constant overhead, hence the slack.
    assert peak_shard_events * (workers - 1) < single_events
    # (b) with real cores behind the workers, wall clock must win too.
    if _cpus() >= 2:
        assert sharded.wall_s < single_wall
    else:
        report("single CPU visible: wall-clock comparison not meaningful")
