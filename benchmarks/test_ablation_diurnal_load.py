"""Ablation — the min filter under diurnal relay load.

The stability result (Figures 9/10) holds because Ting's minimum filter
converges on the propagation floor, which does not move when relay
queues swell at peak hours. This bench re-runs a stability-style
experiment against relays whose load follows a 24-hour cycle and
compares two estimators over the same sample traces:

* the min filter (Ting's) — flat across the day;
* a mean-of-samples variant — visibly tracking the load cycle.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.analysis.stats import coefficient_of_variation
from repro.core.sampling import SamplePolicy
from repro.core.ting import TingMeasurer
from repro.testbeds.livetor import LiveTorTestbed
from repro.tor.relay import DiurnalForwardingDelayModel


def test_ablation_min_filter_under_diurnal_load(benchmark, report):
    testbed = LiveTorTestbed.build(seed=92, n_relays=40)
    # Give the measured relays strong day cycles with staggered phases.
    diurnal_rng = testbed.streams.get("ablation.diurnal")
    for index, relay in enumerate(testbed.relays):
        relay.forwarding = DiurnalForwardingDelayModel(
            testbed.sim,
            diurnal_rng,
            base_load=0.05,
            peak_load=0.85,
            phase_ms=index * 3_600_000.0,
            queue_scale_ms=2.5,
        )
    rng = testbed.streams.get("ablation.pairs")
    pairs = testbed.random_pairs(scaled(4, minimum=3), rng)
    measurer = TingMeasurer(
        testbed.measurement,
        policy=SamplePolicy(samples=scaled(60, minimum=30), interval_ms=3.0),
    )
    rounds = scaled(8, minimum=6)

    def run_experiment():
        min_series = {i: [] for i in range(len(pairs))}
        mean_series = {i: [] for i in range(len(pairs))}
        for round_index in range(rounds):
            target = round_index * 3.0 * 3_600_000.0  # every 3 sim-hours
            if testbed.sim.now < target:
                testbed.sim.run(until=target)
            for i, (a, b) in enumerate(pairs):
                result = measurer.measure_pair(a, b)
                min_series[i].append(result.rtt_clamped_ms)
                mean_estimate = (
                    np.mean(result.circuit_xy.samples_ms)
                    - np.mean(result.circuit_x.samples_ms) / 2.0
                    - np.mean(result.circuit_y.samples_ms) / 2.0
                )
                mean_series[i].append(max(0.0, mean_estimate))
        return min_series, mean_series

    min_series, mean_series = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    min_cvs = np.array(
        [coefficient_of_variation(v) for v in min_series.values()]
    )
    mean_cvs = np.array(
        [coefficient_of_variation(v) for v in mean_series.values()]
    )

    table = TextTable(
        f"Ablation: estimator stability over a load cycle "
        f"({len(min_series)} pairs, {rounds} rounds across the day)",
        ["estimator", "median c_v", "max c_v"],
    )
    table.add_row("min filter (Ting)", float(np.median(min_cvs)), float(min_cvs.max()))
    table.add_row("mean of samples", float(np.median(mean_cvs)), float(mean_cvs.max()))
    report(table.render())

    # Shape: the min filter is the stabler estimator under load cycles.
    assert np.median(min_cvs) < np.median(mean_cvs)
    assert np.median(min_cvs) < 0.15
