"""Null-observability overhead guard (``pytest benchmarks -m benchguard``).

Campaigns always run through the observability call sites — span
context managers, counter increments, trace records — wired to null
sinks unless :meth:`enable_observability` swapped in live ones. The
sinks are ``__slots__`` singletons designed to cost a method dispatch
and nothing else, so the *sum* of every null call a campaign makes must
stay lost in the noise of the campaign itself.

The guard measures that sum directly instead of diffing two campaign
wall times (which would drown a 2% effect in scheduler noise): it
counts the call sites an instrumented run actually hits, times the
null ops in a tight loop, and asserts the product stays under 2% of
the real campaign's wall time.
"""

import time

import pytest

from _config import scaled
from repro.core.parallel import ParallelCampaign
from repro.core.sampling import SamplePolicy
from repro.obs import NULL_EVENTS, NULL_METRICS, NULL_SPANS, NULL_TRACE
from repro.testbeds.livetor import LiveTorTestbed

#: Null observability must cost less than this fraction of campaign wall.
OVERHEAD_CEILING = 0.02


def _best_of(rounds: int, run) -> float:
    """Best-of-N wall time: the minimum is the least noisy estimator."""
    return min(run() for _ in range(rounds))


def _null_costs_s() -> tuple[float, float]:
    """Seconds per (unguarded null call, ``enabled``-flag check)."""
    n = 200_000

    def time_loop(op) -> float:
        start = time.perf_counter()
        for _ in range(n):
            op()
        return time.perf_counter() - start

    def null_span():
        with NULL_SPANS.span("pair", x="A", y="B"):
            pass

    call_costs = [
        _best_of(3, lambda: time_loop(null_span)),
        _best_of(3, lambda: time_loop(lambda: NULL_METRICS.inc("c"))),
        _best_of(3, lambda: time_loop(lambda: NULL_TRACE.record(0.0, "e", x=1))),
    ]

    def enabled_check():
        if NULL_METRICS.enabled:
            raise AssertionError

    check_cost = _best_of(3, lambda: time_loop(enabled_check))
    return max(call_costs) / n, check_cost / n


@pytest.mark.benchguard
def test_null_observability_overhead_guard(report):
    """Every null observability call a campaign makes must sum to <2%."""
    n_relays = scaled(8, minimum=6)
    policy = SamplePolicy(samples=scaled(30, minimum=10), interval_ms=3.0)

    def build():
        testbed = LiveTorTestbed.build(
            seed=7, n_relays=scaled(60, minimum=20)
        )
        rng = testbed.streams.get("bench.obs")
        relays = testbed.random_relays(n_relays, rng)
        return testbed, relays

    # Count the call sites one real campaign hits, from a live run.
    # Hot-path metric and trace sites sit behind ``enabled`` checks, so
    # with null sinks they cost one attribute read each (counter values
    # and trace events approximate those check counts: each site bumps
    # by 1 / records once). Span sites and a handful of cold metric
    # sites call the null singleton unguarded: a begin and an end per
    # span plus the unguarded counters.
    testbed, relays = build()
    registry = testbed.measurement.enable_observability()
    ParallelCampaign(
        testbed.measurement,
        relays,
        policy=policy,
        isolation=testbed.task_isolation(),
    ).run()
    host = testbed.measurement
    counters = registry.snapshot()["counters"]
    unguarded_calls = 2 * len(host.spans) + sum(
        counters.get(name, 0)
        for name in (
            "tor.circuits_failed",
            "tor.streams_attached",
            "tor.stream_failures",
        )
    )
    guarded_checks = (
        sum(counters.values()) + len(host.trace) + host.trace.dropped
    )
    # Headroom for sites this model misses (gauges, histograms).
    unguarded_calls *= 2
    guarded_checks *= 2

    def time_campaign() -> float:
        testbed, relays = build()
        start = time.perf_counter()
        ParallelCampaign(
            testbed.measurement,
            relays,
            policy=policy,
            isolation=testbed.task_isolation(),
        ).run()
        return time.perf_counter() - start

    campaign_s = _best_of(2, time_campaign)
    per_call_s, per_check_s = _null_costs_s()
    null_s = per_call_s * unguarded_calls + per_check_s * guarded_checks
    fraction = null_s / campaign_s
    report(
        f"null observability: {unguarded_calls} calls x "
        f"{per_call_s * 1e9:.0f} ns + {guarded_checks} checks x "
        f"{per_check_s * 1e9:.0f} ns = {null_s * 1000:.2f} ms "
        f"against a {campaign_s * 1000:.0f} ms campaign "
        f"({fraction:.2%} of wall)"
    )
    assert fraction < OVERHEAD_CEILING


@pytest.mark.benchguard
def test_null_event_bus_overhead_guard(report):
    """Every ``NULL_EVENTS`` call a campaign makes must sum to <2%.

    The live-telemetry emit points (engine batch ticks, relay
    saturation, probe rounds, pair lifecycle) default to the
    :data:`NULL_EVENTS` singleton. Same methodology as the registry
    guard: count the emits one live run actually produces, time the
    null ops in a tight loop, assert the product stays lost in the
    campaign's own wall time.
    """
    n_relays = scaled(8, minimum=6)
    policy = SamplePolicy(samples=scaled(30, minimum=10), interval_ms=3.0)

    def build():
        testbed = LiveTorTestbed.build(
            seed=7, n_relays=scaled(60, minimum=20)
        )
        rng = testbed.streams.get("bench.obs")
        relays = testbed.random_relays(n_relays, rng)
        return testbed, relays

    # Count the emit sites one real campaign hits, from a live run.
    testbed, relays = build()
    bus = testbed.measurement.enable_events()
    ParallelCampaign(
        testbed.measurement,
        relays,
        policy=policy,
        isolation=testbed.task_isolation(),
    ).run()
    emitted = bus.emitted
    # Guarded sites (``events.enabled`` branches in the engine, relay,
    # and budget hot paths) fire far more often than emits — the batch
    # tick checks once per 4096 simulator events, saturation once per
    # cell backlog check. Bound them generously by the emit count plus
    # the batch ticks one run performs.
    batch_ticks = testbed.sim.events_processed // testbed.sim.BATCH_EVENTS + 1

    n = 200_000

    def time_loop(op) -> float:
        start = time.perf_counter()
        for _ in range(n):
            op()
        return time.perf_counter() - start

    per_emit_s = _best_of(
        3, lambda: time_loop(lambda: NULL_EVENTS.info("campaign", "pair", x=1))
    ) / n

    def enabled_check():
        if NULL_EVENTS.enabled:
            raise AssertionError

    per_check_s = _best_of(3, lambda: time_loop(enabled_check)) / n

    def time_campaign() -> float:
        testbed, relays = build()
        start = time.perf_counter()
        ParallelCampaign(
            testbed.measurement,
            relays,
            policy=policy,
            isolation=testbed.task_isolation(),
        ).run()
        return time.perf_counter() - start

    campaign_s = _best_of(2, time_campaign)
    # Headroom x2 for emit sites this model misses.
    null_s = 2 * (per_emit_s * emitted + per_check_s * (emitted + batch_ticks))
    fraction = null_s / campaign_s
    report(
        f"null events: {emitted} emits x {per_emit_s * 1e9:.0f} ns + "
        f"{emitted + batch_ticks} checks x {per_check_s * 1e9:.0f} ns = "
        f"{null_s * 1000:.2f} ms against a {campaign_s * 1000:.0f} ms "
        f"campaign ({fraction:.2%} of wall)"
    )
    assert fraction < OVERHEAD_CEILING
