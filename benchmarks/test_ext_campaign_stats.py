"""Extension — campaign-scale observability and hot-path guards.

Two things are measured at a scale the unit tests never reach (60+
relays, ~1800 pair tasks):

* The instrumented :class:`ParallelCampaign` — every counter the
  ``repro stats`` CLI reports is cross-checked against first principles
  (circuits = legs + pairs, probes sent = received + lost), and the
  simulator's heap compaction must actually engage: each probe run
  parks a far-future deadline and cancels it on success, so a campaign
  this size used to leave thousands of dead entries in the heap.
* The task-queue drain — the campaign pops one task per completion, and
  a ``list.pop(0)`` there is O(n^2) over the campaign. The guard times
  the old pattern against the ``deque.popleft`` fix at campaign scale
  so the regression cannot sneak back in silently.
"""

import time
from collections import deque

import pytest

from _config import scaled
from repro.analysis.report import TextTable
from repro.core.parallel import ParallelCampaign
from repro.core.sampling import SamplePolicy
from repro.testbeds.livetor import LiveTorTestbed


def _drain_seconds(make_queue, pop) -> float:
    queue = make_queue()
    start = time.perf_counter()
    while queue:
        pop(queue)
    return time.perf_counter() - start


@pytest.mark.benchguard
def test_queue_drain_guard(report):
    """deque.popleft must beat list.pop(0) decisively at campaign scale."""
    n_tasks = scaled(150_000, minimum=50_000)
    tasks = [("pair", str(i), str(i + 1)) for i in range(n_tasks)]
    list_s = _drain_seconds(lambda: list(tasks), lambda q: q.pop(0))
    deque_s = _drain_seconds(lambda: deque(tasks), lambda q: q.popleft())
    report(
        f"queue drain, {n_tasks} tasks: list.pop(0) {list_s * 1000:.0f} ms "
        f"vs deque.popleft {deque_s * 1000:.1f} ms "
        f"({list_s / deque_s:.0f}x)"
    )
    # The old pattern shuffles ~n^2/2 elements; the fix is linear. Any
    # honest margin is enormous — 10x keeps the guard timer-noise-proof.
    assert deque_s * 10 < list_s


def test_ext_campaign_stats(benchmark, report):
    n_relays = scaled(60, minimum=60)
    testbed = LiveTorTestbed.build(seed=47, n_relays=n_relays + 15)
    rng = testbed.streams.get("ext.stats.pairs")
    relays = testbed.random_relays(n_relays, rng)
    policy = SamplePolicy(samples=scaled(6, minimum=4), interval_ms=2.0)
    host = testbed.measurement
    registry = host.enable_observability()
    n_pairs = n_relays * (n_relays - 1) // 2

    def run_experiment():
        serial = ParallelCampaign(
            host, relays, policy=policy, concurrency=1
        ).run()
        wide = ParallelCampaign(
            host, relays, policy=policy, concurrency=16
        ).run()
        return serial, wide

    serial, wide = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    counters = registry.snapshot()["counters"]
    table = TextTable(
        f"Extension: instrumented campaign ({n_relays} relays, "
        f"{n_pairs} pairs, both concurrency levels)",
        ["metric", "value"],
    )
    for name in (
        "tor.circuits_built",
        "tor.circuits_failed",
        "echo.probes_sent",
        "echo.probes_received",
        "echo.probes_lost",
        "ting.leg_cache_hits",
        "ting.leg_cache_misses",
        "sim.heap_compactions",
        "sim.heap_compaction_purged",
    ):
        table.add_row(name, counters.get(name, 0))
    table.add_row("serial makespan (s)", f"{serial.makespan_ms / 1000:.0f}")
    table.add_row("wide makespan (s)", f"{wide.makespan_ms / 1000:.0f}")
    table.add_row(
        "speedup", f"{serial.makespan_ms / wide.makespan_ms:.1f}x"
    )
    report(table.render())

    # Accounting must close exactly: one circuit per leg task plus one
    # per pair task, per campaign run; every probe resolves.
    assert counters["tor.circuits_built"] == 2 * (n_relays + n_pairs)
    assert counters["ting.leg_cache_misses"] == 2 * n_relays
    assert counters["ting.leg_cache_hits"] == 2 * (
        serial.pairs_measured + wide.pairs_measured
    )
    assert (
        counters["echo.probes_sent"]
        == counters["echo.probes_received"] + counters["echo.probes_lost"]
    )
    # Cancelled probe deadlines must trigger compaction at this scale.
    assert counters["sim.heap_compactions"] >= 1
    assert counters["sim.heap_compaction_purged"] >= host.sim.compaction_min_cancelled
    # Concurrency 16 over ~1800 independent tasks: a real makespan win.
    assert wide.makespan_ms * 4 < serial.makespan_ms
    assert serial.matrix.is_complete
    assert wide.matrix.is_complete
