"""Figure 6 — how many samples until the running minimum converges.

Paper: 100 random live pairs, 1000 samples each. Reaching the true
minimum takes many samples (confirming Jansen et al.), but getting
within 1 ms of it takes ~25x fewer probes at the median.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.core.sampling import SamplePolicy, convergence_profile
from repro.core.ting import TingMeasurer
from repro.testbeds.livetor import LiveTorTestbed


def test_fig06_sample_convergence(benchmark, report):
    testbed = LiveTorTestbed.build(seed=61, n_relays=60)
    rng = testbed.streams.get("fig06.pairs")
    pairs = testbed.random_pairs(scaled(30, minimum=10), rng)
    samples = scaled(400, minimum=150)
    measurer = TingMeasurer(
        testbed.measurement,
        policy=SamplePolicy(samples=samples, interval_ms=3.0),
    )

    def run_experiment():
        profiles = []
        for a, b in pairs:
            measurement = measurer.measure_pair_circuit(a, b)
            profiles.append(convergence_profile(measurement.samples_ms))
        return profiles

    profiles = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        f"Figure 6: samples to reach minimum approximations "
        f"({len(pairs)} pairs x {samples} samples)",
        ["target", "median samples", "p90 samples"],
    )
    medians = {}
    for key in ("measured_min", "within_1ms", "within_1pct", "within_5pct", "within_10pct"):
        values = [p[key] for p in profiles]
        medians[key] = float(np.median(values))
        table.add_row(key, medians[key], float(np.percentile(values, 90)))
    ratio = medians["measured_min"] / max(medians["within_1ms"], 1.0)
    report(
        table.render()
        + f"\nmedian speedup for 'within 1 ms' vs true min: {ratio:.1f}x "
        "(paper: ~25x)"
    )

    # Shape: the true minimum is much more expensive than near-minimum.
    assert medians["measured_min"] > medians["within_1ms"]
    assert ratio >= 3.0
    # Looser targets are monotonically cheaper.
    assert (
        medians["within_10pct"]
        <= medians["within_5pct"]
        <= medians["within_1pct"] + 1e-9
    )
