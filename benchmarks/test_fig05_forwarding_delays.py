"""Figure 5 — per-relay forwarding delays via ICMP and TCP probes.

Paper: 31 relays measured hourly over 48h with the Section 4.3 method.
~65% show tight 0-2 ms distributions; ~35% are anomalous — often
*negative*, sometimes by tens of ms — revealing networks that treat
ICMP/TCP/Tor differently. Scaled default: fewer relays and rounds.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.core.fwd_delay import ForwardingDelayEstimator
from repro.core.sampling import SamplePolicy
from repro.testbeds.planetlab import PlanetLabTestbed


def test_fig05_forwarding_delays(benchmark, report):
    # A harsher protocol-policy mix so a 12-relay draw contains several
    # anomalous networks, as the paper's 31-relay testbed did.
    from repro.netsim.policies import PolicyModel

    testbed = PlanetLabTestbed.build(
        seed=55,
        n_relays=scaled(12, minimum=8),
        policy_model=PolicyModel(differential_fraction=0.35, severe_fraction=0.6),
    )
    estimator = ForwardingDelayEstimator(
        testbed.measurement,
        policy=SamplePolicy(samples=scaled(80, minimum=30), interval_ms=3.0),
        probe_count=scaled(60, minimum=30),
    )
    rounds = scaled(3, minimum=2)

    def run_experiment():
        per_relay: dict[str, dict[str, list[float]]] = {}
        for relay in testbed.relays:
            per_relay[relay.nickname] = {"icmp": [], "tcp": []}
        for round_index in range(rounds):
            # One "hourly" round: advance simulated time, then sweep.
            testbed.sim.run(until=testbed.sim.now + 3_600_000.0)
            for relay in testbed.relays:
                for kind in ("icmp", "tcp"):
                    result = estimator.estimate(relay.descriptor(), probe_kind=kind)
                    per_relay[relay.nickname][kind].append(
                        result.forwarding_delay_ms
                    )
        return per_relay

    per_relay = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    medians_icmp = {
        name: float(np.median(vals["icmp"])) for name, vals in per_relay.items()
    }
    anomalous = [name for name, median in medians_icmp.items() if median < -1.0]
    well_behaved = [
        name
        for name, median in medians_icmp.items()
        if -1.0 <= median <= 4.0
    ]

    table = TextTable(
        "Figure 5: forwarding delays (median over rounds, sorted by ICMP)",
        ["relay", "ICMP median (ms)", "TCP median (ms)"],
    )
    for name in sorted(per_relay, key=lambda n: medians_icmp[n]):
        table.add_row(
            name,
            medians_icmp[name],
            float(np.median(per_relay[name]["tcp"])),
        )
    summary = (
        f"well-behaved (0-4 ms): {len(well_behaved)}/{len(per_relay)}  "
        f"anomalous (negative): {len(anomalous)}/{len(per_relay)}  "
        "(paper: ~65% tight around 0-2 ms, ~35% anomalous)"
    )
    report(table.render() + "\n" + summary)

    # Shape: a clear majority well-behaved with small positive delays,
    # plus a real anomalous minority with negative estimates.
    assert len(well_behaved) >= len(per_relay) * 0.4
    assert len(anomalous) >= 1
    assert min(medians_icmp.values()) < -3.0, "expected tens-of-ms ICMP anomalies"
