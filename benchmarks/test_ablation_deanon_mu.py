"""Ablation — Algorithm 1's μ term (population-mean source leg).

Algorithm 1 scores candidate circuits by |Re2e − (R(c) + r + μ)|, using
the all-pairs mean μ to stand in for the unknown source-to-entry RTT.
This bench compares informed selection with the μ term against a variant
that sets μ = 0 (i.e. pretends the source sits on top of its entry).
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.apps.deanon import DeanonymizationSimulator


class _NoMuSimulator(DeanonymizationSimulator):
    """Identical machinery with the μ correction removed."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.mu = 0.0


def test_ablation_deanon_mu_term(allpairs_dataset, benchmark, report):
    dataset = allpairs_dataset
    runs = scaled(400, minimum=150)

    def run_experiment():
        with_mu = DeanonymizationSimulator(
            dataset.matrix, np.random.default_rng(73)
        )
        scenarios = [with_mu.sample_scenario() for _ in range(runs)]
        without_mu = _NoMuSimulator(dataset.matrix, np.random.default_rng(73))
        fractions_with = [
            with_mu.run("informed", s).fraction_tested for s in scenarios
        ]
        fractions_without = [
            without_mu.run("informed", s).fraction_tested for s in scenarios
        ]
        return np.array(fractions_with), np.array(fractions_without)

    with_mu, without_mu = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        f"Ablation: informed target selection with/without mu ({runs} runs)",
        ["variant", "median fraction tested", "mean fraction tested"],
    )
    table.add_row("with mu (Algorithm 1)", float(np.median(with_mu)), float(with_mu.mean()))
    table.add_row("without mu", float(np.median(without_mu)), float(without_mu.mean()))
    report(table.render())

    # The mu correction matters: dropping it aims the score at circuits
    # that are systematically too slow, costing probes on average.
    assert with_mu.mean() <= without_mu.mean() + 0.02
