"""Figure 10 — per-pair box plots of repeated measurements.

Paper: the same week-long dataset viewed as per-pair distributions; 67%
of pairs have interquartile ranges under 5 ms and no outliers; even
noisy pairs stay close to their medians.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.core.campaign import StabilityCampaign
from repro.core.sampling import SamplePolicy
from repro.core.ting import TingMeasurer
from repro.testbeds.livetor import LiveTorTestbed


def test_fig10_stability_boxes(benchmark, report):
    n_pairs = scaled(10, minimum=6)
    rounds = scaled(10, minimum=6)
    testbed = LiveTorTestbed.build(seed=101, n_relays=60)
    rng = testbed.streams.get("fig10.pairs")
    pairs = testbed.random_pairs(n_pairs, rng)
    measurer = TingMeasurer(
        testbed.measurement,
        policy=SamplePolicy(samples=scaled(40, minimum=20), interval_ms=3.0),
        cache_legs=True,
    )

    def run_experiment():
        campaign = StabilityCampaign(
            measurer, pairs, interval_ms=3_600_000.0, rounds=rounds
        )
        return campaign.run()

    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    stats = [s.box_stats() for s in series]
    iqrs = np.array([s["q3"] - s["q1"] for s in stats])
    tight = float(np.mean(iqrs < 5.0))

    table = TextTable(
        f"Figure 10: per-pair box statistics over {rounds} hourly rounds "
        "(sorted by median)",
        ["pair", "median", "q1", "q3", "IQR", "outliers"],
    )
    order = np.argsort([s["median"] for s in stats])
    for rank, index in enumerate(order):
        s = stats[index]
        table.add_row(
            rank, s["median"], s["q1"], s["q3"], s["q3"] - s["q1"], s["outliers"]
        )
    report(
        table.render()
        + f"\nfraction of pairs with IQR < 5 ms: {tight:.2f} (paper: 0.67)"
    )

    assert tight >= 0.5
    # Outliers, where present, stay absolutely small (the paper: "the
    # outliers are still relatively close to the mean" — tens of ms, not
    # hundreds). Large *relative* deviations only occur on low-mean pairs.
    for record, s in zip(series, stats):
        values = np.array(record.rtts_ms)
        worst = float(np.abs(values - s["median"]).max())
        assert worst <= max(40.0, 0.5 * s["median"])
        if worst > 0.5 * s["median"]:
            assert s["median"] < 50.0  # big relative noise => low-mean pair
