"""Section 4.4 — measurement cost at the two operating points.

Paper: at 200 samples a pair takes ~2.5 minutes; accepting ~5% error
(a handful of samples) brings it under 15 seconds. Both numbers are
wall-clock on the live network; here they are simulated-clock, driven by
the same circuit-build round trips and probe pacing.
"""

import numpy as np

from repro.analysis.report import TextTable
from repro.core.sampling import SamplePolicy
from repro.core.ting import TingMeasurer
from repro.testbeds.livetor import LiveTorTestbed


def test_sec44_measurement_cost(benchmark, report):
    testbed = LiveTorTestbed.build(seed=44, n_relays=40)
    rng = testbed.streams.get("sec44.pairs")
    pairs = testbed.random_pairs(5, rng)
    measurer = TingMeasurer(testbed.measurement)
    # The paper's client probes serially (next probe after the reply), so
    # per-pair cost is ~3 circuits x samples x RTT.
    high = SamplePolicy.serial(samples=200)
    fast = SamplePolicy.serial(samples=10)

    def run_experiment():
        durations_high, durations_fast, errors_fast = [], [], []
        for a, b in pairs:
            accurate = measurer.measure_pair(a, b, policy=high)
            quick = measurer.measure_pair(a, b, policy=fast)
            durations_high.append(accurate.duration_ms)
            durations_fast.append(quick.duration_ms)
            errors_fast.append(
                abs(quick.rtt_ms - accurate.rtt_ms) / max(accurate.rtt_ms, 1.0)
            )
        return (
            float(np.mean(durations_high)),
            float(np.mean(durations_fast)),
            float(np.median(errors_fast)),
        )

    mean_high, mean_fast, fast_error = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    table = TextTable(
        "Section 4.4: per-pair measurement cost (simulated clock, serial probing)",
        ["operating point", "paper", "measured"],
    )
    table.add_row("200 samples", "~150 s", f"{mean_high / 1000:.1f} s")
    table.add_row("fast tier (10 samples)", "< 15 s", f"{mean_fast / 1000:.1f} s")
    table.add_row("fast-tier relative error", "~5%", f"{fast_error:.3f}")
    report(table.render())

    # Shape: the fast tier is far cheaper and stays within a small error.
    assert mean_fast < 15_000.0
    assert mean_high > 60_000.0  # the accurate tier costs minutes
    assert mean_fast < mean_high / 4
    assert fast_error <= 0.10
