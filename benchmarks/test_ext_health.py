"""Health-scoring performance guards (``pytest benchmarks -m benchguard``).

Two budgets pinned here:

* **Scoring scale** — grading a 1,000-relay dataset (half a million
  candidate pairs, tens of thousands of provenance rows) must stay
  under a hard wall ceiling. The scorer is vectorized column reads over
  the provenance log plus O(n²) numpy arrays; a regression to
  per-record Python loops shows up as an order-of-magnitude miss, not
  a marginal one.
* **Disabled-path overhead** — campaigns that never ask for quality
  scoring must not pay for its existence. The planner's quality axis
  is one ``is None`` branch per plan and ``absorb`` adds one cache-
  invalidation assignment; the guard times those null ops directly and
  asserts their sum stays under 2% of a real plan-and-absorb round.
"""

import time

import numpy as np
import pytest

from _config import scaled
from repro.core.dataset import (
    CampaignDataset,
    PairProvenance,
    ProvenanceLog,
    RttMatrix,
)
from repro.core.planner import CampaignPlanner
from repro.obs.health import health_report

#: Hard ceiling for one full scorecard of the 1,000-relay dataset.
SCORING_CEILING_S = 2.0
#: Disabled-path (no quality scoring) overhead budget.
OVERHEAD_CEILING = 0.02


def _best_of(rounds: int, run) -> float:
    """Best-of-N wall time: the minimum is the least noisy estimator."""
    return min(run() for _ in range(rounds))


def _thousand_relay_dataset(n_relays: int, measured_pairs: int):
    """A budgeted full-network-scale dataset, built loop-free-ish.

    Coverage mirrors a real budgeted campaign: a few percent of the
    half-million candidate pairs, each with one provenance record, a
    sprinkling of failures, and geo coordinates for the light-time
    check — every scorecard section gets real work.
    """
    nodes = [f"R{i:04d}" for i in range(n_relays)]
    rng = np.random.default_rng(77)
    iu, ju = np.triu_indices(n_relays, k=1)
    picked = np.sort(
        rng.choice(iu.size, size=min(measured_pairs, iu.size), replace=False)
    )
    values = np.full((n_relays, n_relays), np.nan)
    rtts = rng.uniform(20.0, 300.0, picked.size)
    values[iu[picked], ju[picked]] = rtts
    values[ju[picked], iu[picked]] = rtts
    np.fill_diagonal(values, 0.0)
    matrix = RttMatrix.from_array(nodes, values)

    log = ProvenanceLog()
    failed = rng.random(picked.size) < 0.02
    for k, (i, j, rtt, is_fail) in enumerate(
        zip(iu[picked], ju[picked], rtts, failed)
    ):
        if is_fail:
            log.add(
                PairProvenance(
                    x=nodes[i], y=nodes[j], status="failed",
                    failure_category="timeout", retries=2,
                )
            )
        log.add(
            PairProvenance(
                x=nodes[i], y=nodes[j], status="measured", rtt_ms=float(rtt),
                samples_requested=10, samples_kept=int(8 + k % 3),
            )
        )
    geo = {
        node: [float(lat), float(lon)]
        for node, lat, lon in zip(
            nodes,
            rng.uniform(-0.5, 0.5, n_relays),  # ~110 km spread: every
            rng.uniform(9.5, 10.5, n_relays),  # honest RTT clears c
        )
    }
    return CampaignDataset(matrix=matrix, provenance=log, meta={"geo": geo})


@pytest.mark.benchguard
def test_thousand_relay_health_scoring_guard(report):
    """One full scorecard of a 1,000-relay dataset must beat 2 s."""
    n_relays = scaled(1000, minimum=400)
    measured = scaled(20_000, minimum=4_000)
    dataset = _thousand_relay_dataset(n_relays, measured)

    # refresh=True inside the timed region: the guard prices the full
    # recompute, not a cache hit.
    def time_full() -> float:
        start = time.perf_counter()
        quality = dataset.quality(refresh=True)
        scorecard = health_report(dataset, quality=quality)
        assert scorecard.data["dataset"]["relays"] == n_relays
        assert scorecard.data["quality"]["scored_pairs"] > 0
        return time.perf_counter() - start

    wall_s = _best_of(3, time_full)
    report(
        f"health scorecard, {n_relays} relays / "
        f"{dataset.matrix.num_measured} measured pairs / "
        f"{len(dataset.provenance)} provenance rows: {wall_s * 1000:.0f} ms "
        f"(ceiling {SCORING_CEILING_S * 1000:.0f} ms)"
    )
    assert wall_s < SCORING_CEILING_S


@pytest.mark.benchguard
def test_disabled_quality_overhead_guard(report):
    """The quality axis must cost nothing when nobody asks for it.

    Call-site inventory for a plan-and-absorb round that never touches
    quality scoring: one ``quality=None`` constructor alignment, one
    ``is None`` branch in ``plan()``, one cache-invalidation assignment
    in ``absorb()``. Time those null ops in a tight loop and assert the
    product stays under 2% of the real round's wall time.
    """
    n_relays = scaled(300, minimum=100)
    nodes = [f"R{i:04d}" for i in range(n_relays)]
    rng = np.random.default_rng(5)
    iu, ju = np.triu_indices(n_relays, k=1)
    picked = np.sort(rng.choice(iu.size, size=iu.size // 20, replace=False))
    values = np.full((n_relays, n_relays), np.nan)
    rtts = rng.uniform(20.0, 300.0, picked.size)
    values[iu[picked], ju[picked]] = rtts
    values[ju[picked], iu[picked]] = rtts
    np.fill_diagonal(values, 0.0)
    dataset = CampaignDataset(matrix=RttMatrix.from_array(nodes, values))

    def plan_and_absorb() -> float:
        start = time.perf_counter()
        plan = CampaignPlanner(nodes, dataset=dataset, seed=1).plan(
            budget_pairs=200
        )
        fresh = RttMatrix(nodes)
        for a, b in plan.pairs[:50]:
            fresh.set(a, b, 42.0)
        dataset.absorb(fresh)
        return time.perf_counter() - start

    round_s = _best_of(3, plan_and_absorb)

    n = 200_000
    planner = CampaignPlanner(nodes, dataset=dataset, seed=1)

    def time_loop(op) -> float:
        start = time.perf_counter()
        for _ in range(n):
            op()
        return time.perf_counter() - start

    def null_branch():
        if planner._quality is not None:
            raise AssertionError

    def cache_drop():
        dataset._quality_cache = None

    per_branch_s = _best_of(3, lambda: time_loop(null_branch)) / n
    per_drop_s = _best_of(3, lambda: time_loop(cache_drop)) / n
    # One alignment + one branch per plan, one assignment per absorb;
    # x10 headroom for call sites this inventory misses.
    null_s = 10 * (2 * per_branch_s + per_drop_s)
    fraction = null_s / round_s
    report(
        f"disabled quality path: (2 branches x {per_branch_s * 1e9:.0f} ns "
        f"+ 1 assignment x {per_drop_s * 1e9:.0f} ns) x10 headroom = "
        f"{null_s * 1e6:.2f} us against a {round_s * 1000:.1f} ms "
        f"plan-and-absorb round ({fraction:.4%} of wall)"
    )
    assert fraction < OVERHEAD_CEILING
