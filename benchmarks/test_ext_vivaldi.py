"""Extension — direct measurement vs coordinate embedding (Section 2).

The paper's related work argues that landmark/coordinate systems
(Vivaldi, GNP, Octant) trade accuracy for coverage: they predict any
pair, but Internet TIVs are unembeddable in a metric space, so their
per-pair error is bounded away from zero. This bench trains a full
Vivaldi system on the Ting-measured all-pairs matrix and quantifies the
gap, including the provable TIV error floor.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.apps.coordinates import (
    VivaldiSystem,
    embedding_tiv_floor,
    relative_errors,
)


def test_ext_vivaldi_vs_direct_measurement(allpairs_dataset, benchmark, report):
    dataset = allpairs_dataset
    matrix = dataset.matrix
    truth = matrix.as_array()
    names = list(matrix.nodes)
    samples = [(a, b, rtt) for a, b, rtt in matrix.measured_pairs()]

    def run_experiment():
        system = VivaldiSystem(
            names, np.random.default_rng(90), dimensions=3
        )
        system.train(samples, rounds=scaled(60, minimum=30))
        predictions = system.predict_matrix().as_array()
        return relative_errors(predictions, truth)

    errors = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    floor = embedding_tiv_floor(truth)

    # Ting's own median error vs ground truth is ~1-3% (Figure 3); the
    # embedding's is an order of magnitude larger.
    table = TextTable(
        f"Extension: Vivaldi embedding vs direct measurement "
        f"({len(names)} nodes, trained on all pairs)",
        ["metric", "value"],
    )
    table.add_row("Vivaldi median relative error", float(np.median(errors)))
    table.add_row("Vivaldi p90 relative error", float(np.percentile(errors, 90)))
    table.add_row("provable TIV error floor (worst pair)", floor)
    table.add_row("Ting median relative error (Fig. 3)", "~0.01-0.03")
    report(table.render())

    # Shape: embeddings are usable but far from direct measurement, and
    # the TIV floor is real.
    assert float(np.median(errors)) > 0.03
    assert float(np.median(errors)) < 0.8  # still a sane embedding
    assert floor > 0.0
    assert errors.max() >= floor * 0.5
