"""Figure 9 — stability of Ting measurements over time (c_v CDF).

Paper: 30 pairs measured hourly for a week. 96.7% of pairs have
coefficient of variation under 0.5; over half have c_v ~ 0; the lone
outlier is a very-low-mean pair (relative noise, tiny absolute error).
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable, format_cdf_rows
from repro.core.campaign import StabilityCampaign
from repro.core.sampling import SamplePolicy
from repro.core.ting import TingMeasurer
from repro.testbeds.livetor import LiveTorTestbed


def _run_stability(seed: int, n_pairs: int, rounds: int):
    testbed = LiveTorTestbed.build(seed=seed, n_relays=60)
    rng = testbed.streams.get("fig09.pairs")
    pairs = testbed.random_pairs(n_pairs, rng)
    measurer = TingMeasurer(
        testbed.measurement,
        policy=SamplePolicy(samples=scaled(40, minimum=20), interval_ms=3.0),
        cache_legs=True,
    )
    campaign = StabilityCampaign(
        measurer,
        pairs,
        interval_ms=3_600_000.0,  # hourly
        rounds=rounds,
    )
    return campaign.run()


def test_fig09_stability_cv(benchmark, report):
    n_pairs = scaled(10, minimum=6)
    rounds = scaled(10, minimum=6)

    series = benchmark.pedantic(
        _run_stability, args=(91, n_pairs, rounds), rounds=1, iterations=1
    )

    cvs = np.array([s.coefficient_of_variation() for s in series])
    means = np.array([np.mean(s.rtts_ms) for s in series])

    table = TextTable(
        f"Figure 9: coefficient of variation over {rounds} hourly rounds "
        f"({n_pairs} pairs)",
        ["metric", "paper", "measured"],
    )
    table.add_row("fraction with c_v < 0.5", "0.967", float(np.mean(cvs < 0.5)))
    table.add_row("fraction with c_v < 0.1", "> 0.5", float(np.mean(cvs < 0.1)))
    table.add_row("max c_v", "one low-mean outlier", float(cvs.max()))
    report(table.render() + "\n" + format_cdf_rows(cvs, label="c_v"))

    assert np.mean(cvs < 0.5) >= 0.9
    assert np.mean(cvs < 0.1) >= 0.5
    # If any pair is relatively noisy, it should be a low-mean pair.
    worst = int(np.argmax(cvs))
    if cvs[worst] > 0.3:
        assert means[worst] < np.median(means)
