"""Shared benchmark infrastructure.

Every bench regenerates one of the paper's tables or figures and prints
a paper-vs-measured report. Scale is controlled by the ``REPRO_SCALE``
environment variable (default 1.0): the defaults are sized so the whole
suite finishes in tens of minutes on a laptop; set ``REPRO_SCALE=3`` (or
more) to approach the paper's full sample counts.

Expensive artifacts — the PlanetLab validation sweep and the live-network
all-pairs matrix — are built once per session and shared by the benches
that consume them, mirroring how the paper reuses its datasets across
sections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from _config import scaled
from repro.core.campaign import AllPairsCampaign
from repro.core.dataset import RttMatrix
from repro.core.sampling import SamplePolicy
from repro.core.ting import TingMeasurer
from repro.testbeds.livetor import LiveTorTestbed
from repro.testbeds.planetlab import PlanetLabTestbed


@pytest.fixture
def report(capsys):
    """Print a figure/table report straight to the terminal."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _report


# ----------------------------------------------------------------------
# Shared expensive datasets


@dataclass
class ValidationSweep:
    """Ting vs ground truth over all testbed pairs (Figures 3, 4, 7)."""

    testbed: PlanetLabTestbed
    estimates: np.ndarray  # Ting estimates (paper's sample count tier)
    estimates_small: np.ndarray  # same pairs at the reduced tier
    pings: np.ndarray
    oracles: np.ndarray


@pytest.fixture(scope="session")
def validation_sweep() -> ValidationSweep:
    """The Figure 3/4/7 dataset: every pair measured at two sample tiers.

    Paper tiers are 1000 and 200 samples; the scaled defaults are 200 and
    50, which Section 4.4 shows are within the same accuracy envelope.
    """
    testbed = PlanetLabTestbed.build(seed=2015, n_relays=scaled(14, minimum=6))
    big = SamplePolicy(samples=scaled(200, minimum=50), interval_ms=3.0)
    small = SamplePolicy(samples=scaled(50, minimum=15), interval_ms=3.0)
    measurer = TingMeasurer(testbed.measurement)
    estimates, estimates_small, pings, oracles = [], [], [], []
    for a, b in testbed.relay_pairs():
        estimates.append(measurer.measure_pair(a, b, policy=big).rtt_ms)
        estimates_small.append(measurer.measure_pair(a, b, policy=small).rtt_ms)
        pings.append(testbed.ping_ground_truth(a, b, count=100))
        oracles.append(testbed.oracle_rtt(a, b))
    return ValidationSweep(
        testbed=testbed,
        estimates=np.array(estimates),
        estimates_small=np.array(estimates_small),
        pings=np.array(pings),
        oracles=np.array(oracles),
    )


@dataclass
class AllPairsDataset:
    """The Section 5 dataset: an all-pairs Ting matrix over live relays."""

    testbed: LiveTorTestbed
    matrix: RttMatrix
    bandwidths: np.ndarray


@pytest.fixture(scope="session")
def allpairs_dataset() -> AllPairsDataset:
    """The 50-node all-pairs matrix (Figure 11) feeding Figures 12-17.

    Paper: 50 random live relays, all 1225 pairs. Scaled default: 26
    relays (325 pairs) at 60 samples; REPRO_SCALE=2 reaches the paper's
    50 nodes.
    """
    n_nodes = scaled(26, minimum=12)
    testbed = LiveTorTestbed.build(seed=501, n_relays=max(n_nodes + 10, 60))
    rng = testbed.streams.get("allpairs.selection")
    relays = testbed.random_relays(n_nodes, rng)
    measurer = TingMeasurer(
        testbed.measurement,
        policy=SamplePolicy(samples=scaled(60, minimum=20), interval_ms=3.0),
        cache_legs=True,
    )
    campaign = AllPairsCampaign(measurer, relays, rng=rng)
    report = campaign.run()
    assert report.matrix.is_complete, "all-pairs campaign left holes"
    bandwidths = np.array([r.bandwidth_kbps for r in relays], dtype=float)
    return AllPairsDataset(
        testbed=testbed, matrix=report.matrix, bandwidths=bandwidths
    )
