"""Ablation — why Ting uses the *minimum* of its samples.

Design choice under test (Section 3.3): forwarding delay and queueing
are strictly additive noise, so the minimum converges on the propagation
floor while mean/median retain load-dependent bias. This bench applies
Equation 4 with min, median, and mean summarizers over identical sample
traces and compares accuracy against the oracle.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.core.sampling import SamplePolicy
from repro.core.ting import TingMeasurer
from repro.testbeds.planetlab import PlanetLabTestbed

SUMMARIZERS = {
    "min": np.min,
    "median": np.median,
    "mean": np.mean,
}


def test_ablation_estimator_choice(benchmark, report):
    testbed = PlanetLabTestbed.build(seed=71, n_relays=scaled(10, minimum=8))
    measurer = TingMeasurer(
        testbed.measurement,
        policy=SamplePolicy(samples=scaled(100, minimum=50), interval_ms=3.0),
    )
    pairs = testbed.relay_pairs()[: scaled(15, minimum=10)]

    def run_experiment():
        errors = {name: [] for name in SUMMARIZERS}
        for a, b in pairs:
            result = measurer.measure_pair(a, b)
            oracle = testbed.oracle_rtt(a, b)
            for name, summarize in SUMMARIZERS.items():
                estimate = (
                    summarize(result.circuit_xy.samples_ms)
                    - summarize(result.circuit_x.samples_ms) / 2.0
                    - summarize(result.circuit_y.samples_ms) / 2.0
                )
                errors[name].append(abs(estimate - oracle) / oracle)
        return {name: np.array(v) for name, v in errors.items()}

    errors = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        f"Ablation: Eq. 4 with different sample summarizers ({len(pairs)} pairs)",
        ["summarizer", "median rel. error", "p90 rel. error"],
    )
    for name in SUMMARIZERS:
        table.add_row(
            name,
            float(np.median(errors[name])),
            float(np.percentile(errors[name], 90)),
        )
    report(table.render())

    # The min filter must win at the tail: mean is polluted by bursts.
    assert np.percentile(errors["min"], 90) <= np.percentile(errors["mean"], 90)
    assert np.median(errors["min"]) <= np.median(errors["mean"]) + 0.01
    # And be accurate in absolute terms.
    assert np.median(errors["min"]) < 0.10
