"""Figure 13 — implicit exclusion vs end-to-end circuit RTT.

Paper: the lower the victim circuit's end-to-end RTT, the larger the
fraction of relays the too-large-RTT rules exclude without probing;
for the highest RTTs the knowledge is useless, but moderate-RTT circuits
still benefit.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.apps.deanon import DeanonymizationSimulator


def test_fig13_ruled_out_vs_rtt(allpairs_dataset, benchmark, report):
    dataset = allpairs_dataset
    rng = np.random.default_rng(13)
    simulator = DeanonymizationSimulator(dataset.matrix, rng)
    runs = scaled(400, minimum=150)

    def run_experiment():
        rows = []
        for _ in range(runs):
            scenario = simulator.sample_scenario()
            result = simulator.run("ignore", scenario)
            rows.append((scenario.end_to_end_rtt_ms, result.fraction_ruled_out))
        return sorted(rows)

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rtts = np.array([r for r, _ in rows])
    ruled = np.array([f for _, f in rows])
    thirds = len(rows) // 3
    low = float(ruled[:thirds].mean())
    mid = float(ruled[thirds : 2 * thirds].mean())
    high = float(ruled[2 * thirds :].mean())
    correlation = float(np.corrcoef(rtts, ruled)[0, 1])

    table = TextTable(
        f"Figure 13: fraction ruled out implicitly vs end-to-end RTT ({runs} runs)",
        ["RTT tercile", "mean RTT (ms)", "mean fraction ruled out"],
    )
    table.add_row("lowest", float(rtts[:thirds].mean()), low)
    table.add_row("middle", float(rtts[thirds : 2 * thirds].mean()), mid)
    table.add_row("highest", float(rtts[2 * thirds :].mean()), high)
    report(
        table.render()
        + f"\nPearson correlation (RTT, ruled-out): {correlation:.3f} "
        "(paper: strongly negative)"
    )

    # Shape: monotone decline across terciles, negative correlation,
    # low-RTT circuits benefit disproportionately, highest barely.
    assert low > mid > high
    assert correlation < -0.3
    assert low > 0.03
    assert low > 3.0 * max(high, 1e-6)
