"""Adaptive early-stopping campaign guard (``-m benchguard``).

Section 4.4's running-minimum analysis says most probes in a 200-sample
run are spent *after* the estimate has already converged to within 1 ms
of its floor. The adaptive engine turns that observation into a live
stopping rule; this guard pins down the bargain on a full campaign:

* **cost**: the adaptive campaign must send at least
  :data:`PROBE_SAVINGS_FLOOR` x fewer probes than the fixed-cap run, and
* **accuracy**: every pair estimate must stay within the declared 1 ms
  tolerance of the fixed-policy estimate.

Both campaigns run under task isolation with ping-pong pacing, so each
adaptive probe trace is an exact prefix of the fixed trace for the same
task — the accuracy comparison is deterministic, not statistical.
"""

import pytest

from _config import scaled
from repro.analysis.report import TextTable
from repro.core.parallel import ParallelCampaign
from repro.core.sampling import SamplePolicy
from repro.testbeds.livetor import LiveTorTestbed

#: The acceptance bar: adaptive sends at least this many times fewer
#: probes than the fixed 200-sample policy at matched 1 ms accuracy.
PROBE_SAVINGS_FLOOR = 3.0

#: The declared convergence tolerance (ms); also the accuracy bound.
TOLERANCE_MS = 1.0


@pytest.mark.benchguard
def test_adaptive_campaign_probe_savings_guard(report):
    # Pair circuits stop after ~(patience + a few) samples, so savings
    # are bounded by cap / ~40 on pairs — and legs run at the full cap
    # (SamplePolicy.for_leg), so the n leg runs are pure overhead
    # against the C(n,2) pair runs. Both floors keep the 3x bar
    # reachable at reduced REPRO_SCALE: enough relays that pairs
    # dominate legs, and the full 200-sample cap.
    relays = scaled(60, minimum=20)
    cap = scaled(200, minimum=200)

    def run(policy):
        # A fresh world per run: under task isolation each probe trace is
        # then a pure function of (seed, task key), making the adaptive
        # trace an exact prefix of the fixed one.
        testbed = LiveTorTestbed.build(seed=47, n_relays=relays + 15)
        selected = testbed.random_relays(
            relays, testbed.streams.get("ext.adaptive.pairs")
        )
        campaign = ParallelCampaign(
            testbed.measurement,
            selected,
            policy=policy,
            isolation=testbed.task_isolation(),
        )
        return campaign.run()

    fixed = run(SamplePolicy.serial(samples=cap))
    adaptive = run(SamplePolicy.adaptive_1ms(max_samples=cap))
    assert fixed.matrix.is_complete and adaptive.matrix.is_complete

    fixed_by_pair = {(a, b): rtt for a, b, rtt in fixed.matrix.measured_pairs()}
    errors = [
        abs(rtt - fixed_by_pair[(a, b)])
        for a, b, rtt in adaptive.matrix.measured_pairs()
    ]
    savings = fixed.probes_sent / adaptive.probes_sent

    table = TextTable(
        f"Adaptive vs fixed-{cap} campaign ({relays} relays, "
        f"{fixed.pairs_attempted} pairs, isolated ping-pong)",
        ["policy", "probes", "early stops", "probes saved", "max err (ms)"],
    )
    table.add_row(f"fixed-{cap}", fixed.probes_sent, fixed.early_stops, 0, 0.0)
    table.add_row(
        "adaptive-1ms",
        adaptive.probes_sent,
        adaptive.early_stops,
        adaptive.probes_saved,
        max(errors),
    )
    report(
        table.render()
        + f"\nprobe savings {savings:.1f}x at <= {TOLERANCE_MS:g} ms "
        "error on every pair."
    )

    # Cost: the whole point of the adaptive engine.
    assert savings >= PROBE_SAVINGS_FLOOR
    # Accuracy: no pair drifts past the declared tolerance.
    assert max(errors) <= TOLERANCE_MS
    # The fixed run never stops early; the adaptive run's pair circuits
    # almost all do (legs are exempt — shared estimates run at full cap).
    assert fixed.early_stops == 0
    assert adaptive.early_stops >= 0.9 * adaptive.pairs_attempted
