"""Figure 17 — node-on-circuit probability by RTT and circuit length.

Paper: for each length, the median probability of a given node being on
a circuit achieving a given RTT is lowest in the middle of the RTT range
(many circuit choices) and spikes at the extremes (few choices, so they
rely on specific nodes); very long circuits sacrifice entropy at low
RTTs.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable, format_series
from repro.apps.longcircuits import node_presence_by_rtt


def test_fig17_circuit_diversity(allpairs_dataset, benchmark, report):
    dataset = allpairs_dataset
    n_samples = scaled(8000, minimum=3000)
    lengths = (3, 5, 8, 10)

    def run_experiment():
        out = {}
        for length in lengths:
            out[length] = node_presence_by_rtt(
                dataset.matrix,
                length,
                n_samples=n_samples,
                rng=np.random.default_rng(170 + length),
            )
        return out

    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    n = len(dataset.matrix)
    table = TextTable(
        "Figure 17: median node-presence probability by length",
        ["length", "baseline l/n", "min presence (populated)", "max presence"],
    )
    for length in lengths:
        centers, presence = curves[length]
        populated = presence[presence > 0]
        table.add_row(
            length,
            length / n,
            float(populated.min()),
            float(populated.max()),
        )
    centers3, presence3 = curves[3]
    report(
        table.render()
        + "\n"
        + format_series("3-hop presence vs RTT (ms)", centers3, presence3)
    )

    # Shape: average presence tracks l/n; the most entropic (lowest-
    # presence) region exists in the interior for each length.
    for length in lengths:
        _, presence = curves[length]
        populated = presence[presence > 0]
        assert populated.size > 3
        baseline = length / n
        assert np.median(populated) == np.clip(
            np.median(populated), 0.5 * baseline, 2.0 * baseline
        )
    # Longer circuits involve any given node more often.
    assert np.median(curves[10][1][curves[10][1] > 0]) > np.median(
        curves[3][1][curves[3][1] > 0]
    )
