"""Serve-telemetry overhead guards (``pytest benchmarks -m benchguard``).

Two budgets, mirroring the null-observability discipline of
``test_obs_overhead.py``:

* **Disabled path < 2%** — an un-instrumented :class:`QueryServer`
  pays exactly one ``telemetry.enabled`` attribute check per query.
  Measured with the modeled methodology (per-check cost from a tight
  loop x the query count, against the real batch wall) because a
  direct wall diff would drown a sub-2% effect in scheduler noise.
* **Enabled path < 10%** — live telemetry (two timer reads, one
  µs-histogram observe, the sampling check) must amortize into the
  mixed query workload. Also modeled: the full instrumented call
  sequence (``timer(); timer(); record(op, ...)``) is timed in a tight
  loop over the real op mix — sampling cadence, slow-path branch and
  per-op dict lookups included — then doubled for headroom and held
  against the un-instrumented batch wall. A direct wall ratio cannot
  resolve a ~2% effect here: plain-vs-plain control runs on shared CI
  hardware swing far more than the budget being enforced.
"""

import time

import numpy as np
import pytest

from _config import scaled
from repro.core.dataset import RttMatrix
from repro.serve import MatrixIndex, QueryServer, ServeTelemetry
from repro.serve.telemetry import NULL_SERVE_TELEMETRY

#: Disabled-path ceiling: one enabled-check per query as a fraction of
#: the un-instrumented batch wall.
DISABLED_OVERHEAD_CEILING = 0.02
#: Enabled-path ceiling: instrumented wall over un-instrumented wall,
#: minus one, on the mixed workload.
ENABLED_OVERHEAD_CEILING = 0.10


def _best_of(rounds: int, run) -> float:
    """Best-of-N wall time: the minimum is the least noisy estimator."""
    return min(run() for _ in range(rounds))


def _mixed_setup(n_relays: int, n_queries: int):
    """A fullnet-scale index plus a production-shaped query mix."""
    nodes = [f"R{i:04d}" for i in range(n_relays)]
    rng = np.random.default_rng(53)
    iu, ju = np.triu_indices(n_relays, k=1)
    rtts = rng.uniform(2.0, 400.0, size=iu.size)
    rtts[rng.random(iu.size) < 0.1] = np.nan
    values = np.zeros((n_relays, n_relays))
    values[iu, ju] = rtts
    values[ju, iu] = rtts
    index = MatrixIndex.build(RttMatrix.from_array(nodes, values, copy=False))
    queries = []
    pair_ids = rng.integers(0, n_relays, size=(n_queries, 2))
    for n, (i, j) in enumerate(pair_ids):
        a, b = nodes[int(i)], nodes[int(j)]
        kind = n % 4
        if kind == 0:
            queries.append({"op": "point", "x": a, "y": b})
        elif kind == 1:
            queries.append({"op": "knn", "x": a, "k": 10})
        elif kind == 2:
            queries.append({"op": "percentile", "x": a, "q": 90.0})
        elif a != b:
            queries.append({"op": "via", "x": a, "y": b})
        else:
            queries.append({"op": "point", "x": a, "y": b})
    return index, queries


def _time_queries(server: QueryServer, queries) -> float:
    query = server.query
    start = time.perf_counter()
    for q in queries:
        query(q)
    return time.perf_counter() - start


@pytest.mark.benchguard
def test_disabled_telemetry_overhead_guard(report):
    """The null-telemetry check per query must sum to <2% of batch wall."""
    n_relays = scaled(1000, minimum=400)
    n_queries = scaled(20_000, minimum=4_000)
    index, queries = _mixed_setup(n_relays, n_queries)
    server = QueryServer(index)

    wall_s = _best_of(3, lambda: _time_queries(server, queries))

    # The entire disabled-path cost: one attribute check per query.
    n = 200_000
    telemetry = NULL_SERVE_TELEMETRY

    def enabled_check():
        if telemetry.enabled:
            raise AssertionError

    def time_checks() -> float:
        start = time.perf_counter()
        for _ in range(n):
            enabled_check()
        return time.perf_counter() - start

    per_check_s = _best_of(3, time_checks) / n
    # Headroom x2 for the branch this model misses.
    null_s = 2 * per_check_s * len(queries)
    fraction = null_s / wall_s
    report(
        f"disabled telemetry: {len(queries)} checks x "
        f"{per_check_s * 1e9:.0f} ns = {null_s * 1000:.2f} ms against a "
        f"{wall_s * 1000:.0f} ms batch ({fraction:.2%} of wall)"
    )
    assert fraction < DISABLED_OVERHEAD_CEILING


@pytest.mark.benchguard
def test_enabled_telemetry_overhead_guard(report):
    """Live telemetry must stay under 10% of the mixed-workload wall."""
    n_relays = scaled(1000, minimum=400)
    n_queries = scaled(20_000, minimum=4_000)
    index, queries = _mixed_setup(n_relays, n_queries)
    plain = QueryServer(index)

    wall_s = _best_of(3, lambda: _time_queries(plain, queries))

    # The entire enabled-path addition per query: two timer reads plus
    # one record() — timed over the real op mix so the per-op histogram
    # lookups, the slow-path branch, and the 1-in-100 span sampling all
    # pay their true share. slow_ms is high enough that the access-log
    # ring stays cold (the hot path under test is record(), not event
    # emission — errors and slow queries are the rare path by design).
    telemetry = ServeTelemetry(slow_ms=1_000.0, sample_every=100)
    ops = [q["op"] for q in queries]
    timer = telemetry.timer
    record = telemetry.record

    def time_telemetry() -> float:
        start = time.perf_counter()
        for op in ops:
            t0 = timer()
            t1 = timer()
            record(op, t0, t1)
        return time.perf_counter() - start

    per_query_s = _best_of(5, time_telemetry) / len(queries)
    # Headroom x2 for the wrapper branches this model misses.
    live_s = 2 * per_query_s * len(queries)
    overhead = live_s / wall_s
    report(
        f"enabled telemetry: {len(queries)} queries x "
        f"{per_query_s * 1e9:.0f} ns = {live_s * 1000:.1f} ms against a "
        f"{wall_s * 1000:.0f} ms batch ({overhead:.2%} of wall, "
        f"ceiling {ENABLED_OVERHEAD_CEILING:.0%})"
    )
    assert overhead < ENABLED_OVERHEAD_CEILING
