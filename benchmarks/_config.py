"""Benchmark scale control.

``REPRO_SCALE`` (default 1.0) multiplies every experiment size: pair
counts, sample counts, rounds. The defaults finish in tens of minutes;
``REPRO_SCALE=2`` or more approaches the paper's full scale.
"""

from __future__ import annotations

import os


def scale() -> float:
    """The global experiment-scale multiplier."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def scaled(base: int, minimum: int = 1) -> int:
    """Scale an experiment size by REPRO_SCALE, with a floor."""
    return max(minimum, int(round(base * scale())))
