"""Extension — the Murdoch–Danezis probe, demonstrated end to end.

Section 5.1 *assumes* a brute-force on-path probe exists and counts how
many invocations each strategy needs. This bench implements the probe
itself on the queued overlay: clog circuits through a candidate relay
and watch the victim's RTT series. It reports the detector's separation
between on-path and off-path relays — the ground the Figure 12 cost
model stands on.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.apps.congestion import CongestionProbe, VictimTraffic
from repro.echo.client import EchoClient
from repro.testbeds.livetor import LiveTorTestbed
from repro.tor.client import OnionProxy
from repro.tor.control import Controller


def test_ext_congestion_probe(benchmark, report):
    testbed = LiveTorTestbed.build(seed=78, n_relays=16, service_queues=True)
    attacker = testbed.measurement

    victim_host = testbed.builder.attach_random_host(
        testbed.topology, "victim", 3, "residential"
    )
    victim_controller = Controller(
        OnionProxy(
            testbed.sim,
            testbed.fabric,
            testbed.topology,
            victim_host,
            testbed.consensus,
        )
    )
    exits = [
        r
        for r in testbed.relays
        if r.exit_policy.allows(attacker.echo_address, attacker.echo_port)
    ]
    non_exits = [r for r in testbed.relays if r not in exits]
    entry, middle, exit_relay = non_exits[0], non_exits[1], exits[0]
    circuit = victim_controller.build_circuit(
        [entry.fingerprint, middle.fingerprint, exit_relay.fingerprint]
    )
    stream = victim_controller.open_stream(
        circuit, attacker.echo_address, attacker.echo_port
    )
    victim = VictimTraffic(
        stream=stream, client=EchoClient(testbed.sim), interval_ms=40.0
    )

    on_path = [entry, middle, exit_relay]
    off_path = non_exits[2 : 2 + scaled(3, minimum=2)]
    probe = CongestionProbe(attacker)

    def run_experiment():
        candidates = [r.descriptor() for r in on_path + off_path]
        return probe.identify_on_path(candidates, victim)

    verdicts = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    on_fps = {r.fingerprint for r in on_path}
    table = TextTable(
        f"Extension: congestion probe over {len(verdicts)} candidates "
        f"(threshold {probe.detection_threshold} sigma)",
        ["relay", "truth", "statistic", "verdict"],
    )
    true_positive = false_positive = 0
    for verdict in verdicts:
        truth = "on-path" if verdict.fingerprint in on_fps else "off-path"
        table.add_row(
            verdict.fingerprint[:12],
            truth,
            verdict.statistic,
            "on-path" if verdict.on_path else "off-path",
        )
        if verdict.fingerprint in on_fps and verdict.on_path:
            true_positive += 1
        if verdict.fingerprint not in on_fps and verdict.on_path:
            false_positive += 1
    report(
        table.render()
        + f"\ntrue positives: {true_positive}/{len(on_path)}  "
        f"false positives: {false_positive}/{len(off_path)}"
    )

    # Shape: the probe separates the sets cleanly (MD'05's result).
    assert true_positive >= len(on_path) - 1  # exit may sit below threshold
    assert false_positive == 0
    on_stats = [v.statistic for v in verdicts if v.fingerprint in on_fps]
    off_stats = [v.statistic for v in verdicts if v.fingerprint not in on_fps]
    assert min(on_stats) > max(off_stats)
