"""Ablation — circuit reuse via TRUNCATE/EXTEND (an optimization the
paper leaves on the table).

Ting builds three circuits per pair. Tor's TRUNCATE lets the client keep
the (w, x) prefix of the just-probed pair circuit and splice z back on,
turning C_xy into C_x without a fresh build — one fewer circuit per pair
(on top of leg caching). This bench verifies the optimization changes
nothing scientifically (estimates match) while cutting circuit-build
work by a third and reducing the simulated measurement time.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.core.sampling import SamplePolicy
from repro.core.ting import TingMeasurer
from repro.testbeds.planetlab import PlanetLabTestbed


def test_ablation_circuit_reuse(benchmark, report):
    testbed = PlanetLabTestbed.build(seed=74, n_relays=scaled(8, minimum=6))
    policy = SamplePolicy(samples=scaled(60, minimum=30), interval_ms=3.0)
    fresh = TingMeasurer(testbed.measurement, policy=policy)
    reuse = TingMeasurer(testbed.measurement, policy=policy, reuse_circuits=True)
    pairs = testbed.relay_pairs()[: scaled(10, minimum=6)]

    def run_experiment():
        rows = []
        for a, b in pairs:
            fresh_result = fresh.measure_pair(a, b)
            reuse_result = reuse.measure_pair(a, b)
            rows.append(
                (
                    fresh_result.rtt_ms,
                    reuse_result.rtt_ms,
                    fresh_result.duration_ms,
                    reuse_result.duration_ms,
                )
            )
        return np.array(rows)

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    gaps = np.abs(rows[:, 0] - rows[:, 1])
    relative_gaps = gaps / np.maximum(rows[:, 0], 1.0)

    table = TextTable(
        f"Ablation: circuit reuse via TRUNCATE/EXTEND ({len(pairs)} pairs)",
        ["metric", "fresh builds", "with reuse"],
    )
    table.add_row(
        "circuits built", fresh.circuits_built, reuse.circuits_built
    )
    table.add_row("circuits reused", 0, reuse.circuits_reused)
    table.add_row(
        "mean measurement time (s)",
        float(rows[:, 2].mean() / 1000),
        float(rows[:, 3].mean() / 1000),
    )
    table.add_row("median estimate gap (ms)", "-", float(np.median(gaps)))
    report(table.render())

    # Estimates agree (both are unbiased estimators of the same floor).
    assert np.median(relative_gaps) < 0.08
    # A third fewer circuit builds.
    assert reuse.circuits_built == fresh.circuits_built - len(pairs)
    assert reuse.circuits_reused == len(pairs)
    # And it is not slower.
    assert rows[:, 3].mean() <= rows[:, 2].mean() * 1.1
