"""Figure 8 — Ting RTT vs geolocated great-circle distance.

Paper: 10,000 random live pairs. Nearly all points sit above the (2/3)c
physical floor (the handful below are geolocation-database errors); a
linear fit to Ting's minimum RTTs sits below the Htrae fit to median
gamer latencies.
"""

import numpy as np

from _config import scaled
from repro.analysis.fits import (
    fit_latency_vs_distance,
    htrae_line,
    points_below_floor,
    two_thirds_c_line,
)
from repro.analysis.report import TextTable
from repro.core.sampling import SamplePolicy
from repro.core.ting import TingMeasurer
from repro.testbeds.livetor import LiveTorTestbed


def test_fig08_geo_vs_rtt(benchmark, report):
    testbed = LiveTorTestbed.build(
        seed=81, n_relays=scaled(120, minimum=60), geolocation_error_fraction=0.02
    )
    rng = testbed.streams.get("fig08.pairs")
    pairs = testbed.random_pairs(scaled(250, minimum=80), rng)
    measurer = TingMeasurer(
        testbed.measurement,
        policy=SamplePolicy(samples=scaled(40, minimum=20), interval_ms=3.0),
        cache_legs=True,
    )

    def run_experiment():
        distances, rtts = [], []
        for a, b in pairs:
            result = measurer.measure_pair(a, b)
            distances.append(testbed.geolocation.distance_km(a.address, b.address))
            rtts.append(result.rtt_clamped_ms)
        return np.array(distances), np.array(rtts)

    distances, rtts = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    fit = fit_latency_vs_distance(distances, rtts)
    below = points_below_floor(distances, rtts)
    # How many of the below-floor points involve a corrupted geo entry?
    explained = sum(
        1
        for index in below
        if testbed.geolocation.is_erroneous(pairs[index][0].address)
        or testbed.geolocation.is_erroneous(pairs[index][1].address)
    )
    probe_km = 5000.0

    table = TextTable(
        f"Figure 8: RTT vs great-circle distance ({len(pairs)} pairs)",
        ["metric", "paper", "measured"],
    )
    table.add_row("points below (2/3)c", "a handful", len(below))
    table.add_row("...explained by geoloc errors", "almost all", explained)
    table.add_row("Ting fit slope (ms/km)", "< Htrae 0.0269", fit.slope)
    table.add_row(
        "fit@5000km vs Htrae@5000km",
        "Ting below Htrae",
        f"{fit.predict(probe_km):.1f} vs {htrae_line(probe_km):.1f}",
    )
    report(table.render())

    # Shape assertions.
    assert len(below) <= max(3, len(pairs) // 20), "too many sub-floor points"
    assert explained >= max(1, int(len(below) * 0.7)) or len(below) == 0
    # Ting (minimum RTT) sits below Htrae (median RTT) at long range.
    assert fit.predict(probe_km) < htrae_line(probe_km)
    # And above the physical floor.
    assert fit.predict(probe_km) > two_thirds_c_line(probe_km)
    # Distance correlates positively with RTT.
    assert fit.slope > 0
