"""Figure 3 — CDF of Ting estimate / ground-truth RTT.

Paper: 31 PlanetLab relays, all pairs, min of 1000 Ting samples vs min of
100 pings. 91% of pairs within 10% of ground truth; <2% with error over
30%; no skew around 1.0; Spearman rank correlation 0.997.
"""

import numpy as np

from repro.analysis.report import TextTable, format_cdf_rows
from repro.analysis.stats import fraction_within, spearman_rank_correlation


def test_fig03_accuracy_cdf(validation_sweep, benchmark, report):
    sweep = validation_sweep

    def analyze():
        ratios = sweep.estimates / sweep.pings
        return {
            "within_10pct": fraction_within(sweep.estimates, sweep.pings, 0.10),
            "over_30pct": float(np.mean(np.abs(ratios - 1.0) > 0.30)),
            "median_ratio": float(np.median(ratios)),
            "spearman": spearman_rank_correlation(sweep.estimates, sweep.pings),
            "ratios": ratios,
        }

    out = benchmark(analyze)

    table = TextTable(
        f"Figure 3: Ting accuracy vs ping ground truth "
        f"({len(sweep.estimates)} pairs)",
        ["metric", "paper", "measured"],
    )
    table.add_row("pairs within 10% of real", "0.91", out["within_10pct"])
    table.add_row("pairs with error > 30%", "< 0.02", out["over_30pct"])
    table.add_row("median measured/real", "~1.0", out["median_ratio"])
    table.add_row("Spearman rank correlation", "0.997", out["spearman"])
    report(table.render() + "\n\n" + format_cdf_rows(out["ratios"], label="measured/real"))

    # Shape assertions: high accuracy, tiny extreme-error share, no skew.
    assert out["within_10pct"] >= 0.80
    assert out["over_30pct"] <= 0.05
    assert 0.95 <= out["median_ratio"] <= 1.05
    assert out["spearman"] >= 0.99
