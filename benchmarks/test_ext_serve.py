"""Serve-layer performance guards (``pytest benchmarks -m benchguard``).

Three budgets pinned here, all on the 1,000-relay fullnet dataset the
acceptance criteria are phrased in terms of:

* **Index build < 1 s** — :meth:`MatrixIndex.build` is a handful of
  O(n²) vectorized passes (argsort, take_along_axis, isfinite sums).
  A regression to per-row Python loops is a ~10x miss, not marginal.
* **Point queries ≥ 100k/s** — the hot path is two dict lookups and
  one array read. A per-query allocation storm or an O(n) scan
  sneaking in drops this by orders of magnitude.
* **k-NN queries ≥ 10k/s** — O(k) slices of the precomputed neighbor
  ranking. Falling back to sorting the row per query is the regression
  this floor catches.
"""

import time

import numpy as np
import pytest

from _config import scaled
from repro.core.dataset import RttMatrix
from repro.serve import MatrixIndex

#: Hard ceiling for one index build at 1,000 relays.
BUILD_CEILING_S = 1.0
#: Query-rate floors (queries per second) at 1,000 relays — the same
#: floors ``repro bench --check`` enforces via ``check_serve_qps``.
POINT_QPS_FLOOR = 100_000.0
KNN_QPS_FLOOR = 10_000.0


def _best_of(rounds: int, run) -> float:
    """Best-of-N wall time: the minimum is the least noisy estimator."""
    return min(run() for _ in range(rounds))


def _fullnet_matrix(n_relays: int, hole_fraction: float = 0.1):
    """A 1,000-relay-scale matrix with budgeted-campaign-like holes."""
    nodes = [f"R{i:04d}" for i in range(n_relays)]
    rng = np.random.default_rng(47)
    iu, ju = np.triu_indices(n_relays, k=1)
    rtts = rng.uniform(2.0, 400.0, size=iu.size)
    rtts[rng.random(iu.size) < hole_fraction] = np.nan
    values = np.zeros((n_relays, n_relays))
    values[iu, ju] = rtts
    values[ju, iu] = rtts
    return RttMatrix.from_array(nodes, values, copy=False), nodes, rng


@pytest.mark.benchguard
def test_index_build_guard(report):
    """One MatrixIndex build at 1,000 relays must beat 1 s."""
    n_relays = scaled(1000, minimum=400)
    matrix, _, _ = _fullnet_matrix(n_relays)

    def time_build() -> float:
        start = time.perf_counter()
        index = MatrixIndex.build(matrix)
        assert len(index) == n_relays
        return time.perf_counter() - start

    wall_s = _best_of(3, time_build)
    report(
        f"index build, {n_relays} relays / {matrix.num_measured} measured "
        f"pairs: {wall_s * 1000:.0f} ms (ceiling {BUILD_CEILING_S * 1000:.0f} ms)"
    )
    assert wall_s < BUILD_CEILING_S


@pytest.mark.benchguard
def test_point_query_rate_guard(report):
    """Point lookups must clear 100k queries/sec at 1,000 relays."""
    n_relays = scaled(1000, minimum=400)
    queries = scaled(60_000, minimum=10_000)
    matrix, nodes, rng = _fullnet_matrix(n_relays)
    index = MatrixIndex.build(matrix)
    pair_ids = rng.integers(0, n_relays, size=(queries, 2))
    pairs = [(nodes[int(i)], nodes[int(j)]) for i, j in pair_ids]

    def time_points() -> float:
        point = index.point
        start = time.perf_counter()
        for a, b in pairs:
            point(a, b)
        return time.perf_counter() - start

    wall_s = _best_of(3, time_points)
    qps = queries / wall_s
    report(
        f"point queries, {n_relays} relays: {qps:,.0f}/s "
        f"(floor {POINT_QPS_FLOOR:,.0f}/s)"
    )
    assert qps >= POINT_QPS_FLOOR


@pytest.mark.benchguard
def test_knn_query_rate_guard(report):
    """k-NN (k=10) must clear 10k queries/sec at 1,000 relays."""
    n_relays = scaled(1000, minimum=400)
    queries = scaled(12_000, minimum=2_000)
    matrix, nodes, rng = _fullnet_matrix(n_relays)
    index = MatrixIndex.build(matrix)
    targets = [nodes[int(i)] for i in rng.integers(0, n_relays, size=queries)]

    def time_knn() -> float:
        k_nearest = index.k_nearest
        start = time.perf_counter()
        for a in targets:
            k_nearest(a, 10)
        return time.perf_counter() - start

    wall_s = _best_of(3, time_knn)
    qps = queries / wall_s
    report(
        f"k-NN queries (k=10), {n_relays} relays: {qps:,.0f}/s "
        f"(floor {KNN_QPS_FLOOR:,.0f}/s)"
    )
    assert qps >= KNN_QPS_FLOOR
