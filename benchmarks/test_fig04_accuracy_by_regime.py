"""Figure 4 — Ting accuracy split by ground-truth latency regime.

Paper: CDFs per regime (<50, 50-150, 150-250, >250 ms) grow increasingly
vertical around 1.0; most outliers come from the <50 ms group (large
relative error, small absolute error).
"""

import numpy as np

from repro.analysis.report import TextTable

REGIMES = ((0.0, 50.0), (50.0, 150.0), (150.0, 250.0), (250.0, float("inf")))


def test_fig04_accuracy_by_regime(validation_sweep, benchmark, report):
    sweep = validation_sweep

    def analyze():
        ratios = sweep.estimates / sweep.pings
        rows = []
        for low, high in REGIMES:
            mask = (sweep.pings >= low) & (sweep.pings < high)
            if mask.sum() == 0:
                rows.append((low, high, 0, np.nan, np.nan))
                continue
            within = float(np.mean(np.abs(ratios[mask] - 1.0) <= 0.10))
            spread = float(np.percentile(ratios[mask], 90) - np.percentile(ratios[mask], 10))
            rows.append((low, high, int(mask.sum()), within, spread))
        return rows

    rows = benchmark(analyze)

    table = TextTable(
        "Figure 4: accuracy by ground-truth RTT regime",
        ["regime (ms)", "pairs", "within 10%", "p10-p90 ratio spread"],
    )
    for low, high, count, within, spread in rows:
        label = f"{low:.0f}-{high:.0f}" if high != float("inf") else f">{low:.0f}"
        table.add_row(label, count, within, spread)
    report(table.render())

    populated = [r for r in rows if r[2] > 0]
    assert len(populated) >= 3, "need at least three populated regimes"
    # The paper's shape: higher-latency regimes are tighter around 1.
    first_spread = populated[0][4]
    last_spread = populated[-1][4]
    assert last_spread < first_spread
    # High-latency regimes are essentially always within 10%.
    assert populated[-1][3] >= 0.9
