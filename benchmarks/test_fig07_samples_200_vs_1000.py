"""Figure 7 — 200-sample measurements match 1000-sample measurements.

Paper: the all-pairs PlanetLab sweep re-measured at 200 samples produces
a measured/real CDF nearly identical to the 1000-sample sweep, so the
cheaper tier is the recommended operating point.
"""

import numpy as np

from repro.analysis.report import TextTable
from repro.analysis.stats import fraction_within


def test_fig07_sample_tiers_agree(validation_sweep, benchmark, report):
    sweep = validation_sweep

    def analyze():
        big = sweep.estimates / sweep.pings
        small = sweep.estimates_small / sweep.pings
        return {
            "within10_big": fraction_within(sweep.estimates, sweep.pings, 0.10),
            "within10_small": fraction_within(
                sweep.estimates_small, sweep.pings, 0.10
            ),
            "median_big": float(np.median(big)),
            "median_small": float(np.median(small)),
            # Kolmogorov-Smirnov-style max CDF gap between the two tiers.
            "max_cdf_gap": _max_cdf_gap(big, small),
        }

    out = benchmark(analyze)

    table = TextTable(
        "Figure 7: full-tier vs reduced-tier sampling (measured/real)",
        ["metric", "full tier", "reduced tier"],
    )
    table.add_row("within 10% of real", out["within10_big"], out["within10_small"])
    table.add_row("median ratio", out["median_big"], out["median_small"])
    report(
        table.render()
        + f"\nmax CDF gap between tiers: {out['max_cdf_gap']:.3f} "
        "(paper: curves 'almost identical')"
    )

    # Shape: the tiers agree closely.
    assert abs(out["within10_big"] - out["within10_small"]) <= 0.10
    assert out["max_cdf_gap"] <= 0.15
    assert abs(out["median_big"] - out["median_small"]) <= 0.03


def _max_cdf_gap(a: np.ndarray, b: np.ndarray) -> float:
    grid = np.sort(np.concatenate([a, b]))
    cdf_a = np.searchsorted(np.sort(a), grid, side="right") / a.size
    cdf_b = np.searchsorted(np.sort(b), grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())
