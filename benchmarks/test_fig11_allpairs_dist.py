"""Figure 11 — RTT distribution of the all-pairs live-relay dataset.

Paper: Ting measured all pairs of 50 random live relays; the RTT
distribution's shape matches the broad latency spread of Figure 8
(roughly uniform coverage from tens of ms to ~400 ms).
"""

import numpy as np

from repro.analysis.report import TextTable, format_cdf_rows


def test_fig11_allpairs_distribution(allpairs_dataset, benchmark, report):
    dataset = allpairs_dataset

    def analyze():
        values = dataset.matrix.values()
        return {
            "values": values,
            "min": float(values.min()),
            "median": float(np.median(values)),
            "p90": float(np.percentile(values, 90)),
            "max": float(values.max()),
            "mean": float(values.mean()),
        }

    out = benchmark(analyze)

    table = TextTable(
        f"Figure 11: all-pairs RTT distribution "
        f"({len(dataset.matrix)} relays, {dataset.matrix.num_measured} pairs)",
        ["metric", "paper", "measured"],
    )
    table.add_row("min RTT (ms)", "~0", out["min"])
    table.add_row("median RTT (ms)", "~100-150", out["median"])
    table.add_row("p90 RTT (ms)", "~250-300", out["p90"])
    table.add_row("max RTT (ms)", "~400", out["max"])
    report(table.render() + "\n" + format_cdf_rows(out["values"], label="RTT (ms)"))

    # Shape: broad spread from near-zero to intercontinental.
    assert out["min"] < 60.0
    assert out["max"] > 250.0
    assert 60.0 < out["median"] < 250.0
    # Completeness: every pair measured.
    assert dataset.matrix.is_complete
