"""Extension — latency-aware circuit selection with Ting data.

Section 5.2's motivation made concrete: compare Tor's default
bandwidth-weighted selection, LASTor-style geographic selection, and
Ting-informed selection over the same relay set. Measured RTTs beat the
geographic proxy (which cannot see TIVs or routing inflation) while
retaining most of the selection entropy.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.apps.pathopt import CircuitSelector, RelayInfo


def test_ext_latency_aware_path_selection(allpairs_dataset, benchmark, report):
    dataset = allpairs_dataset
    testbed = dataset.testbed
    relays = []
    for fingerprint in dataset.matrix.nodes:
        descriptor = testbed.consensus.get(fingerprint)
        relays.append(
            RelayInfo(
                name=fingerprint,
                bandwidth_kbps=descriptor.bandwidth_kbps,
                location=testbed.geolocation.lookup(descriptor.address),
            )
        )
    selector = CircuitSelector(
        relays, dataset.matrix, np.random.default_rng(91)
    )
    n_circuits = scaled(600, minimum=300)

    def run_experiment():
        return selector.evaluate_all(n_circuits=n_circuits)

    outcomes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        f"Extension: circuit selection strategies ({n_circuits} circuits, "
        f"{len(relays)} relays)",
        ["strategy", "median RTT (ms)", "p90 RTT (ms)", "entropy (bits)", "max"],
    )
    for strategy, outcome in outcomes.items():
        table.add_row(
            strategy,
            outcome.median_rtt_ms(),
            float(np.percentile(outcome.circuit_rtts_ms, 90)),
            outcome.selection_entropy(),
            outcome.max_entropy(),
        )
    report(table.render())

    default = outcomes["default"]
    geographic = outcomes["geographic"]
    ting = outcomes["ting"]
    # Shape: Ting-informed selection gives the lowest latencies; the
    # geographic proxy helps but less; informed selection costs some
    # entropy yet keeps most of it.
    assert ting.median_rtt_ms() < default.median_rtt_ms() * 0.8
    assert ting.median_rtt_ms() <= geographic.median_rtt_ms()
    assert geographic.median_rtt_ms() < default.median_rtt_ms()
    assert ting.selection_entropy() > 0.6 * ting.max_entropy()
