"""Section 5.3 — host-type diversity via reverse-DNS classification.

Paper: of 5484 running relays with an rDNS name, at least 3355 (~61%)
are residential (Schulman-style classifier extended to Europe); 361 sit
at named hosting providers and 345 more inside a provider address range;
1150 of 6634 relays have no rDNS name at all.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.apps.coverage import ResidentialClassifier, synthesize_archive


def test_sec53_residential_classification(benchmark, report):
    archive = synthesize_archive(
        np.random.default_rng(53),
        n_days=3,
        initial_relays=scaled(3000, minimum=1000),
    )
    classifier = ResidentialClassifier()

    def run_experiment():
        snapshot = archive.latest
        return (
            classifier.survey(snapshot),
            classifier.residential_fraction_of_named(snapshot),
            snapshot.total_relays,
        )

    counts, residential_fraction, total = benchmark(run_experiment)

    unnamed_fraction = counts["unnamed"] / total
    table = TextTable(
        f"Section 5.3: rDNS classification of {total} relays",
        ["metric", "paper", "measured"],
    )
    table.add_row("residential share of named", "~0.61", residential_fraction)
    table.add_row("unnamed share of all", "~0.17", unnamed_fraction)
    table.add_row("hosting (name or address range)", "~700 of 6634", counts["hosting"])
    table.add_row("other/institutional", "rest", counts["other"])
    report(table.render())

    # Shape: residential majority among named; a sizable unnamed share;
    # hosting clearly present but a minority.
    assert 0.45 <= residential_fraction <= 0.75
    assert 0.10 <= unnamed_fraction <= 0.25
    assert 0 < counts["hosting"] < counts["residential"]
