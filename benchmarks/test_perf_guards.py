"""Hot-path performance guards (``pytest benchmarks -m benchguard``).

Each guard times a rewritten hot path against an inline transcription
of the implementation it replaced, at a scale where the asymptotic or
constant-factor difference dwarfs timer noise. They exist so the slow
pattern cannot quietly come back: a revert shows up as a hard assertion
failure, not a gradual wall-time drift someone has to notice.
"""

import hashlib
import time

import pytest

from _config import scaled
from repro.tor.crypto import LayerCipher

_BLOCK = 64
#: The acceptance bar for the fast cell path: at least this much faster
#: than the per-byte loop on full-size relay-cell bodies.
CRYPTO_SPEEDUP_FLOOR = 5.0


class _PerByteLayerCipher:
    """The replaced implementation: per-byte XOR, one-shot BLAKE2b."""

    def __init__(self, key: bytes) -> None:
        self._key = key
        self._counter = 0
        self._leftover = b""

    def process(self, data: bytes) -> bytes:
        out = bytearray(len(data))
        stream = self._keystream(len(data))
        for i, (d, k) in enumerate(zip(data, stream)):
            out[i] = d ^ k
        return bytes(out)

    def _keystream(self, n: int) -> bytes:
        chunks = [self._leftover]
        have = len(self._leftover)
        while have < n:
            block = hashlib.blake2b(
                self._counter.to_bytes(8, "big"),
                key=self._key[:64],
                digest_size=_BLOCK,
            ).digest()
            self._counter += 1
            chunks.append(block)
            have += _BLOCK
        stream = b"".join(chunks)
        self._leftover = stream[n:]
        return stream[:n]


def _best_of(rounds: int, run) -> float:
    """Best-of-N wall time: the minimum is the least noisy estimator."""
    return min(run() for _ in range(rounds))


@pytest.mark.benchguard
def test_cell_crypto_fast_path_guard(report):
    """The big-int XOR cipher must beat the per-byte loop >= 5x."""
    cells = scaled(3_000, minimum=1_000)
    body = bytes(range(256)) * 2  # 512-byte relay-cell-sized payload
    key = b"\x07" * 32

    def time_cipher(make_cipher) -> float:
        cipher = make_cipher(key)
        start = time.perf_counter()
        for _ in range(cells):
            cipher.process(body)
        return time.perf_counter() - start

    # Interleaved best-of-5 rounds: drift in machine load hits both
    # implementations equally instead of biasing whichever ran last.
    fast_s = _best_of(5, lambda: time_cipher(LayerCipher))
    slow_s = _best_of(5, lambda: time_cipher(_PerByteLayerCipher))
    speedup = slow_s / fast_s
    report(
        f"cell crypto, {cells} x 512-byte bodies: per-byte "
        f"{slow_s * 1000:.0f} ms vs big-int XOR {fast_s * 1000:.0f} ms "
        f"({speedup:.1f}x)"
    )
    # Equivalence of the two keystreams is pinned separately by
    # tests/tor/test_crypto_equivalence.py; this guard is purely speed.
    assert speedup >= CRYPTO_SPEEDUP_FLOOR


@pytest.mark.benchguard
def test_event_comparison_guard(report):
    """Slotted hand-compared events must beat tuple-building compares.

    The heap performs O(log n) ``__lt__`` calls per push/pop at tens of
    millions of operations per campaign; the guard times the comparison
    itself, which is what the ``_Event`` rewrite bought.
    """
    from repro.netsim.engine import _Event

    class TupleEvent:
        # The replaced pattern: dataclass-style tuple comparison.
        def __init__(self, t, s):
            self.time = t
            self.seq = s

        def __lt__(self, other):
            return (self.time, self.seq) < (other.time, other.seq)

    n = scaled(400_000, minimum=100_000)
    fast_events = [_Event(float(i % 97), i, lambda: None) for i in range(n)]
    slow_events = [TupleEvent(float(i % 97), i) for i in range(n)]

    def time_sort(events) -> float:
        start = time.perf_counter()
        sorted(events)
        return time.perf_counter() - start

    fast_s = _best_of(3, lambda: time_sort(fast_events))
    slow_s = _best_of(3, lambda: time_sort(slow_events))
    report(
        f"event compare, sort of {n}: tuple-building {slow_s * 1000:.0f} ms "
        f"vs slotted {fast_s * 1000:.0f} ms ({slow_s / fast_s:.2f}x)"
    )
    # The win is a constant factor, not asymptotic; any honest margin
    # is modest, so guard only against the rewrite being fully undone.
    assert fast_s < slow_s
