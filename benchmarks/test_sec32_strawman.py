"""Section 3.2 — the strawman (Tor circuit + pings) vs Ting.

Paper: mixing ping with Tor measurements is untenable because networks
treat ICMP/TCP/Tor differently and forwarding delays go uncorrected;
Ting supersedes it. This bench quantifies that on the ground-truth
testbed: on differential-treatment networks the strawman's error
explodes while Ting's stays small.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.core.sampling import SamplePolicy
from repro.core.strawman import StrawmanMeasurer
from repro.core.ting import TingMeasurer
from repro.netsim.policies import PolicyModel
from repro.testbeds.planetlab import PlanetLabTestbed
from repro.util.errors import MeasurementError


def test_sec32_strawman_vs_ting(benchmark, report):
    testbed = PlanetLabTestbed.build(
        seed=32,
        n_relays=scaled(10, minimum=8),
        # A world where differential treatment is common and harsh, as in
        # the networks that motivated Section 3.2.
        policy_model=PolicyModel(differential_fraction=0.5, severe_fraction=0.5),
    )
    policy = SamplePolicy(samples=scaled(80, minimum=40), interval_ms=3.0)
    ting = TingMeasurer(testbed.measurement, policy=policy)
    strawman = StrawmanMeasurer(testbed.measurement, policy=policy)
    pairs = testbed.relay_pairs()[: scaled(15, minimum=10)]

    def run_experiment():
        rows = []
        for a, b in pairs:
            oracle = testbed.oracle_rtt(a, b)
            ting_error = abs(ting.measure_pair(a, b).rtt_ms - oracle) / oracle
            try:
                strawman_error = (
                    abs(strawman.measure_pair(a, b).rtt_ms - oracle) / oracle
                )
            except MeasurementError:
                continue  # pair not measurable by the strawman at all
            rows.append((ting_error, strawman_error))
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert len(rows) >= 5

    ting_errors = np.array([t for t, _ in rows])
    strawman_errors = np.array([s for _, s in rows])

    table = TextTable(
        f"Section 3.2: relative error vs true Tor-path RTT ({len(rows)} pairs)",
        ["technique", "median error", "p90 error", "max error"],
    )
    table.add_row(
        "strawman (circuit + ping)",
        float(np.median(strawman_errors)),
        float(np.percentile(strawman_errors, 90)),
        float(strawman_errors.max()),
    )
    table.add_row(
        "Ting",
        float(np.median(ting_errors)),
        float(np.percentile(ting_errors, 90)),
        float(ting_errors.max()),
    )
    report(table.render())

    # Shape: Ting dominates, and the strawman's tail is catastrophic.
    # (Ting's own worst case is a low-RTT pair where forwarding floors
    # loom large relatively — still a small absolute error.)
    assert np.median(ting_errors) < np.median(strawman_errors) + 0.02
    assert np.percentile(ting_errors, 90) < np.percentile(strawman_errors, 90)
    assert strawman_errors.max() > 0.15
    assert ting_errors.max() < 0.5
    assert np.median(ting_errors) < 0.10
