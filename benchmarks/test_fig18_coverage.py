"""Figure 18 — relays and unique /24s over a two-month window.

Paper (Tor Metrics, Feb 28 - Apr 28 2015): total running relays in the
mid-6000s with unique /24 prefixes between 5426 and 6044 — enough
network diversity to make Ting a medium-scale measurement platform.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable, format_series
from repro.apps.coverage import synthesize_archive


def test_fig18_coverage(benchmark, report):
    n_days = scaled(60, minimum=20)
    initial = scaled(6300, minimum=1500)

    def run_experiment():
        return synthesize_archive(
            np.random.default_rng(18), n_days=n_days, initial_relays=initial
        )

    archive = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    days, totals, uniques = archive.series()
    ratio = np.array(uniques) / np.array(totals)

    table = TextTable(
        f"Figure 18: relay population over {n_days} days "
        f"(initial {initial} relays)",
        ["metric", "paper", "measured"],
    )
    table.add_row("total relays (min-max)", "~6500-7000", f"{min(totals)}-{max(totals)}")
    table.add_row(
        "unique /24s (min-max)", "5426-6044", f"{min(uniques)}-{max(uniques)}"
    )
    table.add_row("/24s per relay", "~0.85-0.9", float(ratio.mean()))
    report(
        table.render()
        + "\n"
        + format_series("unique /24s by day", days, uniques, max_points=12)
    )

    # Shape: /24 diversity tracks the relay count at ~85-90%, the
    # population is stable-to-growing, and both series move together.
    assert 0.80 <= ratio.mean() <= 0.95
    assert min(totals) >= initial * 0.9
    assert totals[-1] >= totals[0] * 0.98
    correlation = float(np.corrcoef(totals, uniques)[0, 1])
    assert correlation > 0.8
