"""Figure 12 — RTT knowledge speeds up deanonymization.

Paper (1000 simulated circuits over the 50-node all-pairs matrix):
median fraction of the network probed falls from 72% (RTT-unaware)
to 62% (ignore too-large RTTs) to 48% (Algorithm 1's informed target
selection) — a 1.5x median speedup. Footnote 5: the weighted variant
beats a decreasing-weight baseline by ~2x.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.apps.deanon import DeanonymizationSimulator


def test_fig12_deanon_speedup(allpairs_dataset, benchmark, report):
    dataset = allpairs_dataset
    rng = np.random.default_rng(12)
    simulator = DeanonymizationSimulator(dataset.matrix, rng)
    runs = scaled(400, minimum=150)

    def run_experiment():
        return simulator.evaluate_all(runs=runs)

    paired = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    medians = {
        strategy: float(np.median([r.fraction_tested for r in results]))
        for strategy, results in paired.items()
    }
    speedup = medians["unaware"] / medians["informed"]

    table = TextTable(
        f"Figure 12: fraction of network probed ({runs} runs, "
        f"{len(dataset.matrix)} nodes)",
        ["strategy", "paper median", "measured median"],
    )
    table.add_row("RTT-unaware", "0.72", medians["unaware"])
    table.add_row("ignore too-large RTTs", "0.62", medians["ignore"])
    table.add_row("+ informed target selection", "0.48", medians["informed"])
    report(
        table.render()
        + f"\nmedian speedup (unaware/informed): {speedup:.2f}x (paper: 1.5x)"
    )

    # Shape: strict ordering of the three techniques.
    assert medians["unaware"] == np.clip(medians["unaware"], 0.6, 0.8)
    assert medians["ignore"] < medians["unaware"]
    assert medians["informed"] <= medians["ignore"]
    assert speedup >= 1.1
    # Every run deanonymizes fully.
    for results in paired.values():
        assert all(r.found_entry and r.found_middle for r in results)
