"""Extension — concurrent measurement: makespan vs self-congestion.

Section 4.6: "an all-pairs matrix can be time-consuming to calculate."
The measurements are independent, so a Ting client can keep several
circuits in flight — but its own probe streams share the helper relays
and access link, so aggressive concurrency self-congests (head-of-line
blocking behind its own bursts) and pollutes the very minimum it is
trying to measure. This bench sweeps the concurrency level and reports
both the makespan win and the accuracy cost: modest parallelism is
essentially free, high parallelism is not.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.core.parallel import ParallelCampaign
from repro.core.sampling import SamplePolicy
from repro.testbeds.livetor import LiveTorTestbed

CONCURRENCY_LEVELS = (1, 4, 12)


def test_ext_parallel_campaign(benchmark, report):
    testbed = LiveTorTestbed.build(seed=93, n_relays=40)
    rng = testbed.streams.get("ext.parallel.pairs")
    relays = testbed.random_relays(scaled(10, minimum=8), rng)
    by_fp = {r.fingerprint: r for r in relays}
    policy = SamplePolicy(samples=scaled(40, minimum=20), interval_ms=3.0)

    def run_experiment():
        results = {}
        for level in CONCURRENCY_LEVELS:
            campaign = ParallelCampaign(
                testbed.measurement, relays, policy=policy, concurrency=level
            )
            outcome = campaign.run()
            errors = np.array(
                [
                    abs(rtt - testbed.oracle_rtt(by_fp[a], by_fp[b]))
                    / testbed.oracle_rtt(by_fp[a], by_fp[b])
                    for a, b, rtt in outcome.matrix.measured_pairs()
                ]
            )
            results[level] = (outcome, errors)
        return results

    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    base = results[1][0].makespan_ms
    table = TextTable(
        f"Extension: campaign concurrency ({len(relays)} relays, "
        f"{results[1][0].pairs_attempted} pairs)",
        ["concurrency", "makespan (s)", "speedup", "median err", "p90 err"],
    )
    for level in CONCURRENCY_LEVELS:
        outcome, errors = results[level]
        table.add_row(
            level,
            outcome.makespan_ms / 1000.0,
            f"{base / outcome.makespan_ms:.1f}x",
            float(np.median(errors)),
            float(np.percentile(errors, 90)),
        )
    report(
        table.render()
        + "\nmodest concurrency is ~free; aggressive concurrency "
        "self-congests the measurement host's own circuits."
    )

    # Shape: parallelism pays in makespan...
    assert results[4][0].makespan_ms < results[1][0].makespan_ms / 2
    assert results[12][0].makespan_ms < results[4][0].makespan_ms
    # ...and modest levels preserve accuracy...
    assert float(np.median(results[4][1])) < 0.08
    # ...while aggressive levels visibly pollute the minimum filter.
    assert float(np.median(results[12][1])) > float(np.median(results[4][1]))
    # All levels measure every pair.
    for level in CONCURRENCY_LEVELS:
        assert results[level][0].matrix.is_complete
