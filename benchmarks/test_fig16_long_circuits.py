"""Figure 16 — longer circuits offer vastly more low-latency options.

Paper: sampling 10,000 circuits per length 3-10 and scaling counts to
C(50, l): in the 200-300 ms band there are ~10x more 4-hop circuits than
3-hop, and four orders of magnitude more 10-hop circuits; only longer
circuits reach multi-second RTTs.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.apps.longcircuits import circuit_count_histogram, circuits_within_band


def test_fig16_long_circuits(allpairs_dataset, benchmark, report):
    dataset = allpairs_dataset
    n_samples = scaled(10_000, minimum=3000)
    rng = np.random.default_rng(16)
    # The scaled dataset's RTT scale shifts with node count; pick the
    # paper's flavor of "moderate band": around the median 3-hop RTT.
    lengths = tuple(range(3, 11))

    def run_experiment():
        histogram = circuit_count_histogram(
            dataset.matrix, lengths=lengths, n_samples=n_samples, rng=rng
        )
        three_hop = np.asarray(
            [r for r in _sample(dataset, 3, n_samples)], dtype=float
        )
        band_low = float(np.percentile(three_hop, 45))
        band_high = band_low + 100.0
        band = circuits_within_band(
            dataset.matrix,
            band_low,
            band_high,
            lengths=lengths,
            n_samples=n_samples,
            rng=np.random.default_rng(161),
        )
        return histogram, band, (band_low, band_high)

    histogram, band, (band_low, band_high) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    table = TextTable(
        f"Figure 16: circuits per length in the {band_low:.0f}-{band_high:.0f} ms band "
        f"({n_samples} samples/length, scaled to C(n, l))",
        ["length", "est. circuits", "vs 3-hop"],
    )
    for length in lengths:
        ratio = band[length] / band[3] if band[3] > 0 else float("inf")
        table.add_row(length, f"{band[length]:.3e}", f"{ratio:.1f}x")
    report(table.render())

    # Shape: an order of magnitude more 4-hop than 3-hop circuits in the
    # band, and growth with length beyond that.
    assert band[3] > 0
    assert band[4] >= band[3] * 4
    assert band[5] > band[4]
    # Max reachable RTT grows with circuit length.
    max_rtt = {
        length: centers[counts > 0].max() if (counts > 0).any() else 0.0
        for length, (centers, counts) in histogram.items()
    }
    assert max_rtt[10] > max_rtt[3]


def _sample(dataset, length, n_samples):
    from repro.apps.longcircuits import sample_circuit_rtts

    return sample_circuit_rtts(
        dataset.matrix, length, n_samples, np.random.default_rng(160)
    )
