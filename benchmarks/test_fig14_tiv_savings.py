"""Figure 14 — RTT savings from triangle-inequality-violation detours.

Paper (50-node all-pairs Ting matrix): 69% of pairs have at least one
TIV; the median best-detour saving is 7.5% and the top decile saves 28%
or more.
"""

import numpy as np

from repro.analysis.report import TextTable, format_cdf_rows
from repro.apps.tiv import find_tivs, tiv_summary


def test_fig14_tiv_savings(allpairs_dataset, benchmark, report):
    dataset = allpairs_dataset

    def analyze():
        return tiv_summary(dataset.matrix), find_tivs(dataset.matrix)

    summary, findings = benchmark(analyze)

    table = TextTable(
        f"Figure 14: TIV detour savings over {int(summary['pairs'])} pairs",
        ["metric", "paper", "measured"],
    )
    table.add_row("pairs with a TIV", "0.69", summary["tiv_fraction"])
    table.add_row("median saving", "0.075", summary["median_savings_fraction"])
    table.add_row("p90 saving", "0.28", summary["p90_savings_fraction"])
    body = table.render()
    if findings:
        savings = [f.savings_fraction for f in findings]
        body += "\n" + format_cdf_rows(savings, label="TIV savings fraction")
    report(body)

    # Shape: TIVs are widespread; typical savings modest; the tail large.
    assert summary["tiv_fraction"] >= 0.25
    assert 0.02 <= summary["median_savings_fraction"] <= 0.30
    assert summary["p90_savings_fraction"] >= summary["median_savings_fraction"]
    assert summary["p90_savings_fraction"] >= 0.10
