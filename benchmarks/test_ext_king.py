"""Extension — King vs Ting (Section 2's motivating comparison).

The paper positions Ting as King's successor: King bounced recursive
DNS queries off name servers near the targets, so (a) it measured the
*name servers*, not the hosts — skewing its ratio CDF left of 1 (the
paper contrasts this with Figure 3's symmetric CDF) — and (b) by 2015
only ~3% of authoritative servers still answered open recursion, so
most pairs were simply unmeasurable (Section 5.3: "we find that only 3%
continue to today").

This bench runs both techniques over the same residential host pairs:
accuracy with a 2002-era recursion rate, coverage with the 2015 rate.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.apps.king import KingMeasurer
from repro.netsim.dns import DnsInfrastructure
from repro.netsim.policies import TrafficClass
from repro.testbeds.livetor import LiveTorTestbed


def _deploy_dns(testbed, recursion_fraction, hosts):
    dns = DnsInfrastructure(
        testbed.sim,
        testbed.fabric,
        testbed.topology,
        testbed.builder,
        testbed.streams.get(f"king.dns.{recursion_fraction}"),
        open_recursion_fraction=recursion_fraction,
    )
    for host in hosts:
        dns.deploy_for(host)
    return dns


def test_ext_king_vs_ting(benchmark, report):
    testbed = LiveTorTestbed.build(seed=94, n_relays=40)
    rng = testbed.streams.get("king.pairs")
    relays = testbed.random_relays(scaled(12, minimum=8), rng)
    hosts = [testbed.topology.host_by_address(r.address) for r in relays]
    pairs = [
        (hosts[i], hosts[j])
        for i in range(len(hosts))
        for j in range(i + 1, len(hosts))
    ]

    # 2002-era DNS (most servers recurse) for the accuracy comparison;
    # 2015-era DNS for the coverage story.
    dns_2002 = _deploy_dns(testbed, 0.75, hosts)
    dns_2015 = _deploy_dns(testbed, 0.03, hosts)
    client = testbed.measurement.echo_client_host

    def run_experiment():
        king = KingMeasurer(dns_2002, client, samples=scaled(10, minimum=5))
        ratios = []
        for a, b in pairs:
            if not king.can_measure(a, b):
                continue
            estimate = king.measure_pair(a, b).rtt_ms
            truth = testbed.latency.true_rtt_ms(a, b, TrafficClass.TCP)
            ratios.append(estimate / truth)
        modern = KingMeasurer(dns_2015, client)
        coverage_2015 = sum(
            1 for a, b in pairs if modern.can_measure(a, b)
        ) / len(pairs)
        coverage_2002 = len(ratios) / len(pairs)
        return np.array(ratios), coverage_2002, coverage_2015

    ratios, coverage_2002, coverage_2015 = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    assert ratios.size >= 5

    table = TextTable(
        f"Extension: King vs Ting over {len(pairs)} host pairs",
        ["metric", "King (paper / ours)", "Ting (Fig. 3)"],
    )
    table.add_row(
        "median estimate/true ratio",
        f"skewed < 1 / {np.median(ratios):.3f}",
        "~1.01 (symmetric)",
    )
    table.add_row(
        "pairs measurable, 2002 recursion",
        f"72-79% / {coverage_2002:.0%}",
        "100% (any Tor relay pair)",
    )
    table.add_row(
        "pairs measurable, 2015 recursion",
        f"~3%-ish / {coverage_2015:.0%}",
        "100%",
    )
    report(table.render())

    # Shape: King skews low (it measures the better-connected name
    # servers), and its 2015 coverage collapses while Ting's does not.
    assert np.median(ratios) < 1.0
    assert coverage_2002 > 0.5
    assert coverage_2015 < 0.15
