"""Ablation — the leg circuit must be (w, x, z), not the 2-hop (w, x).

The paper's Figure 2(b) sketches the leg circuit as "(w, x)", but its
Equation 2 — and its statement that z is the exit of *every* Ting
circuit — imply the implemented shape (w, x, z). This bench demonstrates
the two reasons the 2-hop reading fails:

1. **Reach**: a 2-hop (w, x) leg makes x the exit, so relays whose exit
   policies reject the echo server simply cannot be measured. On a
   live-network mix only a minority of relays are exits.
2. **Bias**: even where it runs, the 2-hop leg omits one local loopback
   hop and z's forwarding delay, so the Eq. 4 subtraction no longer
   cancels — estimates skew systematically.
"""

import numpy as np

from _config import scaled
from repro.analysis.report import TextTable
from repro.core.sampling import SamplePolicy, min_estimate
from repro.core.ting import TingMeasurer
from repro.testbeds.planetlab import PlanetLabTestbed
from repro.util.errors import MeasurementError, StreamError
from repro.util.errors import CircuitError


def _measure_two_hop_leg(measurement, x_fp, policy):
    """The naive 2-hop leg circuit (w, x) with x as exit."""
    controller = measurement.controller
    circuit = controller.build_circuit([measurement.relay_w.fingerprint, x_fp])
    try:
        stream = controller.open_stream(
            circuit, measurement.echo_address, measurement.echo_port
        )
        result = measurement.echo_client.probe(
            stream, samples=policy.samples, interval_ms=policy.interval_ms
        )
        stream.close()
    finally:
        controller.close_circuit(circuit)
    return min_estimate(result.rtts_ms)


def test_ablation_cx_circuit_shape(benchmark, report):
    testbed = PlanetLabTestbed.build(seed=72, n_relays=scaled(10, minimum=8))
    policy = SamplePolicy(samples=scaled(80, minimum=40), interval_ms=3.0)
    measurer = TingMeasurer(testbed.measurement, policy=policy)
    pairs = testbed.relay_pairs()[: scaled(12, minimum=8)]

    def run_experiment():
        three_hop_errors, two_hop_errors = [], []
        for a, b in pairs:
            oracle = testbed.oracle_rtt(a, b)
            result = measurer.measure_pair(a, b)
            three_hop_errors.append(abs(result.rtt_ms - oracle) / oracle)
            # Recompute Eq. 4 with naive 2-hop legs.
            leg_a = _measure_two_hop_leg(
                testbed.measurement, a.fingerprint, policy
            )
            leg_b = _measure_two_hop_leg(
                testbed.measurement, b.fingerprint, policy
            )
            naive = result.circuit_xy.min_ms - leg_a / 2.0 - leg_b / 2.0
            two_hop_errors.append(abs(naive - oracle) / oracle)
        return np.array(three_hop_errors), np.array(two_hop_errors)

    three_hop, two_hop = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # Reach failure: against a non-exit relay the 2-hop leg cannot even
    # attach its echo stream.
    from repro.tor.directory import ExitPolicy

    victim = testbed.relays[0]
    victim.exit_policy = ExitPolicy.reject_all()
    reach_failed = False
    try:
        _measure_two_hop_leg(
            testbed.measurement,
            victim.fingerprint,
            SamplePolicy(samples=5, timeout_ms=10_000.0),
        )
    except (StreamError, CircuitError, MeasurementError):
        reach_failed = True

    table = TextTable(
        f"Ablation: leg-circuit shape ({len(pairs)} pairs)",
        ["leg shape", "median rel. error", "p90 rel. error"],
    )
    table.add_row(
        "(w, x, z) - implemented",
        float(np.median(three_hop)),
        float(np.percentile(three_hop, 90)),
    )
    table.add_row(
        "(w, x) - naive 2-hop",
        float(np.median(two_hop)),
        float(np.percentile(two_hop, 90)),
    )
    report(
        table.render()
        + f"\n2-hop leg vs non-exit relay: {'FAILS (cannot attach)' if reach_failed else 'unexpectedly worked'}"
    )

    assert reach_failed, "2-hop leg should be unusable against non-exit relays"
    # The implemented shape is at least as accurate.
    assert np.median(three_hop) <= np.median(two_hop) + 0.02
