#!/usr/bin/env bash
# Single CI entry point: tier-1 tests, hot-path benchguards, and the
# wall-time regression check against the committed BENCH_ting.json
# baseline. Run from the repository root:
#
#   scripts/ci.sh            # everything
#   scripts/ci.sh --fast     # tier-1 only (skip benchguards + bench)
#
# REPRO_SCALE scales the benchguard workloads as usual.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

fast=0
if [[ "${1:-}" == "--fast" ]]; then
    fast=1
fi

echo "== tier-1 test suite =="
python -m pytest -x -q

if [[ "$fast" == "1" ]]; then
    echo "== fast mode: skipping benchguards and bench check =="
    exit 0
fi

echo "== hot-path benchguards =="
python -m pytest benchmarks -m benchguard -x -q

echo "== bench regression check =="
# Compares fresh timings against the committed baseline; writes the
# fresh report to a scratch file so the baseline stays untouched.
python -m repro.cli bench --check --output /tmp/BENCH_ting.ci.json

echo "== CI green =="
