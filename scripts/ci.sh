#!/usr/bin/env bash
# Single CI entry point: tier-1 tests, hot-path benchguards, and the
# wall-time regression check against the committed BENCH_ting.json
# baseline. Run from the repository root:
#
#   scripts/ci.sh            # everything
#   scripts/ci.sh --fast     # tier-1 only (skip benchguards + bench)
#
# REPRO_SCALE scales the benchguard workloads as usual.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

fast=0
if [[ "${1:-}" == "--fast" ]]; then
    fast=1
fi

echo "== tier-1 test suite =="
python -m pytest -x -q

if [[ "$fast" == "1" ]]; then
    echo "== fast mode: skipping benchguards and bench check =="
    exit 0
fi

echo "== hot-path benchguards =="
# Includes the null-observability and null-event-bus overhead guards:
# the always-on telemetry call sites must stay under 2% of campaign wall.
python -m pytest benchmarks -m benchguard -x -q

echo "== work-stealing chaos test =="
# The forked stealing path under an injected straggler: the merged
# matrix must be bit-identical to a healthy run, the fast worker must
# absorb the slow worker's share, and the leg phase must keep total
# leg builds pinned at n. Runs inside tier-1 too; gated explicitly so
# a future tier split cannot silently drop it.
python -m pytest tests/core/test_shard_steal.py -x -q

echo "== watchdog smoke test =="
# A deliberately wedged shard worker must trip the stall watchdog and
# fail the campaign within its deadline — never hang CI. Shard 0 is
# the wedged one with single-pair chunks: under work stealing worker 0
# always claims a chunk (worker 1 would have to drain the whole queue
# before worker 0's first get returns), so the drill fires
# deterministically. The outer `timeout` is the backstop: if the
# watchdog regresses into a hang, this step dies loudly instead of
# stalling the pipeline.
timeout 120 python - <<'PY'
import functools, sys, tempfile, time
from pathlib import Path

from repro.core.sampling import SamplePolicy
from repro.core.shard import CampaignTelemetry, ShardedCampaign
from repro.obs import categorize_failure
from repro.testbeds.livetor import LiveTorTestbed
from repro.util.errors import MeasurementError

factory = functools.partial(LiveTorTestbed.build, seed=3, n_relays=14)
testbed = factory()
fps = [d.fingerprint for d in testbed.random_relays(5, testbed.streams.get("shard.sel"))]
dump = Path(tempfile.mkdtemp()) / "postmortem.json"
telemetry = CampaignTelemetry(
    heartbeat_s=0.1, stall_timeout_s=2.0,
    postmortem_path=dump, drill_hang_after={0: 1},
)
campaign = ShardedCampaign(
    factory, fps, policy=SamplePolicy(samples=3, interval_ms=2.0),
    workers=2, telemetry=telemetry, steal_chunk_pairs=1,
)
started = time.monotonic()
try:
    campaign.run()
except MeasurementError as exc:
    elapsed = time.monotonic() - started
    assert "shard 0 stalled" in str(exc), exc
    assert categorize_failure(str(exc)) == "stall", exc
    assert dump.exists(), "no flight-recorder post-mortem written"
    print(f"watchdog tripped in {elapsed:.1f}s: {exc}")
else:
    sys.exit("hung worker did not trip the watchdog")
PY

echo "== planner campaign smoke test =="
# Full-network-scale gate for the budgeted planner path: a ~300-relay
# target set, a cold-start budgeted campaign folded into a dataset,
# then a second planner pass over the now-stale dataset that must (a)
# produce a non-empty refresh plan, (b) actually update matrix entries
# via absorb, and (c) keep the whole round trip under a hard wall
# ceiling — the "1,000-relay campaigns in minutes" scale proof at CI
# size. The outer `timeout` is the backstop against hangs.
timeout 300 python - <<'PY'
import functools, time

from repro.core.dataset import CampaignDataset, RttMatrix
from repro.core.planner import CampaignPlanner
from repro.core.sampling import SamplePolicy
from repro.core.shard import ShardedCampaign
from repro.testbeds.livetor import LiveTorTestbed

WALL_CEILING_S = 180.0
started = time.monotonic()

factory = functools.partial(LiveTorTestbed.build, seed=11, n_relays=320)
testbed = factory()
fps = [d.fingerprint
       for d in testbed.random_relays(300, testbed.streams.get("ci.plan"))]
policy = SamplePolicy(samples=3, interval_ms=2.0)

# Round 1: cold start — every pair is a coverage candidate.
plan = CampaignPlanner(fps, seed=11).plan(budget_pairs=400)
assert len(plan.pairs) == 400, f"cold-start plan={len(plan.pairs)}"
report = ShardedCampaign(
    factory, fps, policy=policy, workers=4,
    pairs=plan.pairs, observe=True, clamp_to_cpus=True,
).run()
dataset = CampaignDataset(matrix=RttMatrix(fps))
absorbed = dataset.absorb(report.matrix, provenance=report.provenance)
assert absorbed > 0, "cold-start campaign absorbed nothing"

# Round 2: the dataset is now stale history — the planner must find a
# non-empty refresh (unmeasured pairs still dominate at this budget)
# and absorbing the rerun must touch entries again. Quality scores feed
# the replan as a refresh axis (exercising the obs.health integration).
replan = CampaignPlanner(
    fps, dataset=dataset, seed=12, quality=dataset.quality()
).plan(budget_pairs=200)
assert len(replan.pairs) > 0, "refresh plan is empty"
rerun = ShardedCampaign(
    factory, fps, policy=policy, workers=4,
    pairs=replan.pairs, observe=True, clamp_to_cpus=True,
).run()
refreshed = dataset.absorb(rerun.matrix, provenance=rerun.provenance)
assert refreshed > 0, "refresh absorbed nothing"

# Persist the refreshed dataset for the health gate below.
dataset.save("/tmp/ting_planner_smoke.npz")

elapsed = time.monotonic() - started
assert elapsed < WALL_CEILING_S, f"planner smoke took {elapsed:.0f}s"
print(f"planner smoke: {absorbed} cold + {refreshed} refreshed entries "
      f"over {len(fps)} relays in {elapsed:.1f}s")
PY

echo "== dataset health gate =="
# The data-quality scorecard over the planner-smoke dataset must grade
# clean: no physically impossible estimates, no asymmetry, no stale
# pairs beyond a full sweep. `--check` exits nonzero on any FAIL check,
# which is exactly the gate a continuous-refresh deployment would run
# after every absorb.
python -m repro.cli -q health --input /tmp/ting_planner_smoke.npz --check

echo "== serve smoke gate =="
# The read side of the same dataset: build the serve index from the
# planner-smoke dataset and run the selftest — sampled queries
# re-answered by brute-force numpy references, mmap-backed answers
# bit-identical to in-memory answers, forked batches identical to
# inline ones. Exits nonzero on any mismatch.
python -m repro.cli -q serve --input /tmp/ting_planner_smoke.npz --selftest

echo "== serve telemetry smoke gate =="
# The observability of the same read side: answer a mixed JSONL batch
# with telemetry enabled (--stats) across forked workers, write the
# JSONL telemetry artifact, and assert every op in the batch shows up
# with a non-zero count and sane latency quantiles in the merged
# summary — the end-to-end proof that worker-side registries ship
# across the fork boundary and merge.
timeout 120 python - <<'PY'
import json, subprocess, sys, tempfile
from pathlib import Path

from repro.core.dataset import CampaignDataset

nodes = CampaignDataset.load("/tmp/ting_planner_smoke.npz").matrix.nodes
work = Path(tempfile.mkdtemp())
batch = work / "batch.jsonl"
ops = []
with batch.open("w") as fh:
    for i in range(240):
        a, b = nodes[i % len(nodes)], nodes[(i * 7 + 1) % len(nodes)]
        kind = i % 4
        if kind == 0:
            query = {"op": "point", "x": a, "y": b}
        elif kind == 1:
            query = {"op": "knn", "x": a, "k": 5}
        elif kind == 2:
            query = {"op": "percentile", "x": a, "q": 50.0}
        else:
            query = {"op": "via", "x": a, "y": b} if a != b else {"op": "point", "x": a, "y": b}
        ops.append(query["op"])
        fh.write(json.dumps(query) + "\n")
telemetry = work / "telemetry.jsonl"
subprocess.run(
    [sys.executable, "-m", "repro.cli", "-q", "serve",
     "--input", "/tmp/ting_planner_smoke.npz",
     "--batch", str(batch), "--workers", "4",
     "--stats", "--telemetry", str(telemetry)],
    check=True, stdout=subprocess.DEVNULL,
)
summary = json.loads(telemetry.read_text().splitlines()[0])
assert summary["record"] == "summary", summary
assert summary["queries"] == len(ops), summary
per_op = summary["per_op"]
for op in set(ops):
    row = per_op.get(op)
    assert row and row["count"] > 0, f"op {op!r} missing from merged telemetry: {per_op}"
    assert 0 < row["p50_ms"] <= row["max_ms"], (op, row)
print(f"serve telemetry smoke: {summary['queries']} queries, "
      f"per-op counts { {op: per_op[op]['count'] for op in sorted(per_op)} }")
PY

echo "== bench regression check =="
# Compares fresh timings against the committed baseline AND enforces
# the cross-workload invariant (campaign_sharded must hold at least
# CROSS_WORKLOAD_MARGIN of campaign_parallel's throughput — the
# duplicated-leg-work guard). Writes the fresh report to a scratch
# file so the baseline stays untouched.
python -m repro.cli bench --check --output /tmp/BENCH_ting.ci.json

echo "== CI green =="
