#!/usr/bin/env bash
# Single CI entry point: tier-1 tests, hot-path benchguards, and the
# wall-time regression check against the committed BENCH_ting.json
# baseline. Run from the repository root:
#
#   scripts/ci.sh            # everything
#   scripts/ci.sh --fast     # tier-1 only (skip benchguards + bench)
#
# REPRO_SCALE scales the benchguard workloads as usual.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

fast=0
if [[ "${1:-}" == "--fast" ]]; then
    fast=1
fi

echo "== tier-1 test suite =="
python -m pytest -x -q

if [[ "$fast" == "1" ]]; then
    echo "== fast mode: skipping benchguards and bench check =="
    exit 0
fi

echo "== hot-path benchguards =="
# Includes the null-observability and null-event-bus overhead guards:
# the always-on telemetry call sites must stay under 2% of campaign wall.
python -m pytest benchmarks -m benchguard -x -q

echo "== work-stealing chaos test =="
# The forked stealing path under an injected straggler: the merged
# matrix must be bit-identical to a healthy run, the fast worker must
# absorb the slow worker's share, and the leg phase must keep total
# leg builds pinned at n. Runs inside tier-1 too; gated explicitly so
# a future tier split cannot silently drop it.
python -m pytest tests/core/test_shard_steal.py -x -q

echo "== watchdog smoke test =="
# A deliberately wedged shard worker must trip the stall watchdog and
# fail the campaign within its deadline — never hang CI. Shard 0 is
# the wedged one with single-pair chunks: under work stealing worker 0
# always claims a chunk (worker 1 would have to drain the whole queue
# before worker 0's first get returns), so the drill fires
# deterministically. The outer `timeout` is the backstop: if the
# watchdog regresses into a hang, this step dies loudly instead of
# stalling the pipeline.
timeout 120 python - <<'PY'
import functools, sys, tempfile, time
from pathlib import Path

from repro.core.sampling import SamplePolicy
from repro.core.shard import CampaignTelemetry, ShardedCampaign
from repro.obs import categorize_failure
from repro.testbeds.livetor import LiveTorTestbed
from repro.util.errors import MeasurementError

factory = functools.partial(LiveTorTestbed.build, seed=3, n_relays=14)
testbed = factory()
fps = [d.fingerprint for d in testbed.random_relays(5, testbed.streams.get("shard.sel"))]
dump = Path(tempfile.mkdtemp()) / "postmortem.json"
telemetry = CampaignTelemetry(
    heartbeat_s=0.1, stall_timeout_s=2.0,
    postmortem_path=dump, drill_hang_after={0: 1},
)
campaign = ShardedCampaign(
    factory, fps, policy=SamplePolicy(samples=3, interval_ms=2.0),
    workers=2, telemetry=telemetry, steal_chunk_pairs=1,
)
started = time.monotonic()
try:
    campaign.run()
except MeasurementError as exc:
    elapsed = time.monotonic() - started
    assert "shard 0 stalled" in str(exc), exc
    assert categorize_failure(str(exc)) == "stall", exc
    assert dump.exists(), "no flight-recorder post-mortem written"
    print(f"watchdog tripped in {elapsed:.1f}s: {exc}")
else:
    sys.exit("hung worker did not trip the watchdog")
PY

echo "== bench regression check =="
# Compares fresh timings against the committed baseline AND enforces
# the cross-workload invariant (campaign_sharded must hold at least
# CROSS_WORKLOAD_MARGIN of campaign_parallel's throughput — the
# duplicated-leg-work guard). Writes the fresh report to a scratch
# file so the baseline stays untouched.
python -m repro.cli bench --check --output /tmp/BENCH_ting.ci.json

echo "== CI green =="
