"""The repro bench harness: timed representative workloads.

``repro bench`` times the pipeline's hot paths end to end — cell
crypto, the event engine, a single Ting pair, a concurrent all-pairs
campaign, the sharded multiprocess campaign, and a planner-budgeted
campaign at full-network relay scale (1,000 relays) — and writes a
schema-stable JSON report (``BENCH_ting.json``)::

    {workload: {wall_s, events_processed, cells_processed, throughput}}

Campaign-scale workloads additionally carry ``pairs_measured`` and
``pair_cost_ms`` (wall per attempted pair); ``--check`` pins the
full-network workload's per-pair cost to :data:`PAIR_COST_CEILING_MS`
via :func:`check_pair_cost`.

The committed report is the performance baseline for this machine
class; ``repro bench --check`` re-runs the workloads and exits nonzero
if any workload's wall time regressed by more than
:data:`REGRESSION_FACTOR` against the baseline. The factor is loose on
purpose: wall timings on shared CI boxes jitter by tens of percent, and
the check exists to catch order-of-magnitude fast-path regressions
(per-byte crypto loops, O(n^2) queue drains), not 10% noise.

``--check`` also enforces *cross-workload* invariants inside the fresh
report (:func:`check_cross_workload`): the sharded campaign — leg phase
plus work-stealing workers, no duplicated leg work, the testbed built
once — must not fall below :data:`CROSS_WORKLOAD_MARGIN` of the
single-process campaign's event throughput, even on one core. Before
the shard-engine v2 rework the sharded path re-built the world and
re-measured every leg per worker and sat at ~0.5x parallel throughput
on a single-CPU box; this guard keeps that class of duplicated-work
regression from coming back.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path
from typing import Callable

from repro.core.parallel import ParallelCampaign
from repro.core.planner import CampaignPlanner
from repro.core.sampling import AdaptiveSpec, SamplePolicy
from repro.core.shard import ShardedCampaign
from repro.core.ting import TingMeasurer
from repro.netsim.engine import Simulator
from repro.testbeds.livetor import LiveTorTestbed
from repro.tor.crypto import LayerCipher

#: ``--check`` fails when a workload's wall time exceeds baseline x this.
REGRESSION_FACTOR = 2.0

#: ``--check`` fails when the sharded campaign's throughput drops below
#: this fraction of the single-process campaign's *in the same report*.
#: The committed baseline holds sharded >= parallel outright; the
#: runtime margin absorbs shared-CI scheduling jitter. Calibration:
#: healthy ratios observed on a loaded single-core box span 0.88-1.30,
#: while the v1 duplicated-work bug (legs re-measured per worker, world
#: re-built per worker) pinned the ratio at ~0.5-0.6 — 0.75 separates
#: the two populations with margin on both sides.
CROSS_WORKLOAD_MARGIN = 0.75

#: Keys every workload entry carries, in schema order.
WORKLOAD_KEYS = ("wall_s", "events_processed", "cells_processed", "throughput")

#: Extra keys campaign-scale workloads may carry on top of
#: :data:`WORKLOAD_KEYS` (``--check`` and the schema tests allow them).
OPTIONAL_WORKLOAD_KEYS = (
    "pairs_measured",
    "pair_cost_ms",
    "point_qps",
    "knn_qps",
    "index_build_s",
    "point_p50_ms",
    "point_p99_ms",
    "knn_p50_ms",
    "knn_p99_ms",
)

#: ``--check`` fails when ``campaign_fullnet``'s per-pair wall cost
#: exceeds this. Calibration: one isolated pair task (samples=4) costs
#: ~10 ms of simulation on this machine class and the amortized leg
#: phase adds ~2 ms/pair at a 3,000-pair budget; 40 ms absorbs loaded-CI
#: jitter while still catching any return of per-pair Python-object or
#: per-worker duplicated work (which showed up as 2-5x per-pair cost).
PAIR_COST_CEILING_MS = 40.0

#: ``--check`` floors for the serve-layer query workload: point lookups
#: and k-NN queries per second against the 1,000-relay index. The
#: ROADMAP's "millions of users" story needs the query side to be
#: decisively cheaper than the measurement side; these are the rates
#: below which a per-query allocation or name-hashing tax has crept
#: into the hot path. Calibration: the index answers ~850k point and
#: ~100k k-NN queries/sec on this machine class, so the floors sit at
#: ~8-10x headroom — loose enough for loaded-CI jitter, tight enough
#: that an accidental O(n) scan per query can never pass.
SERVE_POINT_QPS_FLOOR = 100_000.0
SERVE_KNN_QPS_FLOOR = 10_000.0

#: ``--check`` ceilings for the ``serve_latency`` workload: per-op
#: latency quantiles through the full instrumented query path (dict
#: dispatch + telemetry recording), measured by the telemetry's own
#: µs-bucketed histograms. These are the SLOs a deployment would page
#: on, enforced offline. Calibration: on this machine class the
#: instrumented path answers point queries at p50 ~2 µs / p99 ~7 µs and
#: k-NN (k=10) at p50 ~10 µs / p99 ~43 µs; ceilings sit at ~15-30x so
#: loaded-CI jitter passes while an accidental per-query allocation
#: storm (a 100x miss) cannot.
SERVE_POINT_P50_CEILING_MS = 0.05
SERVE_POINT_P99_CEILING_MS = 0.25
SERVE_KNN_P50_CEILING_MS = 0.15
SERVE_KNN_P99_CEILING_MS = 0.60

#: Fixed cell-body size for the crypto workload (the Tor relay-cell
#: payload the acceptance criteria are phrased in terms of).
CRYPTO_BODY_BYTES = 512


def _available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware).

    The sharded workload clamps its fork count to this (forking past
    the core count is pure timesharing overhead), so a committed
    baseline needs the core count to be interpretable: on one core the
    sharded numbers measure the inline work-stealing emulation, on many
    cores they measure real process parallelism.
    """
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _entry(
    wall_s: float, events: int, cells: int, units_per_s: float
) -> dict[str, float]:
    return {
        "wall_s": round(wall_s, 6),
        "events_processed": int(events),
        "cells_processed": int(cells),
        "throughput": round(units_per_s, 3),
    }


def _testbed_cells(testbed: LiveTorTestbed) -> int:
    cells = sum(relay.cells_processed for relay in testbed.relays)
    cells += testbed.measurement.relay_w.cells_processed
    cells += testbed.measurement.relay_z.cells_processed
    return cells


# --- workloads ---------------------------------------------------------


def bench_cell_crypto(cells: int = 20_000) -> dict[str, float]:
    """Onion-encrypt ``cells`` relay-cell bodies through three layers."""
    layers = [LayerCipher(bytes([i]) * 32) for i in range(3)]
    body = bytes(range(256)) * (CRYPTO_BODY_BYTES // 256)
    start = time.perf_counter()
    for _ in range(cells):
        data = body
        for layer in layers:
            data = layer.process(data)
    wall = time.perf_counter() - start
    return _entry(wall, 0, cells, cells / wall)


def bench_engine_events(events: int = 200_000) -> dict[str, float]:
    """Push ``events`` timer events through a fresh simulator.

    Half the events are cancelled before firing, so the heap-compaction
    path is exercised the way echo-probe deadline timers exercise it.
    """
    sim = Simulator()

    def noop() -> None:
        pass

    start = time.perf_counter()
    handles = [sim.schedule(float(i % 97), noop) for i in range(events)]
    for handle in handles[::2]:
        handle.cancel()
    sim.run()
    wall = time.perf_counter() - start
    return _entry(wall, sim.events_processed, 0, sim.events_processed / wall)


def bench_ting_single_pair(seed: int = 2015) -> dict[str, float]:
    """One full Ting measurement (both legs + pair) on a small world."""
    start = time.perf_counter()
    testbed = LiveTorTestbed.build(seed=seed, n_relays=20)
    a, b = testbed.random_relays(2, testbed.streams.get("bench.pair"))
    measurer = TingMeasurer(
        testbed.measurement, policy=SamplePolicy(samples=10, interval_ms=2.0)
    )
    measurer.measure_pair(a, b)
    wall = time.perf_counter() - start
    events = testbed.sim.events_processed
    return _entry(wall, events, _testbed_cells(testbed), events / wall)


def bench_campaign_parallel(
    seed: int = 47, relays: int = 60, samples: int = 6
) -> dict[str, float]:
    """Single-process concurrent all-pairs campaign (concurrency 16)."""
    start = time.perf_counter()
    testbed = LiveTorTestbed.build(seed=seed, n_relays=relays + 15)
    selected = testbed.random_relays(relays, testbed.streams.get("bench.campaign"))
    ParallelCampaign(
        testbed.measurement,
        selected,
        policy=SamplePolicy(samples=samples, interval_ms=2.0),
        concurrency=16,
    ).run()
    wall = time.perf_counter() - start
    events = testbed.sim.events_processed
    return _entry(wall, events, _testbed_cells(testbed), events / wall)


def bench_campaign_adaptive(
    seed: int = 47, relays: int = 60, samples: int = 6
) -> dict[str, float]:
    """The concurrent campaign under convergence-triggered sampling.

    Same world, relay selection, concurrency, and sample cap as
    :func:`bench_campaign_parallel`, but probing stops per circuit as
    soon as the running minimum plateaus (1 ms tolerance) instead of
    always sending the fixed count — the bench-scale operating point of
    the Section 4.4 adaptive engine (min 2 samples, patience 2, a
    2-sample confirmation window). The wall-clock gap to
    ``campaign_parallel`` is the probe volume the early stop avoided
    simulating; legs run at the full cap (``SamplePolicy.for_leg``), so
    the saving all comes from the C(n,2) pair circuits.
    """
    start = time.perf_counter()
    testbed = LiveTorTestbed.build(seed=seed, n_relays=relays + 15)
    selected = testbed.random_relays(relays, testbed.streams.get("bench.campaign"))
    ParallelCampaign(
        testbed.measurement,
        selected,
        policy=SamplePolicy(
            samples=samples,
            interval_ms=None,
            adaptive=AdaptiveSpec(
                absolute_ms=1.0, min_samples=2, patience=2, confirm_k=2
            ),
        ),
        concurrency=16,
    ).run()
    wall = time.perf_counter() - start
    events = testbed.sim.events_processed
    return _entry(wall, events, _testbed_cells(testbed), events / wall)


def bench_campaign_sharded(
    seed: int = 47, relays: int = 60, samples: int = 6, workers: int = 4
) -> dict[str, float]:
    """The same all-pairs campaign split across ``workers`` processes."""
    import functools

    testbed = LiveTorTestbed.build(seed=seed, n_relays=relays + 15)
    selected = testbed.random_relays(relays, testbed.streams.get("bench.campaign"))
    campaign = ShardedCampaign(
        functools.partial(LiveTorTestbed.build, seed=seed, n_relays=relays + 15),
        [d.fingerprint for d in selected],
        policy=SamplePolicy(samples=samples, interval_ms=2.0),
        workers=workers,
        # Forking past the core count is pure overhead; stealing makes
        # the cap result-invariant, so the bench measures the engine's
        # best dispatch for the box instead of fork thrash.
        clamp_to_cpus=True,
    )
    report = campaign.run()
    entry = _entry(
        report.wall_s,
        report.events_processed,
        report.cells_processed,
        report.events_processed / report.wall_s,
    )
    entry["pairs_measured"] = int(report.pairs_measured)
    entry["pair_cost_ms"] = round(
        report.wall_s * 1000.0 / max(1, report.pairs_attempted), 3
    )
    return entry


def bench_campaign_fullnet(
    seed: int = 47,
    relays: int = 1000,
    budget_pairs: int = 3000,
    samples: int = 4,
    workers: int = 4,
) -> dict[str, float]:
    """A planner-budgeted sharded campaign at full-network relay scale.

    This is the scale proof for the columnar stack: ≥1,000 relays (the
    paper's network is ~6,500; pre-columnar benches topped out at 60),
    with the pair list produced by :class:`CampaignPlanner` instead of
    all-pairs enumeration — a cold-start plan, so the budget buys the
    highest-coverage pairs. The leg phase only pre-warms relays the
    planned pairs touch, and ``pair_cost_ms`` (wall per attempted pair,
    leg phase amortized in) is the number ``--check`` pins: it is flat
    in n for the budgeted campaign, so a per-pair Python-object tax
    creeping back shows up here first.
    """
    import functools

    build = functools.partial(LiveTorTestbed.build, seed=seed, n_relays=relays + 15)
    testbed = build()
    selected = testbed.random_relays(relays, testbed.streams.get("bench.campaign"))
    fingerprints = [d.fingerprint for d in selected]
    plan = CampaignPlanner(fingerprints, seed=seed).plan(budget_pairs=budget_pairs)
    campaign = ShardedCampaign(
        build,
        fingerprints,
        policy=SamplePolicy(samples=samples, interval_ms=2.0),
        workers=workers,
        pairs=plan.pairs,
        clamp_to_cpus=True,
    )
    report = campaign.run()
    entry = _entry(
        report.wall_s,
        report.events_processed,
        report.cells_processed,
        report.events_processed / report.wall_s,
    )
    entry["pairs_measured"] = int(report.pairs_measured)
    entry["pair_cost_ms"] = round(
        report.wall_s * 1000.0 / max(1, report.pairs_attempted), 3
    )
    return entry


def bench_serve_qps(
    seed: int = 47,
    relays: int = 1000,
    hole_fraction: float = 0.1,
    point_queries: int = 100_000,
    knn_queries: int = 20_000,
    knn_k: int = 10,
) -> dict[str, float]:
    """Query throughput of the serve-layer index at fullnet scale.

    Builds a :class:`~repro.serve.index.MatrixIndex` over a synthetic
    1,000-relay matrix (10% unmeasured holes, matching a budgeted
    campaign's coverage) and times the two consumer hot paths: point
    lookups and k-NN queries, each over pre-drawn random node pairs so
    the timed loop measures the index, not the RNG. The entry's
    ``throughput`` is the point-query rate; ``point_qps``, ``knn_qps``
    and ``index_build_s`` ride along for :func:`check_serve_qps`.
    """
    import numpy as np

    from repro.core.dataset import RttMatrix
    from repro.serve.index import MatrixIndex

    rng = np.random.default_rng(seed)
    nodes = [f"relay{i:04d}" for i in range(relays)]
    iu, ju = np.triu_indices(relays, k=1)
    rtts = rng.uniform(2.0, 400.0, size=iu.size)
    rtts[rng.random(iu.size) < hole_fraction] = np.nan
    values = np.zeros((relays, relays))
    values[iu, ju] = rtts
    values[ju, iu] = rtts
    matrix = RttMatrix.from_array(nodes, values, copy=False)

    start = time.perf_counter()
    index = MatrixIndex.build(matrix)
    build_s = time.perf_counter() - start

    pair_ids = rng.integers(0, relays, size=(point_queries, 2))
    pairs = [(nodes[int(i)], nodes[int(j)]) for i, j in pair_ids]
    point = index.point
    start = time.perf_counter()
    for a, b in pairs:
        point(a, b)
    point_wall = time.perf_counter() - start

    knn_nodes = [nodes[int(i)] for i in rng.integers(0, relays, size=knn_queries)]
    k_nearest = index.k_nearest
    start = time.perf_counter()
    for a in knn_nodes:
        k_nearest(a, knn_k)
    knn_wall = time.perf_counter() - start

    entry = _entry(
        build_s + point_wall + knn_wall,
        0,
        0,
        point_queries / point_wall,
    )
    entry["point_qps"] = round(point_queries / point_wall, 3)
    entry["knn_qps"] = round(knn_queries / knn_wall, 3)
    entry["index_build_s"] = round(build_s, 6)
    return entry


def bench_serve_latency(
    seed: int = 47,
    relays: int = 1000,
    hole_fraction: float = 0.1,
    point_queries: int = 50_000,
    knn_queries: int = 10_000,
    knn_k: int = 10,
) -> dict[str, float]:
    """Per-query latency quantiles through the instrumented serve path.

    Where :func:`bench_serve_qps` times raw index method calls, this
    workload goes through :meth:`QueryServer.query` with *live*
    telemetry — dict dispatch, answer building, and per-op histogram
    recording included — and reads the p50/p99 off the telemetry's own
    µs-bucketed histograms, exactly the numbers a production scrape
    would alert on. :func:`check_serve_latency` pins them under the
    ``SERVE_*_CEILING_MS`` SLOs.
    """
    import numpy as np

    from repro.core.dataset import RttMatrix
    from repro.serve.index import MatrixIndex
    from repro.serve.server import QueryServer
    from repro.serve.telemetry import ServeTelemetry

    rng = np.random.default_rng(seed)
    nodes = [f"relay{i:04d}" for i in range(relays)]
    iu, ju = np.triu_indices(relays, k=1)
    rtts = rng.uniform(2.0, 400.0, size=iu.size)
    rtts[rng.random(iu.size) < hole_fraction] = np.nan
    values = np.zeros((relays, relays))
    values[iu, ju] = rtts
    values[ju, iu] = rtts
    index = MatrixIndex.build(RttMatrix.from_array(nodes, values, copy=False))

    telemetry = ServeTelemetry(slow_ms=1.0, sample_every=0)
    server = QueryServer(index, telemetry=telemetry)
    pair_ids = rng.integers(0, relays, size=(point_queries, 2))
    queries = [
        {"op": "point", "x": nodes[int(i)], "y": nodes[int(j)]}
        for i, j in pair_ids
    ]
    queries += [
        {"op": "knn", "x": nodes[int(i)], "k": knn_k}
        for i in rng.integers(0, relays, size=knn_queries)
    ]
    query = server.query
    start = time.perf_counter()
    for q in queries:
        query(q)
    wall = time.perf_counter() - start

    entry = _entry(wall, 0, 0, len(queries) / wall)
    for op, prefix in (("point", "point"), ("knn", "knn")):
        hist = telemetry.registry.histogram(f"serve.latency_ms.{op}")
        entry[f"{prefix}_p50_ms"] = round(hist.quantile(0.5), 6)
        entry[f"{prefix}_p99_ms"] = round(hist.quantile(0.99), 6)
    return entry


# --- harness -----------------------------------------------------------


def run_bench(
    seed: int = 47,
    relays: int = 60,
    samples: int = 6,
    workers: int = 4,
    progress: Callable[[str], None] | None = None,
) -> dict[str, dict[str, float]]:
    """Run every workload; returns the schema-stable report mapping."""
    say = progress or (lambda _msg: None)
    report: dict[str, dict[str, float]] = {
        # Run configuration + machine class, so a committed baseline is
        # interpretable. ``_``-prefixed keys are ignored by --check.
        "_meta": {
            "seed": seed,
            "relays": relays,
            "samples": samples,
            "workers": workers,
            "cpus": _available_cpus(),
        },
    }
    workloads: list[tuple[str, Callable[[], dict[str, float]]]] = [
        ("cell_crypto", bench_cell_crypto),
        ("engine_events", bench_engine_events),
        ("ting_single_pair", lambda: bench_ting_single_pair(seed=2015)),
        (
            "campaign_parallel",
            lambda: bench_campaign_parallel(
                seed=seed, relays=relays, samples=samples
            ),
        ),
        (
            "campaign_adaptive",
            lambda: bench_campaign_adaptive(
                seed=seed, relays=relays, samples=samples
            ),
        ),
        (
            "campaign_sharded",
            lambda: bench_campaign_sharded(
                seed=seed, relays=relays, samples=samples, workers=workers
            ),
        ),
        (
            "campaign_fullnet",
            lambda: bench_campaign_fullnet(seed=seed, workers=workers),
        ),
        ("serve_qps", lambda: bench_serve_qps(seed=seed)),
        ("serve_latency", lambda: bench_serve_latency(seed=seed)),
    ]
    for name, workload in workloads:
        say(f"  {name} ...")
        # Level the heap-state playing field: without this, workloads
        # late in the list pay for their predecessors' garbage (and the
        # cross-workload sharded-vs-parallel comparison would measure
        # run order, not the engines).
        gc.collect()
        report[name] = workload()
        say(
            f"  {name}: {report[name]['wall_s']:.2f}s, "
            f"throughput {report[name]['throughput']:,.0f}/s"
        )
    return report


def check_regressions(
    report: dict[str, dict[str, float]],
    baseline: dict[str, dict[str, float]],
    factor: float = REGRESSION_FACTOR,
) -> list[str]:
    """Compare a fresh report to a baseline; returns regression messages.

    A workload regresses when its wall time exceeds ``factor`` times the
    baseline's. Workloads missing from either side are reported too — a
    renamed or dropped workload silently escaping the guard is itself a
    regression of the harness.
    """
    problems: list[str] = []
    for name, base in baseline.items():
        if name.startswith("_"):
            continue
        fresh = report.get(name)
        if fresh is None:
            problems.append(f"{name}: missing from fresh run")
            continue
        if fresh["wall_s"] > factor * base["wall_s"]:
            problems.append(
                f"{name}: wall {fresh['wall_s']:.3f}s > "
                f"{factor:g}x baseline {base['wall_s']:.3f}s"
            )
    for name in report:
        if not name.startswith("_") and name not in baseline:
            problems.append(f"{name}: missing from baseline")
    return problems


def check_cross_workload(
    report: dict[str, dict[str, float]],
    margin: float = CROSS_WORKLOAD_MARGIN,
) -> list[str]:
    """Relative invariants between workloads of one report.

    Unlike :func:`check_regressions` this needs no baseline: the
    workloads guard each other. Today's single invariant is the reason
    the sharded engine exists — ``campaign_sharded`` must keep at least
    ``margin`` of ``campaign_parallel``'s event throughput. A sharded
    run that duplicates leg work, rebuilds the testbed per worker, or
    serializes on the fork channel loses to the single process again
    and fails here, machine-independent of absolute wall times.
    """
    problems: list[str] = []
    parallel = report.get("campaign_parallel")
    sharded = report.get("campaign_sharded")
    if parallel is None or sharded is None:
        problems.append(
            "cross-workload: campaign_parallel/campaign_sharded missing"
        )
        return problems
    floor = margin * parallel["throughput"]
    if sharded["throughput"] < floor:
        problems.append(
            f"campaign_sharded: throughput {sharded['throughput']:,.0f}/s < "
            f"{margin:g}x campaign_parallel ({parallel['throughput']:,.0f}/s) "
            "— sharding is losing to the single process again"
        )
    return problems


def check_pair_cost(
    report: dict[str, dict[str, float]],
    ceiling_ms: float = PAIR_COST_CEILING_MS,
) -> list[str]:
    """Absolute per-pair cost ceiling for the full-network workload.

    ``campaign_fullnet`` measures a fixed pair budget, so its wall time
    *is* its per-pair cost — a machine-class constant, unlike the
    all-pairs workloads whose wall scales O(n²). A report without the
    workload passes (``check_regressions`` already flags workload-set
    drift against the baseline); a fullnet entry without the metric, or
    over the ceiling, fails.
    """
    problems: list[str] = []
    entry = report.get("campaign_fullnet")
    if entry is None:
        return problems
    cost = entry.get("pair_cost_ms")
    if cost is None:
        problems.append("campaign_fullnet: entry lacks pair_cost_ms")
    elif cost > ceiling_ms:
        problems.append(
            f"campaign_fullnet: per-pair cost {cost:.2f} ms > ceiling "
            f"{ceiling_ms:g} ms — the budgeted campaign is paying "
            "per-pair overhead again"
        )
    return problems


def check_serve_qps(
    report: dict[str, dict[str, float]],
    point_floor: float = SERVE_POINT_QPS_FLOOR,
    knn_floor: float = SERVE_KNN_QPS_FLOOR,
) -> list[str]:
    """Absolute query-rate floors for the serve-layer workload.

    Floors, not regression factors, because query rates are the
    product's contract with its consumers: the serve layer exists to
    answer at client rates, and "half as fast as last time but still
    fast" should pass while "under 100k point queries/sec at 1,000
    relays" should not, whatever the baseline says. A report without
    the workload passes (:func:`check_regressions` flags workload-set
    drift); a ``serve_qps`` entry missing either rate fails.
    """
    problems: list[str] = []
    entry = report.get("serve_qps")
    if entry is None:
        return problems
    for key, floor in (("point_qps", point_floor), ("knn_qps", knn_floor)):
        rate = entry.get(key)
        if rate is None:
            problems.append(f"serve_qps: entry lacks {key}")
        elif rate < floor:
            problems.append(
                f"serve_qps: {key} {rate:,.0f}/s < floor {floor:,.0f}/s — "
                "a per-query tax has crept into the index hot path"
            )
    return problems


def check_serve_latency(
    report: dict[str, dict[str, float]],
    ceilings: dict[str, float] | None = None,
) -> list[str]:
    """Per-op latency SLOs for the instrumented serve workload.

    Absolute ceilings like :func:`check_serve_qps`'s floors — latency
    quantiles are the contract a deployment alerts on, so the check is
    baseline-independent. A report without the workload passes
    (:func:`check_regressions` flags workload-set drift); an entry
    missing any quantile, or over its ceiling, fails.
    """
    if ceilings is None:
        ceilings = {
            "point_p50_ms": SERVE_POINT_P50_CEILING_MS,
            "point_p99_ms": SERVE_POINT_P99_CEILING_MS,
            "knn_p50_ms": SERVE_KNN_P50_CEILING_MS,
            "knn_p99_ms": SERVE_KNN_P99_CEILING_MS,
        }
    problems: list[str] = []
    entry = report.get("serve_latency")
    if entry is None:
        return problems
    for key, ceiling in ceilings.items():
        value = entry.get(key)
        if value is None:
            problems.append(f"serve_latency: entry lacks {key}")
        elif value > ceiling:
            problems.append(
                f"serve_latency: {key} {value * 1000:.1f} us > SLO "
                f"{ceiling * 1000:g} us — the instrumented query path "
                "is missing its latency contract"
            )
    return problems


def save_report(report: dict[str, dict[str, float]], path: Path) -> None:
    """Write the report as stable, diff-friendly JSON."""
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: Path) -> dict[str, dict[str, float]]:
    """Load a previously saved bench report."""
    return json.loads(path.read_text())
