"""Latency-vs-distance models for Figure 8.

Three reference lines annotate the paper's scatter of Ting RTT against
great-circle distance:

* the (2/3)c physical floor — no honest point falls below it;
* the Htrae fit — Agarwal & Lorch's model of *median* latencies among
  Halo players (``rtt_ms ≈ 0.0269 ms/km · d + 4.9 ms``, the published
  fit); and
* a least-squares fit to the Ting data itself, which sits below Htrae
  because Ting estimates *minimum* latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import MeasurementError
from repro.util.units import KM_PER_MS_FIBER


@dataclass(frozen=True)
class LinearFit:
    """``y = slope * x + intercept`` with its fit quality."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """The fitted line's value at ``x``."""
        return self.slope * x + self.intercept


def fit_latency_vs_distance(distances_km, rtts_ms) -> LinearFit:
    """Least-squares line through (distance, RTT) points."""
    x = np.asarray(distances_km, dtype=float)
    y = np.asarray(rtts_ms, dtype=float)
    if x.size != y.size:
        raise MeasurementError("distances and RTTs differ in length")
    if x.size < 2:
        raise MeasurementError("need at least two points to fit")
    slope, intercept = np.polyfit(x, y, deg=1)
    predicted = slope * x + intercept
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


#: Htrae's published median-latency model (Agarwal & Lorch, SIGCOMM'09).
HTRAE_SLOPE_MS_PER_KM = 0.0269
HTRAE_INTERCEPT_MS = 4.9


def htrae_line(distance_km: float) -> float:
    """Htrae's predicted median RTT for a geographic distance."""
    if distance_km < 0:
        raise MeasurementError("distance must be non-negative")
    return HTRAE_SLOPE_MS_PER_KM * distance_km + HTRAE_INTERCEPT_MS


def two_thirds_c_line(distance_km: float) -> float:
    """The physical floor: RTT of light in fiber over the great circle."""
    if distance_km < 0:
        raise MeasurementError("distance must be non-negative")
    return 2.0 * distance_km / KM_PER_MS_FIBER


def points_below_floor(distances_km, rtts_ms) -> np.ndarray:
    """Indices of points below the (2/3)c line — geolocation errors."""
    x = np.asarray(distances_km, dtype=float)
    y = np.asarray(rtts_ms, dtype=float)
    if x.size != y.size:
        raise MeasurementError("distances and RTTs differ in length")
    floor = 2.0 * x / KM_PER_MS_FIBER
    return np.nonzero(y < floor)[0]
