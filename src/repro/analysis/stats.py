"""Statistics the paper's figures are built from.

Implemented from scratch (no scipy dependency in the library proper) so
the exact semantics are visible: empirical CDFs, Spearman rank
correlation with average-rank ties (Figure 3's 0.997), coefficient of
variation (Figure 9), and box-plot statistics with Tukey whiskers
(Figures 5 and 10).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import MeasurementError


def _as_array(values) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise MeasurementError("empty sample")
    if np.isnan(arr).any():
        raise MeasurementError("sample contains NaN")
    return arr


def cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """The empirical CDF: sorted values and cumulative fractions.

    Returns ``(xs, fractions)`` where ``fractions[i]`` is the fraction of
    the sample at or below ``xs[i]``.
    """
    arr = np.sort(_as_array(values))
    fractions = np.arange(1, arr.size + 1) / arr.size
    return arr, fractions


def cdf_at(values, threshold: float) -> float:
    """Fraction of the sample at or below ``threshold``."""
    arr = _as_array(values)
    return float(np.mean(arr <= threshold))


def percentile(values, q: float) -> float:
    """The ``q``-th percentile (0-100, linear interpolation)."""
    if not 0.0 <= q <= 100.0:
        raise MeasurementError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(_as_array(values), q))


def fraction_within(estimates, truths, tolerance: float) -> float:
    """Fraction of estimate/truth pairs whose ratio is within
    ``tolerance`` of 1 — the paper's "within 10% of ground truth"."""
    est = _as_array(estimates)
    true = _as_array(truths)
    if est.shape != true.shape:
        raise MeasurementError("estimates and truths differ in length")
    if np.any(true <= 0):
        raise MeasurementError("ground-truth values must be positive")
    return float(np.mean(np.abs(est / true - 1.0) <= tolerance))


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks with ties assigned their average rank (1-based)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=float)
    sorted_values = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        average = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = average
        i = j + 1
    return ranks


def spearman_rank_correlation(a, b) -> float:
    """Spearman's rho between two paired samples (average-rank ties)."""
    x = _as_array(a)
    y = _as_array(b)
    if x.shape != y.shape:
        raise MeasurementError("samples differ in length")
    if x.size < 2:
        raise MeasurementError("need at least two pairs")
    rx = _average_ranks(x)
    ry = _average_ranks(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx**2).sum() * (ry**2).sum())
    if denom == 0:
        raise MeasurementError("constant sample has undefined rank correlation")
    return float((rx * ry).sum() / denom)


def coefficient_of_variation(values) -> float:
    """c_v = population standard deviation / mean."""
    arr = _as_array(values)
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(arr.std(ddof=0) / mean)


def box_stats(values) -> dict[str, float]:
    """Median, quartiles, Tukey whiskers, and outlier count."""
    arr = _as_array(values)
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    inside = arr[(arr >= q1 - 1.5 * iqr) & (arr <= q3 + 1.5 * iqr)]
    return {
        "median": float(median),
        "q1": float(q1),
        "q3": float(q3),
        "iqr": float(iqr),
        "whisker_low": float(inside.min()),
        "whisker_high": float(inside.max()),
        "outliers": int(arr.size - inside.size),
    }
