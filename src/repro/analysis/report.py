"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep that output consistent and
readable in pytest logs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.errors import MeasurementError


class TextTable:
    """A fixed-width text table with a title row."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise MeasurementError("table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        """Append one row; cell count must match the columns."""
        if len(cells) != len(self.columns):
            raise MeasurementError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([self._fmt(cell) for cell in cells])

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    def render(self) -> str:
        """Render the table as aligned fixed-width text."""
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, ""]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)


def format_cdf_rows(
    values,
    probe_points: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99),
    label: str = "value",
) -> str:
    """Quantile summary of a distribution, one row per probe point."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise MeasurementError("empty sample")
    lines = [f"CDF of {label} (n={arr.size}):"]
    for p in probe_points:
        lines.append(f"  p{int(p * 100):02d} = {np.percentile(arr, p * 100):10.3f}")
    return "\n".join(lines)


def format_series(name: str, xs, ys, max_points: int = 20) -> str:
    """An (x, y) series, thinned to at most ``max_points`` rows."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size != ys.size:
        raise MeasurementError("series lengths differ")
    if xs.size == 0:
        raise MeasurementError("empty series")
    step = max(1, xs.size // max_points)
    lines = [f"{name}:"]
    for i in range(0, xs.size, step):
        lines.append(f"  {xs[i]:12.3f}  {ys[i]:12.5f}")
    return "\n".join(lines)
