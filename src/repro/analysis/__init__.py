"""Statistics and reporting helpers shared by the experiments."""

from repro.analysis.stats import (
    cdf,
    cdf_at,
    percentile,
    spearman_rank_correlation,
    coefficient_of_variation,
    box_stats,
    fraction_within,
)
from repro.analysis.fits import LinearFit, fit_latency_vs_distance, htrae_line, two_thirds_c_line
from repro.analysis.report import TextTable, format_cdf_rows, format_series

__all__ = [
    "cdf",
    "cdf_at",
    "percentile",
    "spearman_rank_correlation",
    "coefficient_of_variation",
    "box_stats",
    "fraction_within",
    "LinearFit",
    "fit_latency_vs_distance",
    "htrae_line",
    "two_thirds_c_line",
    "TextTable",
    "format_cdf_rows",
    "format_series",
]
