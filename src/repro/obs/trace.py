"""Structured trace of typed measurement events.

Where :mod:`repro.obs.registry` aggregates, a :class:`TraceLog` keeps
the individual occurrences: which circuit was built when, which probe
run lost replies, which retry round started. The log is a bounded ring
buffer — long campaigns keep the most recent ``capacity`` events and
count what they dropped — and every event is JSON-serializable.

The default everywhere is :data:`NULL_TRACE`, which drops everything.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # circular-import-free type hint only
    from repro.obs.registry import MetricsRegistry

# Event kinds recorded by the measurement stack. Plain strings so
# downstream consumers can add their own without touching this module.
CIRCUIT_BUILT = "circuit_built"
CIRCUIT_FAILED = "circuit_failed"
STREAM_ATTACHED = "stream_attached"
STREAM_FAILED = "stream_failed"
PROBE_SENT = "probe_sent"
PROBE_LOST = "probe_lost"
LEG_CACHE_HIT = "leg_cache_hit"
LEG_CACHE_MISS = "leg_cache_miss"
RETRY_ROUND = "retry_round"
HEAP_COMPACTION = "heap_compaction"
PAIR_MEASURED = "pair_measured"
PAIR_FAILED = "pair_failed"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One typed occurrence at a simulated instant."""

    time_ms: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready view of the event."""
        return {"time_ms": self.time_ms, "kind": self.kind, **self.fields}


class TraceLog:
    """A bounded, append-only log of :class:`TraceEvent`.

    Logs from shard workers can be folded into one with :meth:`merge`,
    which tags every adopted event (``shard=<index>``) so per-worker
    provenance survives the merge.
    """

    #: Whether :meth:`record` keeps events; hot paths may branch on this.
    enabled = True

    __slots__ = ("capacity", "_events", "dropped")

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def record(self, time_ms: float, kind: str, **fields: Any) -> None:
        """Append one event; the oldest is dropped when full."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(time_ms=time_ms, kind=kind, fields=fields))

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """All retained events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def count(self, kind: str) -> int:
        """How many retained events have the given kind."""
        return sum(1 for event in self._events if event.kind == kind)

    def clear(self) -> None:
        """Drop every retained event and the dropped count."""
        self._events.clear()
        self.dropped = 0

    def merge(self, other: "TraceLog", **extra: Any) -> "TraceLog":
        """Append ``other``'s retained events to this log. Returns self.

        ``extra`` fields are merged into every adopted event — shard
        merges pass ``shard=<index>`` so a fused log still says which
        worker saw what. ``other``'s eviction losses carry over into
        this log's ``dropped`` count (an event silently evicted in a
        worker stays counted as lost after the merge).
        """
        for event in other._events:
            fields = {**event.fields, **extra} if extra else dict(event.fields)
            self.record(event.time_ms, event.kind, **fields)
        self.dropped += other.dropped
        return self

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view: retained events plus the eviction count.

        ``dropped`` is first-class in exports — a consumer must be able
        to tell "quiet campaign" from "ring buffer silently ate 40k
        events" without holding the live object.
        """
        return {
            "dropped": self.dropped,
            "events": [event.to_dict() for event in self._events],
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialize :meth:`snapshot` — events *and* the dropped count."""
        return json.dumps(self.snapshot(), indent=indent)

    @classmethod
    def from_json(cls, text: str, capacity: int = 100_000) -> "TraceLog":
        """Rebuild a log from :meth:`to_json` output.

        Round-trips the ``dropped`` count. The pre-dropped-count format
        (a bare JSON array of events) is still accepted.
        """
        data = json.loads(text)
        if isinstance(data, list):  # legacy bare-array export
            entries, dropped = data, 0
        else:
            entries, dropped = data.get("events", []), int(data.get("dropped", 0))
        log = TraceLog(capacity=capacity)
        for entry in entries:
            entry = dict(entry)
            time_ms = entry.pop("time_ms")
            kind = entry.pop("kind")
            log.record(time_ms, kind, **entry)
        log.dropped += dropped
        return log

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __repr__(self) -> str:
        return f"TraceLog({len(self._events)}/{self.capacity} events, dropped={self.dropped})"


class NullTraceLog(TraceLog):
    """A trace log that drops everything: the zero-cost default.

    Allocation-free to construct — no ring buffer exists — and immune to
    shared-state mutation: every read returns a fresh or immutable empty
    value, ``from_json`` rebuilds a *live* log (data deserializes to
    data) without touching the singleton, and ``merge`` discards its
    argument the same way ``record`` discards events.
    """

    enabled = False

    __slots__ = ()

    #: Class-level constants shadow the parent's slots: null logs hold
    #: nothing, so these never change and no instance storage exists.
    capacity = 0
    dropped = 0

    def __init__(self, capacity: int = 0) -> None:
        pass

    def record(self, time_ms: float, kind: str, **fields: Any) -> None:
        pass

    def clear(self) -> None:
        pass

    def merge(self, other: TraceLog, **extra: Any) -> "TraceLog":
        return self

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        return []

    def count(self, kind: str) -> int:
        return 0

    def snapshot(self) -> dict[str, Any]:
        return {"dropped": 0, "events": []}

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())

    def __repr__(self) -> str:
        return "NullTraceLog()"


#: The process-wide no-op trace log; instrumented components default to it.
NULL_TRACE = NullTraceLog()


def categorize_failure(reason: str, metrics: "MetricsRegistry | None" = None) -> str:
    """Bucket a free-text failure reason into a stable category.

    Campaigns count failures by category (``campaign.failures.<cat>``)
    so operators can tell relay churn (circuit builds) from probe loss
    at a glance instead of diffing reason strings.

    ``shard`` covers worker-level failures from the multiprocess
    campaign path (a worker that could not rebuild its testbed, or died
    mid-shard) — distinct from anything a measurement circuit can do.

    A reason that matches no known bucket lands in ``other`` *and*, when
    a live ``metrics`` registry is passed, bumps ``trace.uncategorized``
    — so a new failure string shows up as a counter an operator can
    alarm on instead of silently vanishing into the catch-all.
    """
    lowered = reason.lower()
    # Watchdog trips mention the shard too — match stall keywords first
    # so a wedged worker is not misfiled under generic worker failures.
    if "stalled" in lowered or "watchdog" in lowered or "heartbeat" in lowered:
        return "stall"
    if "shard" in lowered or "worker" in lowered or "factory-built" in lowered:
        return "shard"
    if "leg failed" in lowered:
        return "leg"
    if "circuit" in lowered and ("build" in lowered or "could not build" in lowered):
        return "circuit_build"
    if "truncate" in lowered or "surgery" in lowered:
        return "circuit_reuse"
    if "stream" in lowered:
        return "stream"
    if "deadline" in lowered or "zero replies" in lowered or "timed out" in lowered:
        return "probe_timeout"
    if metrics is not None and metrics.enabled:
        metrics.inc("trace.uncategorized")
    return "other"
