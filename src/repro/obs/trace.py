"""Structured trace of typed measurement events.

Where :mod:`repro.obs.registry` aggregates, a :class:`TraceLog` keeps
the individual occurrences: which circuit was built when, which probe
run lost replies, which retry round started. The log is a bounded ring
buffer — long campaigns keep the most recent ``capacity`` events and
count what they dropped — and every event is JSON-serializable.

The default everywhere is :data:`NULL_TRACE`, which drops everything.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

# Event kinds recorded by the measurement stack. Plain strings so
# downstream consumers can add their own without touching this module.
CIRCUIT_BUILT = "circuit_built"
CIRCUIT_FAILED = "circuit_failed"
STREAM_ATTACHED = "stream_attached"
STREAM_FAILED = "stream_failed"
PROBE_SENT = "probe_sent"
PROBE_LOST = "probe_lost"
LEG_CACHE_HIT = "leg_cache_hit"
LEG_CACHE_MISS = "leg_cache_miss"
RETRY_ROUND = "retry_round"
HEAP_COMPACTION = "heap_compaction"
PAIR_MEASURED = "pair_measured"
PAIR_FAILED = "pair_failed"


@dataclass(frozen=True)
class TraceEvent:
    """One typed occurrence at a simulated instant."""

    time_ms: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready view of the event."""
        return {"time_ms": self.time_ms, "kind": self.kind, **self.fields}


class TraceLog:
    """A bounded, append-only log of :class:`TraceEvent`."""

    #: Whether :meth:`record` keeps events; hot paths may branch on this.
    enabled = True

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def record(self, time_ms: float, kind: str, **fields: Any) -> None:
        """Append one event; the oldest is dropped when full."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(time_ms=time_ms, kind=kind, fields=fields))

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """All retained events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def count(self, kind: str) -> int:
        """How many retained events have the given kind."""
        return sum(1 for event in self._events if event.kind == kind)

    def clear(self) -> None:
        """Drop every retained event and the dropped count."""
        self._events.clear()
        self.dropped = 0

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the retained events as a JSON array."""
        return json.dumps([event.to_dict() for event in self._events], indent=indent)

    @classmethod
    def from_json(cls, text: str, capacity: int = 100_000) -> "TraceLog":
        """Rebuild a log from :meth:`to_json` output."""
        log = cls(capacity=capacity)
        for entry in json.loads(text):
            entry = dict(entry)
            time_ms = entry.pop("time_ms")
            kind = entry.pop("kind")
            log.record(time_ms, kind, **entry)
        return log

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __repr__(self) -> str:
        return f"TraceLog({len(self._events)}/{self.capacity} events, dropped={self.dropped})"


class NullTraceLog(TraceLog):
    """A trace log that drops everything: the zero-cost default."""

    enabled = False

    def record(self, time_ms: float, kind: str, **fields: Any) -> None:
        pass


#: The process-wide no-op trace log; instrumented components default to it.
NULL_TRACE = NullTraceLog(capacity=1)


def categorize_failure(reason: str) -> str:
    """Bucket a free-text failure reason into a stable category.

    Campaigns count failures by category (``campaign.failures.<cat>``)
    so operators can tell relay churn (circuit builds) from probe loss
    at a glance instead of diffing reason strings.
    """
    lowered = reason.lower()
    if "leg failed" in lowered:
        return "leg"
    if "circuit" in lowered and ("build" in lowered or "could not build" in lowered):
        return "circuit_build"
    if "truncate" in lowered or "surgery" in lowered:
        return "circuit_reuse"
    if "stream" in lowered:
        return "stream"
    if "deadline" in lowered or "zero replies" in lowered or "timed out" in lowered:
        return "probe_timeout"
    return "other"
