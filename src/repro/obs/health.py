"""Matrix health: per-pair quality scores, scorecards, and drift diffs.

Ting's output is only as good as the matrix it produces — the paper
validates its estimates against direct measurements (Section 4.4)
precisely because downstream consumers (via-relay overlay routing,
latency-aware circuit selection) silently degrade when the matrix goes
stale, noisy, or physically impossible. The runtime telemetry in
``repro.obs`` watches the *campaign*; this module watches the *data
product*:

* :func:`pair_quality` — a vectorized per-pair quality score matrix
  computed straight from the columnar :class:`ProvenanceLog` (sample
  support, debias-correction magnitude, retry/failure history, and
  staleness by provenance insertion order — the only clock the log
  has). O(n²) arrays, no per-record Python loop.
* :func:`health_report` — a graded scorecard: coverage, symmetry,
  physical plausibility (negative/zero estimates, RTTs below the
  great-circle light-time floor), the triangle-inequality-violation
  rate (informational — TIVs are the overlay phenomenon Section 5.2.1
  *expects*), staleness, and quality percentiles, each check graded
  ``ok``/``warn``/``fail`` with anomalies categorized pair by pair.
* :func:`diff_datasets` — drift between two dataset versions: node
  churn, gained/lost/changed pairs with provenance attribution, and
  quality regressions attributed to the score component that moved.

`repro health` exposes all three on the CLI with ``--check`` exit-code
gating for CI; the planner consumes :class:`QualityScores` as a
refresh-priority axis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.dataset import CampaignDataset, ProvenanceLog

#: Vacuum speed of light in km per millisecond. An RTT below
#: ``2 * distance / c`` is physically impossible — light in fibre is
#: ~0.66c, so real paths sit well above this floor and a violation
#: means the estimate (or the coordinates) are wrong, not the physics.
LIGHT_SPEED_KM_PER_MS = 299.792458

#: Format tags on the JSON forms, bumped on breaking schema changes.
HEALTH_FORMAT = "ting-health/1"
DRIFT_FORMAT = "ting-drift/1"

#: Quality-score component names, in render order.
COMPONENTS = ("support", "debias", "history", "staleness")


# ----------------------------------------------------------------------
# Per-pair quality scores


@dataclass(frozen=True)
class QualityWeights:
    """Relative weight of each quality penalty (normalized at use).

    ``retry_cap`` is the retry/failure count at which the history
    penalty saturates at 1.0.
    """

    support: float = 1.0
    debias: float = 0.5
    history: float = 1.0
    staleness: float = 0.8
    retry_cap: int = 3

    @property
    def total(self) -> float:
        return self.support + self.debias + self.history + self.staleness


@dataclass
class QualityScores:
    """Per-pair quality in ``[0, 1]`` (1 = pristine), NaN where unscored.

    ``scores`` is symmetric n×n aligned to ``nodes``; ``components``
    holds the raw penalty matrices (same shape, also in ``[0, 1]``)
    behind the blend, so a low score is always attributable.
    ``age_rows`` is each pair's age in provenance rows — how many
    records the log has appended since the pair's latest one.

    Exposes ``.nodes`` + ``.matrix`` so the planner can consume it
    through the same duck-typed alignment path as an
    :class:`~repro.core.dataset.RttMatrix` of predictions.
    """

    nodes: list[str]
    scores: np.ndarray
    components: dict[str, np.ndarray]
    age_rows: np.ndarray
    stale_after_rows: int
    weights: QualityWeights = field(default_factory=QualityWeights)

    @property
    def matrix(self) -> np.ndarray:
        """Planner-facing alias for the score matrix."""
        return self.scores

    def score_for(self, a: str, b: str) -> float | None:
        """One pair's score, or ``None`` if unscored."""
        i, j = self.nodes.index(a), self.nodes.index(b)
        value = float(self.scores[i, j])
        return None if np.isnan(value) else value

    def scored_values(self) -> np.ndarray:
        """The finite upper-triangle scores as a flat array."""
        iu, ju = np.triu_indices(len(self.nodes), k=1)
        values = self.scores[iu, ju]
        return values[~np.isnan(values)]

    def percentiles(
        self, qs: Sequence[float] = (5.0, 25.0, 50.0, 75.0, 95.0)
    ) -> dict[str, float]:
        """Score percentiles over scored pairs (``{"p50": ...}``)."""
        values = self.scored_values()
        if values.size == 0:
            return {}
        cuts = np.percentile(values, list(qs))
        return {f"p{q:g}": round(float(v), 4) for q, v in zip(qs, cuts)}

    def stale_pairs(self) -> list[tuple[str, str, int]]:
        """Pairs older than ``stale_after_rows``, oldest first."""
        iu, ju = np.triu_indices(len(self.nodes), k=1)
        ages = self.age_rows[iu, ju]
        hits = np.flatnonzero(~np.isnan(ages) & (ages > self.stale_after_rows))
        order = hits[np.argsort(-ages[hits], kind="stable")]
        return [
            (self.nodes[iu[k]], self.nodes[ju[k]], int(ages[k])) for k in order
        ]

    def worst(self, top_n: int = 10) -> list[dict[str, Any]]:
        """The ``top_n`` lowest-scoring pairs with component breakdowns."""
        iu, ju = np.triu_indices(len(self.nodes), k=1)
        values = self.scores[iu, ju]
        scored = np.flatnonzero(~np.isnan(values))
        order = scored[np.argsort(values[scored], kind="stable")][:top_n]
        return [
            {
                "x": self.nodes[iu[k]],
                "y": self.nodes[ju[k]],
                "score": round(float(values[k]), 4),
                "components": {
                    name: round(float(self.components[name][iu[k], ju[k]]), 4)
                    for name in COMPONENTS
                },
                "age_rows": int(self.age_rows[iu[k], ju[k]]),
            }
            for k in order
        ]

    def summary(self) -> dict[str, Any]:
        """JSON-ready headline numbers for reports."""
        values = self.scored_values()
        n = len(self.nodes)
        return {
            "scored_pairs": int(values.size),
            "total_pairs": n * (n - 1) // 2,
            "mean": round(float(values.mean()), 4) if values.size else None,
            "percentiles": self.percentiles(),
            "stale_after_rows": self.stale_after_rows,
            "stale_pairs": len(self.stale_pairs()),
        }


def _latest_pair_rows(
    log: ProvenanceLog, nodes: Sequence[str]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized latest-record index per pair.

    Returns ``(keys, latest_rows, failure_counts, row_positions)``:
    sorted unique pair keys (``lo * n + hi``), each pair's latest global
    row index, its all-history failure count, and the valid-row global
    indices (for callers that need them). All from column reads — no
    record materialization.
    """
    n = len(nodes)
    empty = np.empty(0, dtype=np.int64)
    if len(log) == 0:
        return empty, empty, empty, empty
    node_index = {node: i for i, node in enumerate(nodes)}
    code_map = np.array(
        [node_index.get(name, -1) for name in log.name_table()], dtype=np.int64
    )
    xs, ys = log.pair_columns("x", "y")
    xi, yi = code_map[xs], code_map[ys]
    rows = np.flatnonzero((xi >= 0) & (yi >= 0))
    if rows.size == 0:
        return empty, empty, empty, empty
    lo = np.minimum(xi[rows], yi[rows])
    hi = np.maximum(xi[rows], yi[rows])
    keys = lo * n + hi
    # Latest record per pair: first occurrence in the reversed key
    # stream is the last in insertion order.
    uniq, rev_first = np.unique(keys[::-1], return_index=True)
    latest = rows[keys.size - 1 - rev_first]
    status, cat_ids = log.status_codes()
    failed_code = cat_ids.get("failed")
    if failed_code is None:
        fails = np.zeros(uniq.size, dtype=np.int64)
    else:
        # Per-pair failure counts over the *whole* history, via ranks
        # into the unique-key table (never a dense n² bincount).
        ranks = np.searchsorted(uniq, keys)
        failed = status[rows] == failed_code
        fails = np.bincount(ranks[failed], minlength=uniq.size)
    return uniq, latest, fails, rows


def pair_quality(
    dataset: CampaignDataset,
    weights: QualityWeights | None = None,
    stale_after_rows: int | None = None,
) -> QualityScores:
    """Score every pair with provenance history, fully vectorized.

    Four penalties, each in ``[0, 1]``, blended by :class:`QualityWeights`
    and inverted into a score (``1 - penalty``):

    * **support** — ``1 - samples_kept / samples_requested`` on the
      latest record: how much of the requested probe budget actually
      survived the min filter (a failed attempt keeps nothing).
    * **debias** — ``samples_saved / samples_requested`` where the
      latest record stopped on convergence: how large the debiased-
      minimum correction had to be (the correction grows with how early
      the adaptive engine stopped).
    * **history** — ``(retries + lifetime failures) / retry_cap``,
      clipped: pairs that have fought the network score lower.
    * **staleness** — pair age in provenance rows over
      ``stale_after_rows`` (default: one full sweep, i.e. the number of
      currently measured pairs), clipped. Insertion order is the only
      clock the log has, and it survives save/load and shard merges.
    """
    w = weights or QualityWeights()
    nodes = list(dataset.matrix.nodes)
    n = len(nodes)
    if stale_after_rows is None:
        stale_after_rows = max(1, dataset.matrix.num_measured)
    scores = np.full((n, n), np.nan)
    components = {name: np.full((n, n), np.nan) for name in COMPONENTS}
    ages = np.full((n, n), np.nan)
    log = dataset.provenance
    keys, latest, fails, _ = _latest_pair_rows(log, nodes)
    if keys.size == 0:
        return QualityScores(
            nodes=nodes,
            scores=scores,
            components=components,
            age_rows=ages,
            stale_after_rows=int(stale_after_rows),
            weights=w,
        )
    requested, kept, saved, stop, retries = (
        col[latest].astype(np.float64) if col.dtype != np.int16 else col[latest]
        for col in log.pair_columns(
            "samples_requested",
            "samples_kept",
            "samples_saved",
            "stop_reason",
            "retries",
        )
    )
    _, cat_ids = log.status_codes()

    denom = np.maximum(requested, 1.0)
    support = 1.0 - np.clip(kept / denom, 0.0, 1.0)
    converged_code = cat_ids.get("converged")
    converged = (
        stop == converged_code if converged_code is not None else np.zeros(stop.shape, bool)
    )
    debias = np.where(converged, np.clip(saved / denom, 0.0, 1.0), 0.0)
    history = np.clip((retries + fails) / max(1, w.retry_cap), 0.0, 1.0)
    age = float(len(log) - 1) - latest.astype(np.float64)
    staleness = np.clip(age / float(stale_after_rows), 0.0, 1.0)

    penalty = (
        w.support * support
        + w.debias * debias
        + w.history * history
        + w.staleness * staleness
    ) / w.total
    score = 1.0 - np.clip(penalty, 0.0, 1.0)

    ui, uj = keys // n, keys % n
    for name, values in zip(COMPONENTS, (support, debias, history, staleness)):
        components[name][ui, uj] = values
        components[name][uj, ui] = values
    scores[ui, uj] = score
    scores[uj, ui] = score
    ages[ui, uj] = age
    ages[uj, ui] = age
    return QualityScores(
        nodes=nodes,
        scores=scores,
        components=components,
        age_rows=ages,
        stale_after_rows=int(stale_after_rows),
        weights=w,
    )


# ----------------------------------------------------------------------
# Scorecard


@dataclass(frozen=True)
class HealthThresholds:
    """Grading knobs for :func:`health_report`.

    Defaults are deliberately lenient on *coverage* (budgeted
    full-network campaigns legitimately run at a few percent) and
    strict on *impossibility* (a single negative or sub-light-time
    estimate is a fail — those are never legitimate).
    """

    #: Coverage below this fraction grades ``warn`` (zero grades fail).
    coverage_warn: float = 0.005
    #: Max tolerated |R(x,y) − R(y,x)| in ms before symmetry fails.
    symmetry_tolerance_ms: float = 1e-6
    #: An RTT below ``margin × (2·distance/c)`` fails plausibility.
    light_time_margin: float = 1.0
    #: Pair age (in provenance rows) beyond one full sweep that counts
    #: as stale; ``None`` derives one sweep from the matrix.
    stale_after_rows: int | None = None
    #: More stale pairs than this grades ``fail``.
    max_stale_pairs: int = 0
    #: Scores below this count as low-quality pairs.
    min_quality: float = 0.25
    #: Low-quality fraction above this grades ``warn``.
    low_quality_warn_fraction: float = 0.10
    #: TIV rate above this grades ``warn`` (default: never — TIVs are
    #: an expected overlay phenomenon, reported informationally).
    tiv_warn_rate: float = 1.01
    #: Cap on anomalies *listed* in the payload; counts stay exact.
    max_listed_anomalies: int = 100


_GRADE_ORDER = {"ok": 0, "skip": 0, "warn": 1, "fail": 2}


@dataclass
class HealthReport:
    """A finished scorecard: one JSON-ready dict plus renderers."""

    data: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return self.data

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.data, indent=indent)

    @property
    def grade(self) -> str:
        """Overall grade: worst of the check grades."""
        return self.data["grade"]

    @property
    def ok(self) -> bool:
        """Gate predicate: true unless some check graded ``fail``."""
        return self.grade != "fail"

    @property
    def anomaly_counts(self) -> dict[str, int]:
        return dict(self.data["anomalies"]["counts"])

    def render_text(self) -> str:
        lines: list[str] = []
        ds = self.data["dataset"]
        lines.append("== matrix health ==")
        lines.append(f"  grade                  {self.grade.upper()}")
        lines.append(
            f"  relays                 {ds['relays']}  "
            f"(pairs {ds['measured']}/{ds['total_pairs']} measured, "
            f"{ds['provenance_records']} provenance records)"
        )
        lines.append("== checks ==")
        for check in self.data["checks"]:
            lines.append(
                f"  {check['name']:<16} {check['status']:<5} {check['detail']}"
            )
        counts = self.data["anomalies"]["counts"]
        if counts:
            lines.append("== anomalies ==")
            for category, count in sorted(counts.items()):
                lines.append(f"  {category:<22} {count}")
            if self.data["anomalies"]["truncated"]:
                listed = len(self.data["anomalies"]["listed"])
                lines.append(f"  (listing capped at {listed}; counts are exact)")
        quality = self.data.get("quality")
        if quality and quality["scored_pairs"]:
            lines.append("== pair quality ==")
            lines.append(
                f"  scored pairs           "
                f"{quality['scored_pairs']}/{quality['total_pairs']}"
            )
            cuts = quality["percentiles"]
            if cuts:
                lines.append(
                    "  p5/p50/p95             "
                    f"{cuts.get('p5', 0):.2f}/{cuts.get('p50', 0):.2f}/"
                    f"{cuts.get('p95', 0):.2f}"
                )
            for entry in quality.get("worst", []):
                dominant = max(
                    entry["components"], key=lambda k: entry["components"][k]
                )
                lines.append(
                    f"  {entry['x'][:8]}..{entry['y'][:8]}  "
                    f"score {entry['score']:.2f}  (worst component: {dominant})"
                )
        return "\n".join(lines)


def _resolve_positions(
    dataset: CampaignDataset,
    positions: Mapping[str, Any] | None,
) -> dict[str, tuple[float, float]]:
    """Node coordinates from the explicit arg or ``meta["geo"]``."""
    source = positions if positions is not None else dataset.meta.get("geo", {})
    resolved: dict[str, tuple[float, float]] = {}
    for node, value in source.items():
        lat, lon = (value.lat, value.lon) if hasattr(value, "lat") else value
        resolved[node] = (float(lat), float(lon))
    return resolved


def _great_circle_km_vec(
    lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray
) -> np.ndarray:
    """Vectorized haversine (same formula as :func:`netsim.geo.great_circle_km`)."""
    from repro.netsim.geo import EARTH_RADIUS_KM

    p1, p2 = np.radians(lat1), np.radians(lat2)
    dlat = p2 - p1
    dlon = np.radians(lon2) - np.radians(lon1)
    h = np.sin(dlat / 2.0) ** 2 + np.cos(p1) * np.cos(p2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(h)))


def health_report(
    dataset: CampaignDataset,
    quality: QualityScores | None = None,
    positions: Mapping[str, Any] | None = None,
    thresholds: HealthThresholds | None = None,
    tiv_sample_pairs: int = 2000,
    seed: int = 0,
) -> HealthReport:
    """Grade a dataset's matrix on a single scorecard.

    ``positions`` maps node → ``(lat, lon)`` (or any object with
    ``.lat``/``.lon``); when omitted, ``dataset.meta["geo"]`` is used
    and the light-time check is skipped if neither is present.
    ``quality`` defaults to ``dataset.quality()`` (cached). The report
    is deterministic for a given dataset + seed, so it is invariant to
    how many workers produced the dataset and to the on-disk format.
    """
    t = thresholds or HealthThresholds()
    matrix = dataset.matrix
    nodes = list(matrix.nodes)
    n = len(nodes)
    view = matrix.matrix
    total_pairs = n * (n - 1) // 2
    if quality is None:
        if t.stale_after_rows is not None:
            quality = pair_quality(dataset, stale_after_rows=t.stale_after_rows)
        else:
            quality = dataset.quality()

    checks: list[dict[str, Any]] = []
    anomalies: list[dict[str, Any]] = []

    def check(name: str, status: str, value: Any, detail: str) -> None:
        checks.append(
            {"name": name, "status": status, "value": value, "detail": detail}
        )

    # -- coverage -------------------------------------------------------
    measured = matrix.num_measured
    coverage = measured / total_pairs if total_pairs else 0.0
    if measured == 0:
        check("coverage", "fail", 0.0, "no measured pairs")
    elif coverage < t.coverage_warn:
        check(
            "coverage", "warn", round(coverage, 6),
            f"{measured}/{total_pairs} pairs ({coverage:.2%})",
        )
    else:
        check(
            "coverage", "ok", round(coverage, 6),
            f"{measured}/{total_pairs} pairs ({coverage:.2%})",
        )

    iu, ju = np.triu_indices(n, k=1)
    upper = view[iu, ju] if n else np.empty(0)
    lower = view[ju, iu] if n else np.empty(0)

    # -- symmetry -------------------------------------------------------
    both = ~np.isnan(upper) & ~np.isnan(lower)
    asym = np.abs(upper[both] - lower[both]) if both.any() else np.empty(0)
    max_asym = float(asym.max()) if asym.size else 0.0
    bad = np.flatnonzero(both)[asym > t.symmetry_tolerance_ms] if asym.size else []
    for k in bad:
        anomalies.append(
            {
                "category": "asymmetry",
                "x": nodes[iu[k]],
                "y": nodes[ju[k]],
                "value": round(float(abs(upper[k] - lower[k])), 6),
            }
        )
    check(
        "symmetry",
        "fail" if len(bad) else "ok",
        round(max_asym, 6),
        f"max |R(x,y)-R(y,x)| = {max_asym:.6g} ms"
        + (f" ({len(bad)} asymmetric pairs)" if len(bad) else ""),
    )

    # -- plausibility: negative / zero estimates ------------------------
    finite = ~np.isnan(upper)
    neg = np.flatnonzero(finite & (upper < 0.0))
    zero = np.flatnonzero(finite & (upper == 0.0))
    for k in neg:
        anomalies.append(
            {
                "category": "negative_rtt",
                "x": nodes[iu[k]],
                "y": nodes[ju[k]],
                "value": round(float(upper[k]), 6),
            }
        )
    for k in zero:
        anomalies.append(
            {
                "category": "zero_rtt",
                "x": nodes[iu[k]],
                "y": nodes[ju[k]],
                "value": 0.0,
            }
        )
    # Negatives are impossible through the normal pipeline (both
    # RttMatrix.set and the measurer reject/clamp them), so any one is
    # corruption and fails. Zeros are a *designed* artifact — the Ting
    # subtraction clamps tiny negatives to 0.0 for nearly co-located
    # pairs (TingResult.rtt_clamped_ms) — so they only warrant a warn.
    bad_count = int(neg.size + zero.size)
    if neg.size:
        status = "fail"
    elif zero.size:
        status = "warn"
    else:
        status = "ok"
    check(
        "plausibility",
        status,
        bad_count,
        (
            f"{neg.size} negative, {zero.size} zero estimates"
            if bad_count
            else "no negative or zero estimates"
        ),
    )

    # -- plausibility: great-circle light-time floor --------------------
    coords = _resolve_positions(dataset, positions)
    placed = {node for node in nodes if node in coords}
    if len(placed) < 2:
        check("light_time", "skip", None, "no node coordinates available")
    else:
        node_arr = np.array(
            [coords.get(node, (np.nan, np.nan)) for node in nodes]
        )
        have = ~np.isnan(node_arr[iu, 0]) & ~np.isnan(node_arr[ju, 0])
        usable = np.flatnonzero(have & finite & (upper > 0.0))
        dist_km = _great_circle_km_vec(
            node_arr[iu[usable], 0],
            node_arr[iu[usable], 1],
            node_arr[ju[usable], 0],
            node_arr[ju[usable], 1],
        )
        floor_ms = 2.0 * dist_km / LIGHT_SPEED_KM_PER_MS
        hits = np.flatnonzero(upper[usable] < t.light_time_margin * floor_ms)
        for h in hits:
            k = usable[h]
            anomalies.append(
                {
                    "category": "sub_light_time",
                    "x": nodes[iu[k]],
                    "y": nodes[ju[k]],
                    "value": round(float(upper[k]), 6),
                    "floor_ms": round(float(floor_ms[h]), 6),
                }
            )
        check(
            "light_time",
            "fail" if hits.size else "ok",
            int(hits.size),
            f"{hits.size} of {usable.size} geolocated pairs below the "
            f"light-time floor",
        )

    # -- triangle inequality (informational) ----------------------------
    if measured and n >= 3:
        from repro.apps.tiv import tiv_rate

        tiv = tiv_rate(matrix, max_pairs=tiv_sample_pairs, seed=seed)
        scope = (
            f"sampled {int(tiv['pairs_checked'])} pairs"
            if tiv["sampled"]
            else f"all {int(tiv['pairs_checked'])} measured pairs"
        )
        check(
            "tiv",
            "warn" if tiv["rate"] > t.tiv_warn_rate else "ok",
            round(float(tiv["rate"]), 4),
            f"TIV rate {tiv['rate']:.1%} ({scope})",
        )
    else:
        check("tiv", "skip", None, "needs >= 3 relays with measurements")

    # -- staleness ------------------------------------------------------
    stale = quality.stale_pairs()
    for x, y, age in stale:
        anomalies.append(
            {"category": "stale_pair", "x": x, "y": y, "value": age}
        )
    check(
        "staleness",
        "fail" if len(stale) > t.max_stale_pairs else "ok",
        len(stale),
        f"{len(stale)} pairs older than {quality.stale_after_rows} "
        f"provenance rows",
    )

    # -- quality floor --------------------------------------------------
    values = quality.scored_values()
    if values.size:
        low = float((values < t.min_quality).mean())
        check(
            "quality",
            "warn" if low > t.low_quality_warn_fraction else "ok",
            round(low, 4),
            f"{low:.1%} of scored pairs below {t.min_quality:g}",
        )
    else:
        check("quality", "skip", None, "no provenance to score")

    grade = max((c["status"] for c in checks), key=lambda s: _GRADE_ORDER[s])
    if grade == "skip":
        grade = "ok"
    counts: dict[str, int] = {}
    for anomaly in anomalies:
        counts[anomaly["category"]] = counts.get(anomaly["category"], 0) + 1
    quality_section = quality.summary()
    quality_section["worst"] = quality.worst(5)
    data: dict[str, Any] = {
        "format": HEALTH_FORMAT,
        "grade": grade,
        "dataset": {
            "relays": n,
            "measured": measured,
            "total_pairs": total_pairs,
            "provenance_records": len(dataset.provenance),
        },
        "checks": checks,
        "anomalies": {
            "counts": counts,
            "listed": anomalies[: t.max_listed_anomalies],
            "truncated": len(anomalies) > t.max_listed_anomalies,
        },
        "quality": quality_section,
    }
    return HealthReport(data=data)


# ----------------------------------------------------------------------
# Drift diffs


@dataclass
class DriftReport:
    """A dataset-to-dataset diff: one JSON-ready dict plus renderers."""

    data: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return self.data

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.data, indent=indent)

    def render_text(self, top_n: int = 10) -> str:
        lines: list[str] = []
        nodes = self.data["nodes"]
        pairs = self.data["pairs"]
        lines.append("== dataset drift ==")
        lines.append(
            f"  nodes                  {nodes['baseline']} -> {nodes['current']}"
            f"  (+{len(nodes['added'])}/-{len(nodes['removed'])}, "
            f"{nodes['common']} common)"
        )
        lines.append(
            f"  pairs                  {pairs['gained']} gained, "
            f"{pairs['lost']} lost, {pairs['changed']} changed "
            f"(of {pairs['compared']} compared)"
        )
        if pairs["changed"]:
            lines.append(
                f"  value drift            max {pairs['max_abs_delta_ms']:.3f} ms, "
                f"mean {pairs['mean_abs_delta_ms']:.3f} ms"
            )
            if pairs["unexplained"]:
                lines.append(
                    f"  unexplained changes    {pairs['unexplained']} "
                    f"(no newer provenance record)"
                )
        changed = self.data["changed"]
        for entry in changed[:top_n]:
            lines.append(
                f"  {entry['x'][:8]}..{entry['y'][:8]}  "
                f"{entry['old_ms']:.1f} -> {entry['new_ms']:.1f} ms  "
                f"({entry['attribution']})"
            )
        if len(changed) > top_n:
            lines.append(f"  ... and {len(changed) - top_n} more changed pairs")
        quality = self.data["quality"]
        lines.append(
            f"  quality regressions    {quality['regressed']}"
        )
        for entry in quality["listed"][:top_n]:
            lines.append(
                f"  {entry['x'][:8]}..{entry['y'][:8]}  "
                f"{entry['old_score']:.2f} -> {entry['new_score']:.2f}  "
                f"(driver: {entry['component']})"
            )
        return "\n".join(lines)


def _latest_row_lookup(
    log: ProvenanceLog, nodes: Sequence[str]
) -> dict[int, int]:
    """``{lo * n + hi: latest global row}`` for pairs over ``nodes``."""
    keys, latest, _, _ = _latest_pair_rows(log, nodes)
    return {int(k): int(r) for k, r in zip(keys, latest)}


def diff_datasets(
    baseline: CampaignDataset,
    current: CampaignDataset,
    value_tolerance_ms: float = 1e-6,
    quality_drop: float = 0.1,
    weights: QualityWeights | None = None,
) -> DriftReport:
    """Diff two dataset versions: churn, pair deltas, quality drift.

    Every changed pair is attributed: ``remeasured`` when the current
    dataset's provenance holds more history for the pair than the
    baseline's (the expected path — a refresh campaign re-measured it),
    ``unexplained`` otherwise (a value changed with no new measurement
    record, which should never happen and is worth an investigation).
    Quality regressions larger than ``quality_drop`` are attributed to
    the penalty component that grew the most.
    """
    base_nodes = list(baseline.matrix.nodes)
    cur_nodes = list(current.matrix.nodes)
    base_set, cur_set = set(base_nodes), set(cur_nodes)
    added = [node for node in cur_nodes if node not in base_set]
    removed = [node for node in base_nodes if node not in cur_set]
    common = [node for node in cur_nodes if node in base_set]
    k = len(common)

    base_idx = {node: i for i, node in enumerate(base_nodes)}
    cur_idx = {node: i for i, node in enumerate(cur_nodes)}
    bi = np.array([base_idx[node] for node in common], dtype=np.int64)
    ci = np.array([cur_idx[node] for node in common], dtype=np.int64)
    b_view = baseline.matrix.matrix
    c_view = current.matrix.matrix
    old = b_view[np.ix_(bi, bi)]
    new = c_view[np.ix_(ci, ci)]
    iu, ju = np.triu_indices(k, k=1)
    old_v, new_v = old[iu, ju], new[iu, ju]
    had, has = ~np.isnan(old_v), ~np.isnan(new_v)
    gained = np.flatnonzero(~had & has)
    lost = np.flatnonzero(had & ~has)
    delta = np.abs(new_v - old_v)
    changed = np.flatnonzero(had & has & (delta > value_tolerance_ms))

    # Attribution: does the current log hold a newer record for the pair
    # than the baseline log does? Row indices are insertion-order clocks
    # *within* each log; absorb appends refresh records after the
    # baseline history, so "more rows for this pair" == "re-measured".
    base_latest = _latest_row_lookup(baseline.provenance, common)
    cur_latest = _latest_row_lookup(current.provenance, common)
    changed_entries: list[dict[str, Any]] = []
    unexplained = 0
    for c in changed:
        key = int(iu[c] * k + ju[c])
        b_row = base_latest.get(key)
        c_row = cur_latest.get(key)
        remeasured = c_row is not None and (b_row is None or c_row > b_row)
        if not remeasured:
            unexplained += 1
        changed_entries.append(
            {
                "x": common[iu[c]],
                "y": common[ju[c]],
                "old_ms": round(float(old_v[c]), 6),
                "new_ms": round(float(new_v[c]), 6),
                "delta_ms": round(float(new_v[c] - old_v[c]), 6),
                "attribution": "remeasured" if remeasured else "unexplained",
            }
        )
    changed_entries.sort(key=lambda e: -abs(e["delta_ms"]))

    # Quality drift over common pairs.
    q_base = pair_quality(baseline, weights=weights)
    q_cur = pair_quality(current, weights=weights)
    qb = q_base.scores[np.ix_(bi, bi)][iu, ju]
    qc = q_cur.scores[np.ix_(ci, ci)][iu, ju]
    scored = ~np.isnan(qb) & ~np.isnan(qc)
    regressed = np.flatnonzero(scored & (qb - qc > quality_drop))
    regressions: list[dict[str, Any]] = []
    for c in regressed:
        deltas = {
            name: float(
                q_cur.components[name][ci[iu[c]], ci[ju[c]]]
                - q_base.components[name][bi[iu[c]], bi[ju[c]]]
            )
            for name in COMPONENTS
        }
        dominant = max(deltas, key=lambda name: deltas[name])
        regressions.append(
            {
                "x": common[iu[c]],
                "y": common[ju[c]],
                "old_score": round(float(qb[c]), 4),
                "new_score": round(float(qc[c]), 4),
                "component": dominant,
            }
        )
    regressions.sort(key=lambda e: e["new_score"] - e["old_score"])

    data: dict[str, Any] = {
        "format": DRIFT_FORMAT,
        "nodes": {
            "baseline": len(base_nodes),
            "current": len(cur_nodes),
            "added": added,
            "removed": removed,
            "common": k,
        },
        "pairs": {
            "compared": int(iu.size),
            "gained": int(gained.size),
            "lost": int(lost.size),
            "changed": int(changed.size),
            "unexplained": unexplained,
            "max_abs_delta_ms": (
                round(float(delta[changed].max()), 6) if changed.size else 0.0
            ),
            "mean_abs_delta_ms": (
                round(float(delta[changed].mean()), 6) if changed.size else 0.0
            ),
        },
        "changed": changed_entries,
        "quality": {
            "regressed": len(regressions),
            "listed": regressions,
        },
    }
    return DriftReport(data=data)
