"""Live campaign telemetry: a structured, severity-leveled event bus.

Where :class:`~repro.obs.registry.MetricsRegistry` aggregates and
:class:`~repro.obs.trace.TraceLog` keeps post-hoc point events, an
:class:`EventBus` is the *live* channel: every emit is stamped with both
simulated time and wall time, counted by ``(category, severity)``,
retained in a bounded ring-buffer **flight recorder**, and fanned out to
attached sinks (JSONL files, the console, or the fork-boundary streamer
of :class:`~repro.core.shard.ShardedCampaign`). The flight recorder is
what a stall watchdog dumps when a campaign wedges: the last
``capacity`` events of every worker, not just its final counters.

Event categories mirror the measurement stack:

* ``engine`` — event-loop stalls, heap compactions (per process).
* ``relay`` — circuit teardowns, service-queue saturation.
* ``probe`` — echo probe-round start/stop and early-stop reasons.
* ``leg`` — shared leg measurements (one per relay *per worker*).
* ``campaign`` — pair lifecycle (started/measured/failed), retry
  rounds, budget-tier degradation. Pair events fire exactly once per
  pair under fixed policies, so merged ``campaign`` counts are
  **invariant to the worker count** — the property the shard-invariance
  tests pin down.
* ``ting`` — sequential :class:`~repro.core.ting.TingMeasurer` pairs.
* ``shard`` — campaign/worker lifecycle (one per process; not
  worker-count invariant by construction).
* ``serve`` — query-layer access log: ``slow_query`` (latency above the
  configured threshold) and ``query_error`` records from
  :class:`~repro.serve.telemetry.ServeTelemetry`. Keyed to the query
  stream, so merged counts are invariant to the ``batch()`` worker
  count like ``campaign`` events.

The default everywhere is :data:`NULL_EVENTS`, an allocation-free no-op
bus mirroring :data:`~repro.obs.spans.NULL_SPANS`: hot paths branch on
``events.enabled`` and pay nothing until someone opts in.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterator, TextIO

#: Severity levels (integers compare; gaps leave room for extensions).
DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

_SEVERITY_NAMES = {DEBUG: "DEBUG", INFO: "INFO", WARNING: "WARNING", ERROR: "ERROR"}
_SEVERITY_LEVELS = {name.lower(): level for level, name in _SEVERITY_NAMES.items()}


def severity_name(level: int) -> str:
    """The canonical name for a severity level (unknowns render as L<n>)."""
    return _SEVERITY_NAMES.get(level, f"L{level}")


def severity_level(name: str) -> int:
    """Parse a severity name (``"warning"``) back to its level."""
    try:
        return _SEVERITY_LEVELS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown severity {name!r}") from None


class Event:
    """One emitted occurrence, stamped with sim-time and wall-time.

    Slotted: instrumented campaigns emit one per pair/leg/probe round,
    and the flight recorder retains thousands.
    """

    __slots__ = ("wall_s", "sim_ms", "severity", "category", "kind", "fields",
                 "shard", "seq")

    def __init__(
        self,
        wall_s: float,
        sim_ms: float,
        severity: int,
        category: str,
        kind: str,
        fields: dict[str, Any],
        shard: int = 0,
        seq: int = 0,
    ) -> None:
        self.wall_s = wall_s
        self.sim_ms = sim_ms
        self.severity = severity
        self.category = category
        self.kind = kind
        self.fields = fields
        self.shard = shard
        self.seq = seq

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready view (field keys merged in at the top level)."""
        return {
            "wall_s": self.wall_s,
            "sim_ms": self.sim_ms,
            "severity": self.severity,
            "category": self.category,
            "kind": self.kind,
            "shard": self.shard,
            "seq": self.seq,
            **self.fields,
        }

    def __repr__(self) -> str:
        return (
            f"Event({severity_name(self.severity)}, "
            f"{self.category}.{self.kind}, sim_ms={self.sim_ms:.3f})"
        )


#: Keys every event dict carries; anything else is a payload field.
_EVENT_KEYS = ("wall_s", "sim_ms", "severity", "category", "kind", "shard", "seq")


def event_from_dict(record: dict[str, Any]) -> Event:
    """Rebuild an :class:`Event` from its :meth:`Event.to_dict` form.

    The fork-boundary streamer ships dicts; the parent's sinks expect
    :class:`Event` objects, so ingestion reverses the flattening.
    """
    return Event(
        wall_s=float(record.get("wall_s", 0.0)),
        sim_ms=float(record.get("sim_ms", 0.0)),
        severity=int(record.get("severity", INFO)),
        category=record.get("category", "?"),
        kind=record.get("kind", "?"),
        fields={k: v for k, v in record.items() if k not in _EVENT_KEYS},
        shard=int(record.get("shard", 0)),
        seq=int(record.get("seq", 0)),
    )


def format_event(record: dict[str, Any]) -> str:
    """Render one event dict as a console line.

    Shared by :class:`ConsoleSink` and ``repro tail`` so live and
    after-the-fact views of the same JSONL stream look identical.
    """
    record = dict(record)
    severity = severity_name(int(record.pop("severity", INFO)))
    sim_ms = float(record.pop("sim_ms", 0.0))
    category = record.pop("category", "?")
    kind = record.pop("kind", "?")
    shard = record.pop("shard", 0)
    record.pop("wall_s", None)
    record.pop("seq", None)
    fields = " ".join(f"{key}={value}" for key, value in record.items())
    line = (f"{severity:<7} s{shard} {sim_ms:>12.3f}ms  {category}.{kind}")
    return f"{line}  {fields}" if fields else line


class FlightRecorder:
    """A bounded ring of event dicts: the last ``capacity`` occurrences.

    The forensic record a watchdog dumps when a worker wedges — cheap
    enough to keep always-on for every shard, honest about eviction via
    ``dropped`` (mirrors :class:`~repro.obs.trace.TraceLog`).
    """

    __slots__ = ("capacity", "_ring", "dropped")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, record: dict[str, Any]) -> None:
        """Retain one event dict; the oldest is dropped when full."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)

    def records(self) -> list[dict[str, Any]]:
        """The retained events, oldest first."""
        return list(self._ring)

    def dump(self) -> dict[str, Any]:
        """A JSON-ready view: retained events plus the eviction count."""
        return {"dropped": self.dropped, "events": list(self._ring)}

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._ring)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({len(self._ring)}/{self.capacity} events, "
            f"dropped={self.dropped})"
        )


class EventBus:
    """Counts, records, and fans out severity-leveled events.

    ``clock`` supplies simulated milliseconds (usually
    ``lambda: sim.now``); wall time comes from ``time.time``. Sinks are
    plain callables taking an :class:`Event`; a sink that raises
    propagates (telemetry bugs should fail loudly in tests, and the
    shard streamer relies on a blocking sink for fault injection).

    Snapshots are plain data and merge associatively — counts sum, ring
    events are adopted with a ``shard`` tag — so the fork boundary of
    :class:`~repro.core.shard.ShardedCampaign` preserves them the same
    way it preserves metrics and traces.
    """

    #: Whether emits are kept; hot paths branch on this.
    enabled = True

    __slots__ = ("_clock", "shard", "recorder", "_counts", "_sinks",
                 "emitted", "_seq")

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        capacity: int = 1024,
        shard: int = 0,
    ) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.shard = shard
        #: The bounded flight-recorder ring behind this bus.
        self.recorder = FlightRecorder(capacity=capacity)
        self._counts: dict[tuple[str, int], int] = {}
        self._sinks: list[Callable[[Event], None]] = []
        self.emitted = 0
        self._seq = 0

    # ------------------------------------------------------------------
    # Emission

    def emit(self, severity: int, category: str, kind: str, **fields: Any) -> None:
        """Record one event: count it, ring it, fan it out to sinks."""
        event = Event(
            wall_s=time.time(),
            sim_ms=self._clock(),
            severity=severity,
            category=category,
            kind=kind,
            fields=fields,
            shard=self.shard,
            seq=self._seq,
        )
        self._seq += 1
        self.emitted += 1
        key = (category, severity)
        self._counts[key] = self._counts.get(key, 0) + 1
        self.recorder.append(event.to_dict())
        for sink in self._sinks:
            sink(event)

    def ingest(self, record: dict[str, Any]) -> None:
        """Adopt one already-stamped event dict as a first-class emit.

        The parent side of the fork boundary: a worker's streamed event
        keeps its original timestamps, shard tag, and sequence number,
        but is counted, ringed, and fanned out to this bus's sinks as if
        emitted locally.
        """
        self.emitted += 1
        key = (record.get("category", "?"), int(record.get("severity", INFO)))
        self._counts[key] = self._counts.get(key, 0) + 1
        self.recorder.append(record)
        if self._sinks:
            event = event_from_dict(record)
            for sink in self._sinks:
                sink(event)

    def debug(self, category: str, kind: str, **fields: Any) -> None:
        self.emit(DEBUG, category, kind, **fields)

    def info(self, category: str, kind: str, **fields: Any) -> None:
        self.emit(INFO, category, kind, **fields)

    def warning(self, category: str, kind: str, **fields: Any) -> None:
        self.emit(WARNING, category, kind, **fields)

    def error(self, category: str, kind: str, **fields: Any) -> None:
        self.emit(ERROR, category, kind, **fields)

    # ------------------------------------------------------------------
    # Sinks

    def add_sink(self, sink: Callable[[Event], None]) -> None:
        """Attach a sink; every subsequent emit is delivered to it."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Event], None]) -> None:
        """Detach a previously attached sink (no-op if absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Introspection

    def counts(self) -> dict[tuple[str, int], int]:
        """Emit counts keyed by ``(category, severity)`` (a copy)."""
        return dict(self._counts)

    def count(self, category: str | None = None,
              severity: int | None = None) -> int:
        """Total emits matching the given category and/or severity."""
        return sum(
            n for (cat, sev), n in self._counts.items()
            if (category is None or cat == category)
            and (severity is None or sev == severity)
        )

    def events(
        self,
        category: str | None = None,
        kind: str | None = None,
        min_severity: int | None = None,
    ) -> list[dict[str, Any]]:
        """Retained ring events (dicts, oldest first), optionally filtered."""
        out = []
        for record in self.recorder:
            if category is not None and record.get("category") != category:
                continue
            if kind is not None and record.get("kind") != kind:
                continue
            if min_severity is not None and record.get("severity", 0) < min_severity:
                continue
            out.append(record)
        return out

    def clear(self) -> None:
        """Forget counts and retained events (sinks stay attached)."""
        self._counts.clear()
        self.recorder.clear()
        self.emitted = 0
        self._seq = 0

    # ------------------------------------------------------------------
    # Snapshot / merge (fork-boundary plumbing)

    def snapshot(self) -> dict[str, Any]:
        """A picklable, JSON-ready view: counts plus the flight ring."""
        return {
            "emitted": self.emitted,
            "counts": [
                {"category": cat, "severity": sev, "count": n}
                for (cat, sev), n in sorted(self._counts.items())
            ],
            "ring": self.recorder.dump(),
        }

    def merge_snapshot(self, snap: dict[str, Any],
                       shard: int | None = None) -> "EventBus":
        """Fold one :meth:`snapshot` into this bus. Returns self.

        Counts sum; ring events are adopted (tagged ``shard`` when
        given) and may evict older entries — the counts, not the ring,
        are the authoritative totals. Associative and commutative on
        counts, so shard merge order cannot matter.
        """
        self.emitted += int(snap.get("emitted", 0))
        for row in snap.get("counts", []):
            key = (row["category"], int(row["severity"]))
            self._counts[key] = self._counts.get(key, 0) + int(row["count"])
        ring = snap.get("ring", {})
        for record in ring.get("events", []):
            record = dict(record)
            if shard is not None:
                record["shard"] = shard
            self.recorder.append(record)
        self.recorder.dropped += int(ring.get("dropped", 0))
        return self

    def merge(self, other: "EventBus", shard: int | None = None) -> "EventBus":
        """Fold another live bus into this one (snapshot semantics)."""
        return self.merge_snapshot(other.snapshot(), shard=shard)

    def __len__(self) -> int:
        return len(self.recorder)

    def __repr__(self) -> str:
        return f"EventBus(emitted={self.emitted}, ring={len(self.recorder)})"


class NullEventBus(EventBus):
    """An event bus that drops everything: the zero-cost default.

    Allocation-free to construct — no ring, no counts, no sinks exist —
    and immune to shared-state mutation: emits vanish, ``add_sink`` is
    rejected (a sink on the shared singleton would silently observe
    every component in the process), and every read returns a fresh
    empty value.
    """

    enabled = False

    __slots__ = ()

    #: Class-level constants shadow the parent's slots: a null bus holds
    #: nothing, so these never change and no instance storage exists.
    shard = 0
    emitted = 0
    recorder = None

    def __init__(self, clock: Callable[[], float] | None = None,
                 capacity: int = 0, shard: int = 0) -> None:
        pass

    def emit(self, severity: int, category: str, kind: str, **fields: Any) -> None:
        pass

    def ingest(self, record: dict[str, Any]) -> None:
        pass

    def debug(self, category: str, kind: str, **fields: Any) -> None:
        pass

    def info(self, category: str, kind: str, **fields: Any) -> None:
        pass

    def warning(self, category: str, kind: str, **fields: Any) -> None:
        pass

    def error(self, category: str, kind: str, **fields: Any) -> None:
        pass

    def add_sink(self, sink: Callable[[Event], None]) -> None:
        raise ValueError(
            "cannot attach a sink to NULL_EVENTS; wire a live EventBus "
            "(e.g. MeasurementHost.enable_events) first"
        )

    def remove_sink(self, sink: Callable[[Event], None]) -> None:
        pass

    def counts(self) -> dict[tuple[str, int], int]:
        return {}

    def count(self, category: str | None = None,
              severity: int | None = None) -> int:
        return 0

    def events(self, category: str | None = None, kind: str | None = None,
               min_severity: int | None = None) -> list[dict[str, Any]]:
        return []

    def clear(self) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"emitted": 0, "counts": [], "ring": {"dropped": 0, "events": []}}

    def merge_snapshot(self, snap: dict[str, Any],
                       shard: int | None = None) -> EventBus:
        return self

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullEventBus()"


#: The process-wide no-op event bus; instrumented components default to it.
NULL_EVENTS = NullEventBus()


class JsonlSink:
    """Streams every event as one JSON line; ``repro tail`` reads these.

    Lines are flushed per event so a concurrently running ``tail -f``
    (or the ``repro tail --follow`` subcommand) sees them live.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: TextIO | None = self.path.open("w", encoding="utf-8")

    def __call__(self, event: Event) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event.to_dict()) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ConsoleSink:
    """Prints events at or above ``min_severity`` to a stream (stderr).

    The live operator channel: campaign progress and telemetry never
    touch stdout, which stays reserved for machine output.
    """

    def __init__(self, stream: TextIO | None = None,
                 min_severity: int = WARNING) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_severity = min_severity

    def __call__(self, event: Event) -> None:
        if event.severity < self.min_severity:
            return
        print(format_event(event.to_dict()), file=self.stream)


class ProgressTracker:
    """Live campaign progress: totals, EWMA pair rate, and an ETA.

    Workers report *absolute* per-shard totals (idempotent heartbeats —
    a re-delivered heartbeat cannot double-count), and the tracker sums
    across shards. The pair-completion rate is an exponentially weighted
    moving average over wall time, so the ETA adapts when a slow shard
    drags the tail of a campaign.

    Work-stealing dispatch makes a shard's *claimed* total
    (``pairs_total`` in its heartbeat) grow mid-run as it takes chunks
    off the shared queue — so per-shard totals are informational only,
    and the ETA is always computed from the campaign-wide remaining
    count: ``(pairs_total - pairs_done) / rate``. A shard racing ahead
    raises the global rate; it never shrinks another shard's share of
    the denominator.
    """

    def __init__(
        self,
        pairs_total: int,
        clock: Callable[[], float] | None = None,
        alpha: float = 0.3,
    ) -> None:
        if pairs_total < 0:
            raise ValueError("pairs_total must be >= 0")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.pairs_total = pairs_total
        self._clock = clock if clock is not None else time.monotonic
        self._alpha = alpha
        self._shards: dict[int, dict[str, Any]] = {}
        self._started = self._clock()
        self._last_time = self._started
        self._last_done = 0
        self._rate: float | None = None

    def update_shard(
        self,
        shard: int,
        pairs_done: int = 0,
        pairs_failed: int = 0,
        probes_sent: int = 0,
        probes_saved: int = 0,
        in_flight: str | None = None,
        pairs_total: int = 0,
    ) -> None:
        """Absorb one shard's absolute progress totals.

        ``pairs_total`` is the shard's claimed share so far — it grows
        as a work-stealing worker takes chunks, and is *not* part of the
        ETA denominator (the campaign-wide total is fixed at
        construction).
        """
        self._shards[shard] = {
            "pairs_done": pairs_done,
            "pairs_failed": pairs_failed,
            "probes_sent": probes_sent,
            "probes_saved": probes_saved,
            "in_flight": in_flight,
            "pairs_total": pairs_total,
        }
        done = self.pairs_done
        now = self._clock()
        if done > self._last_done:
            dt = now - self._last_time
            if dt > 0:
                instant = (done - self._last_done) / dt
                self._rate = (
                    instant if self._rate is None
                    else self._alpha * instant + (1 - self._alpha) * self._rate
                )
            self._last_time = now
            self._last_done = done

    def _sum(self, key: str) -> int:
        return sum(state[key] for state in self._shards.values())

    @property
    def pairs_done(self) -> int:
        """Pairs resolved (measured or failed) across all shards."""
        return self._sum("pairs_done")

    @property
    def pairs_failed(self) -> int:
        return self._sum("pairs_failed")

    @property
    def probes_sent(self) -> int:
        return self._sum("probes_sent")

    @property
    def probes_saved(self) -> int:
        return self._sum("probes_saved")

    @property
    def rate_pairs_per_s(self) -> float | None:
        """EWMA pair-completion rate (None until two distinct updates)."""
        return self._rate

    @property
    def eta_s(self) -> float | None:
        """Estimated wall seconds until the last pair lands."""
        if not self._rate or self._rate <= 0:
            return None
        return max(0, self.pairs_total - self.pairs_done) / self._rate

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._started

    def in_flight(self) -> dict[int, str]:
        """Per-shard in-flight task labels (shards with one pending)."""
        return {
            shard: state["in_flight"]
            for shard, state in sorted(self._shards.items())
            if state["in_flight"]
        }

    def shard_progress(self) -> dict[int, tuple[int, int]]:
        """Per-shard ``(done, claimed_total)`` — the steal balance view."""
        return {
            shard: (state["pairs_done"], state.get("pairs_total", 0))
            for shard, state in sorted(self._shards.items())
        }

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view of the current progress state."""
        return {
            "pairs_done": self.pairs_done,
            "pairs_failed": self.pairs_failed,
            "pairs_total": self.pairs_total,
            "probes_sent": self.probes_sent,
            "probes_saved": self.probes_saved,
            "rate_pairs_per_s": self._rate,
            "eta_s": self.eta_s,
            "elapsed_s": self.elapsed_s,
            "in_flight": {str(k): v for k, v in self.in_flight().items()},
            "shards": {
                str(shard): {"pairs_done": done, "pairs_total": total}
                for shard, (done, total) in self.shard_progress().items()
            },
        }

    def render(self) -> str:
        """One status line: ``pairs 37/120 | probes 842 | 3.2/s | ETA 26s``."""
        parts = [f"pairs {self.pairs_done}/{self.pairs_total}"]
        if self.pairs_failed:
            parts[0] += f" ({self.pairs_failed} failed)"
        probes = self.probes_sent
        if probes:
            saved = self.probes_saved
            parts.append(
                f"probes {probes}" + (f" (+{saved} saved)" if saved else "")
            )
        if self._rate is not None:
            parts.append(f"{self._rate:.1f} pairs/s")
        eta = self.eta_s
        if eta is not None:
            parts.append(f"ETA {eta:.0f}s")
        return " | ".join(parts)
