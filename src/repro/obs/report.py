"""Run reports: fuse metrics, spans, provenance, and ground truth.

A campaign's raw observability output is four separate artifacts — a
merged :class:`~repro.obs.registry.MetricsRegistry`, a
:class:`~repro.obs.spans.SpanTracer`, a
:class:`~repro.core.dataset.ProvenanceLog`, and the
:class:`~repro.core.dataset.RttMatrix` itself. :func:`build_report`
digests them into one :class:`RunReport` that answers the operator
questions directly: how accurate was the run (when ground truth
exists), what failed and why, which pairs ate the makespan, and how
evenly the shards were loaded. The report renders both as structured
JSON (for dashboards and regression diffs) and as aligned text (for a
terminal).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.dataset import ProvenanceLog, RttMatrix

#: Format tag on the JSON form, bumped on breaking schema changes.
REPORT_FORMAT = "ting-report/1"


@dataclass
class RunReport:
    """A finished report: one JSON-ready dict plus renderers."""

    data: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """The JSON-ready payload (already plain data)."""
        return self.data

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the report as JSON text."""
        return json.dumps(self.data, indent=indent)

    def render_text(self) -> str:
        """Human-readable multi-section summary of the same payload."""
        lines: list[str] = []
        pairs = self.data["pairs"]
        lines.append("== campaign ==")
        lines.append(f"  relays                 {pairs['relays']}")
        lines.append(
            f"  pairs measured         {pairs['measured']}/{pairs['attempted']}"
        )
        if pairs.get("mean_rtt_ms") is not None:
            lines.append(f"  mean RTT               {pairs['mean_rtt_ms']:.1f} ms")
        if pairs.get("makespan_ms") is not None:
            lines.append(
                f"  simulated makespan     {pairs['makespan_ms'] / 60000:.1f} min"
            )

        accuracy = self.data.get("accuracy")
        if accuracy is not None:
            lines.append("== accuracy vs ground truth ==")
            lines.append(f"  pairs compared         {accuracy['pairs_compared']}")
            lines.append(
                f"  within 10% of truth    {accuracy['within_10pct']:.1%}"
            )
            lines.append(
                f"  median abs error       {accuracy['median_abs_error_ms']:.2f} ms"
            )

        failures = self.data["failures"]
        lines.append("== failures ==")
        if failures["total"] == 0:
            lines.append("  none")
        else:
            for category, count in sorted(failures["by_category"].items()):
                lines.append(f"  {category:<22} {count}")

        cost = self.data.get("cost")
        if cost is not None:
            lines.append("== probe cost ==")
            lines.append(f"  probes sent            {cost['probes_sent']}")
            lines.append(
                f"  probes saved           {cost['probes_saved']} "
                f"({cost['saved_fraction']:.1%} of the fixed-cap cost)"
            )
            lines.append(
                f"  early stops            {cost['early_stops']} "
                f"({cost['early_stop_rate']:.1%} of probe runs)"
            )

        slowest = self.data.get("slowest_pairs", [])
        if slowest:
            lines.append("== slowest pairs (simulated time) ==")
            for entry in slowest:
                rtt = (
                    f"{entry['rtt_ms']:.1f} ms"
                    if entry.get("rtt_ms") is not None
                    else entry.get("status", "failed")
                )
                lines.append(
                    f"  {entry['x'][:8]}..{entry['y'][:8]}  "
                    f"{entry['duration_ms'] / 1000:.1f} s  ({rtt})"
                )

        balance = self.data.get("shard_balance")
        if balance is not None:
            lines.append("== shard balance ==")
            for shard in balance["shards"]:
                lines.append(
                    f"  shard {shard['shard']}: {shard['pairs_attempted']} pairs, "
                    f"{shard['makespan_ms'] / 60000:.1f} sim min, "
                    f"{shard['wall_s']:.1f} s wall"
                )
            lines.append(
                f"  makespan imbalance     {balance['makespan_imbalance']:.2f}x"
            )

        spans = self.data.get("spans")
        if spans is not None:
            lines.append("== spans ==")
            for name, stats in sorted(spans["by_name"].items()):
                lines.append(
                    f"  {name:<22} {stats['count']:>5}  "
                    f"mean {stats['mean_ms']:.1f} ms"
                )

        metrics = self.data.get("metrics")
        if metrics is not None:
            lines.append("== headline counters ==")
            for name, value in sorted(metrics.items()):
                lines.append(f"  {name:<28} {value}")

        health = self.data.get("health")
        if health is not None:
            lines.append("== health ==")
            lines.append(f"  grade                  {health['grade'].upper()}")
            for check in health["checks"]:
                if check["status"] in ("warn", "fail"):
                    lines.append(
                        f"  {check['name']:<16} {check['status']:<5} "
                        f"{check['detail']}"
                    )
            for category, count in sorted(
                health.get("anomalies", {}).get("counts", {}).items()
            ):
                lines.append(f"  {category:<22} {count}")
            cuts = health.get("quality", {}).get("percentiles", {})
            if cuts:
                lines.append(
                    "  quality p5/p50/p95     "
                    f"{cuts.get('p5', 0):.2f}/{cuts.get('p50', 0):.2f}/"
                    f"{cuts.get('p95', 0):.2f}"
                )

        trace = self.data.get("trace")
        if trace is not None:
            lines.append("== trace ==")
            lines.append(f"  events retained        {trace['events']}")
            lines.append(f"  events dropped         {trace['dropped']}")
        return "\n".join(lines)


#: Counters surfaced in the report's ``metrics`` section; everything
#: else stays available in the full snapshot the CLI can export.
_HEADLINE_COUNTERS = (
    "campaign.pairs_attempted",
    "campaign.pairs_measured",
    "tor.circuits_built",
    "tor.circuits_failed",
    "tor.streams_attached",
    "echo.probes_sent",
    "echo.probes_received",
    "echo.probes_lost",
    "echo.early_stops",
    "ting.probes_saved",
    "ting.leg_cache_lookups",
    "ting.leg_cache_hits",
    "ting.leg_cache_misses",
    "trace.uncategorized",
)


def _accuracy_section(
    matrix: RttMatrix, ground_truth: RttMatrix
) -> dict[str, Any] | None:
    """Accuracy vs an oracle matrix over the pairs both have."""
    errors: list[float] = []
    within = 0
    for a, b, estimate in matrix.measured_pairs():
        if a not in ground_truth or b not in ground_truth:
            continue
        if not ground_truth.has(a, b):
            continue
        truth = ground_truth.get(a, b)
        errors.append(abs(estimate - truth))
        if truth > 0 and abs(estimate - truth) / truth <= 0.10:
            within += 1
    if not errors:
        return None
    errors.sort()
    mid = len(errors) // 2
    median = (
        errors[mid]
        if len(errors) % 2
        else (errors[mid - 1] + errors[mid]) / 2.0
    )
    return {
        "pairs_compared": len(errors),
        "within_10pct": within / len(errors),
        "median_abs_error_ms": round(median, 3),
    }


def _slowest_pairs(
    provenance: ProvenanceLog, top_n: int
) -> list[dict[str, Any]]:
    """The ``top_n`` pairs by simulated duration, slowest first."""
    ranked = sorted(
        provenance.records(), key=lambda r: r.duration_ms, reverse=True
    )
    return [
        {
            "x": record.x,
            "y": record.y,
            "status": record.status,
            "duration_ms": round(record.duration_ms, 3),
            "rtt_ms": record.rtt_ms,
        }
        for record in ranked[:top_n]
    ]


def _shard_balance(shards: Iterable[Any]) -> dict[str, Any] | None:
    """Per-shard load plus the makespan imbalance ratio (max/min)."""
    rows = [
        {
            "shard": shard.shard_index,
            "pairs_attempted": shard.pairs_attempted,
            "makespan_ms": round(shard.makespan_ms, 3),
            "wall_s": round(shard.wall_s, 3),
            "events_processed": shard.events_processed,
        }
        for shard in shards
    ]
    if not rows:
        return None
    makespans = [row["makespan_ms"] for row in rows]
    slowest = max(makespans)
    fastest = min(makespans)
    return {
        "shards": rows,
        "makespan_imbalance": round(slowest / fastest, 3) if fastest else 0.0,
    }


def _span_section(spans: Any) -> dict[str, Any] | None:
    """Per-span-name counts and mean simulated durations."""
    records = spans.records() if hasattr(spans, "records") else list(spans)
    if not records:
        return None
    by_name: dict[str, dict[str, Any]] = {}
    for record in records:
        stats = by_name.setdefault(
            record["name"], {"count": 0, "total_ms": 0.0}
        )
        stats["count"] += 1
        stats["total_ms"] += record["dur_ms"]
    for stats in by_name.values():
        stats["mean_ms"] = round(stats["total_ms"] / stats["count"], 3)
        stats["total_ms"] = round(stats["total_ms"], 3)
    return {"total": len(records), "by_name": by_name}


def build_report(
    matrix: RttMatrix,
    metrics: Any | None = None,
    spans: Any | None = None,
    provenance: ProvenanceLog | None = None,
    trace: Any | None = None,
    shards: Iterable[Any] | None = None,
    ground_truth: RttMatrix | None = None,
    pairs_attempted: int | None = None,
    makespan_ms: float | None = None,
    top_n: int = 5,
    health: Any | None = None,
) -> RunReport:
    """Fuse a campaign's artifacts into one :class:`RunReport`.

    Every input beyond the matrix is optional: the report includes the
    sections it has data for and omits the rest, so the same builder
    serves a bare ``measure`` run and a fully instrumented sharded
    campaign. ``metrics`` accepts a live registry or a snapshot dict;
    ``spans`` a tracer or raw record list; ``shards`` any iterable of
    shard results with ``shard_index``/``pairs_attempted``/
    ``makespan_ms``/``wall_s``/``events_processed`` attributes;
    ``health`` a ``repro.obs.health`` ``HealthReport`` (or its dict
    form) to embed as a data-quality section.
    """
    snapshot = (
        metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
    ) or {}
    counters = snapshot.get("counters", {})

    n = len(matrix.nodes)
    attempted = pairs_attempted
    if attempted is None:
        attempted = counters.get("campaign.pairs_attempted") or n * (n - 1) // 2
    pairs_section: dict[str, Any] = {
        "relays": n,
        "attempted": attempted,
        "measured": matrix.num_measured,
        "mean_rtt_ms": (
            round(matrix.mean_rtt_ms(), 3) if matrix.num_measured else None
        ),
        "makespan_ms": makespan_ms,
    }

    by_category: dict[str, int] = {}
    if provenance is not None:
        by_category = provenance.failure_breakdown()
    else:
        prefix = "campaign.failures."
        for name, value in counters.items():
            if name.startswith(prefix) and value:
                by_category[name[len(prefix):]] = value
    failures_section = {
        "total": sum(by_category.values()),
        "by_category": by_category,
    }

    data: dict[str, Any] = {
        "format": REPORT_FORMAT,
        "pairs": pairs_section,
        "failures": failures_section,
    }
    sent = counters.get("echo.probes_sent", 0)
    if sent:
        # The adaptive-engine ledger: what the campaign paid in probes
        # and what early stopping clawed back. runs = one echo stream
        # per probed circuit, the natural early-stop denominator.
        saved = counters.get("ting.probes_saved", 0)
        stops = counters.get("echo.early_stops", 0)
        runs = counters.get("tor.streams_attached", 0)
        data["cost"] = {
            "probes_sent": sent,
            "probes_saved": saved,
            "saved_fraction": round(saved / (sent + saved), 4) if saved else 0.0,
            "early_stops": stops,
            "early_stop_rate": round(stops / runs, 4) if runs else 0.0,
        }
    elif provenance is not None and len(provenance):
        # No live counters (a re-report of a saved dataset): rebuild the
        # ledger from per-pair provenance. ``samples_saved`` and
        # ``stop_reason`` round-trip through CampaignDataset, so an
        # adaptive campaign's savings survive save/load; the sent total
        # covers pair rounds only (leg rounds leave no sample counts),
        # hence the explicit source tag.
        records = provenance.records()
        saved = sum(r.samples_saved for r in records)
        if saved:
            measured = [r for r in records if r.status == "measured"]
            stops = sum(1 for r in records if r.stop_reason == "converged")
            sent = sum(
                max(0, r.samples_requested - r.samples_saved) for r in measured
            )
            data["cost"] = {
                "probes_sent": sent,
                "probes_saved": saved,
                "saved_fraction": (
                    round(saved / (sent + saved), 4) if sent + saved else 0.0
                ),
                "early_stops": stops,
                "early_stop_rate": (
                    round(stops / len(measured), 4) if measured else 0.0
                ),
                "source": "provenance",
            }
    if ground_truth is not None:
        data["accuracy"] = _accuracy_section(matrix, ground_truth)
    if provenance is not None and len(provenance):
        data["slowest_pairs"] = _slowest_pairs(provenance, top_n)
    if shards is not None:
        data["shard_balance"] = _shard_balance(shards)
    if spans is not None:
        section = _span_section(spans)
        if section is not None:
            data["spans"] = section
    if snapshot:
        data["metrics"] = {
            name: counters.get(name, 0) for name in _HEADLINE_COUNTERS
        }
    if trace is not None:
        data["trace"] = {"events": len(trace), "dropped": trace.dropped}
    if health is not None:
        data["health"] = health.to_dict() if hasattr(health, "to_dict") else health
    return RunReport(data=data)
