"""Metrics: counters, gauges, and millisecond-bucketed histograms.

A :class:`MetricsRegistry` is a flat, name-keyed store that the
measurement stack writes into as it works: the simulator counts events
and heap compactions, the onion proxy counts circuits and times their
builds, the echo client histograms probe RTTs, campaigns categorize
failures. Benchmarks and the ``repro stats`` CLI read it back with
:meth:`MetricsRegistry.snapshot` and can assert on exact counter values
instead of only on timings.

The default everywhere is :data:`NULL_METRICS`, a no-op registry whose
mutators do nothing — instrumentation stays in the hot paths at zero
measurable cost until someone opts in (usually via
``MeasurementHost.enable_observability()``).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any

#: Default histogram bucket upper edges, in milliseconds. Chosen to span
#: everything the stack times: sub-ms forwarding delays up through the
#: 600 s probe deadline. Values above the last edge land in "+Inf".
DEFAULT_BUCKET_EDGES_MS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 30_000.0, 60_000.0, 600_000.0,
)

#: Microsecond-resolution bucket edges (still in milliseconds), a 1-2-5
#: exponential ladder from 1 µs to 100 ms plus a 1 s tail. The serve
#: layer answers point queries in single-digit microseconds — under the
#: default ms edges every serve latency lands in the first bucket and
#: ``quantile()`` interpolation degenerates to guessing inside one
#: bucket. These edges keep the interpolation error under a factor of
#: ~2.5 anywhere in the µs-to-ms range.
MICRO_BUCKET_EDGES_MS: tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1_000.0,
)


class Histogram:
    """A fixed-bucket histogram over millisecond observations.

    Histograms from different processes can be combined with
    :meth:`merge` as long as they share bucket edges — shard workers
    histogram into the default edges, so campaign-wide latency
    distributions survive the fork boundary.
    """

    __slots__ = ("edges", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, edges: tuple[float, ...] = DEFAULT_BUCKET_EDGES_MS) -> None:
        self.edges = tuple(edges)
        self.bucket_counts = [0] * (len(self.edges) + 1)  # last = +Inf
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value_ms: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.edges, value_ms)] += 1
        self.count += 1
        self.total += value_ms
        if self.min is None or value_ms < self.min:
            self.min = value_ms
        if self.max is None or value_ms > self.max:
            self.max = value_ms

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile, linearly interpolated within its bucket.

        The rank is located in a bucket by cumulative count and the
        value interpolated between the bucket's bounds — the Prometheus
        ``histogram_quantile`` estimate — rather than snapping to the
        upper edge (which over-reports by up to a full bucket width at
        these exponential edges). The containing bucket's bounds are
        tightened by the observed ``min``/``max``, so a single-valued
        histogram reports that value exactly and q=1.0 is always the
        true maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket in enumerate(self.bucket_counts):
            if not bucket:
                continue
            if seen + bucket >= rank:
                lower = self.edges[index - 1] if index > 0 else 0.0
                upper = (
                    self.edges[index]
                    if index < len(self.edges)
                    else (self.max if self.max is not None else lower)
                )
                if self.min is not None:
                    lower = max(lower, min(self.min, upper))
                if self.max is not None:
                    upper = min(upper, self.max)
                fraction = (rank - seen) / bucket
                return lower + (upper - lower) * max(0.0, min(1.0, fraction))
            seen += bucket
        return self.max if self.max is not None else 0.0

    def quantiles(
        self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> dict[str, float]:
        """Interpolated quantiles keyed ``p50``-style, for reports."""
        return {f"p{q * 100:g}": self.quantile(q) for q in qs}

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view of the histogram state.

        Non-default bucket edges ride along under ``"edges"`` so a
        snapshot shipped across the fork boundary (or to disk) rebuilds
        with the same resolution it was recorded at — a µs-bucketed
        serve histogram must never silently widen to ms buckets on
        :meth:`from_snapshot`.
        """
        buckets: dict[str, int] = {}
        for edge, bucket in zip(self.edges, self.bucket_counts):
            if bucket:
                buckets[f"le_{edge:g}"] = bucket
        if self.bucket_counts[-1]:
            buckets["inf"] = self.bucket_counts[-1]
        state: dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }
        if self.edges != DEFAULT_BUCKET_EDGES_MS:
            state["edges"] = list(self.edges)
        return state

    @classmethod
    def from_snapshot(
        cls,
        data: dict[str, Any],
        edges: tuple[float, ...] = DEFAULT_BUCKET_EDGES_MS,
    ) -> "Histogram":
        """Rebuild a histogram from :meth:`snapshot` output.

        Edges embedded in the snapshot win over the ``edges`` argument,
        so custom-bucket histograms round-trip losslessly.
        """
        if "edges" in data:
            edges = tuple(float(e) for e in data["edges"])
        histogram = cls(edges)
        histogram.count = int(data["count"])
        histogram.total = float(data["sum"])
        histogram.min = data["min"]
        histogram.max = data["max"]
        by_label = dict(data.get("buckets", {}))
        for index, edge in enumerate(histogram.edges):
            histogram.bucket_counts[index] = int(by_label.get(f"le_{edge:g}", 0))
        histogram.bucket_counts[-1] = int(by_label.get("inf", 0))
        return histogram

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (bucket-sum semantics).

        Associative and commutative up to float addition of ``total``,
        so shard results can be merged in any order. Returns ``self``.
        """
        if self.edges != other.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{len(self.edges)} vs {len(other.edges)} buckets"
            )
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def copy(self) -> "Histogram":
        """An independent deep copy (merge must not alias bucket lists)."""
        duplicate = Histogram(self.edges)
        duplicate.bucket_counts = list(self.bucket_counts)
        duplicate.count = self.count
        duplicate.total = self.total
        duplicate.min = self.min
        duplicate.max = self.max
        return duplicate

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.3f}ms)"


class MetricsRegistry:
    """Name-keyed counters, gauges, and histograms.

    Names are dotted strings (``"tor.circuits_built"``); metrics are
    created on first write, so instrumented code never declares anything
    up front. Reads of unknown names return zero/``None`` rather than
    raising — a snapshot consumer should not crash because a code path
    never ran.
    """

    #: Whether writes are recorded; hot paths may branch on this to skip
    #: building event payloads when observability is off.
    enabled = True

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writes --------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to a counter (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to ``value``."""
        self._gauges[name] = float(value)

    def max_gauge(self, name: str, value: float) -> None:
        """Raise a gauge to ``value`` if it is a new maximum."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = float(value)

    def observe(self, name: str, value_ms: float) -> None:
        """Record ``value_ms`` into a histogram (created on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value_ms)

    def ensure_histogram(
        self, name: str, edges: tuple[float, ...] = DEFAULT_BUCKET_EDGES_MS
    ) -> Histogram:
        """The named histogram, created with ``edges`` if absent.

        Returns the *live* object so hot paths can hold it and call
        ``observe`` directly, skipping the per-observation name lookup —
        the serve telemetry caches one histogram per query op this way.
        ``edges`` only applies at creation; an existing histogram keeps
        its own buckets.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(edges)
        return histogram

    def reset(self) -> None:
        """Drop every metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- reads ---------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current counter value (0 if never incremented)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        """Current gauge value (``None`` if never set)."""
        return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        """The named histogram (``None`` if never observed)."""
        return self._histograms.get(name)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable view of every metric."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialize :meth:`snapshot` as JSON text."""
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self, namespace: str = "ting") -> str:
        """Serialize :meth:`snapshot` as Prometheus text exposition."""
        return prometheus_exposition(self.snapshot(), namespace=namespace)

    @classmethod
    def from_snapshot(cls, data: dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a live registry from :meth:`snapshot` output.

        Always returns a plain :class:`MetricsRegistry` — snapshots carry
        data, and data deserializes to a recording registry even when the
        classmethod is reached through :class:`NullMetricsRegistry`.
        """
        registry = MetricsRegistry()
        for name, value in data.get("counters", {}).items():
            registry._counters[name] = int(value)
        for name, value in data.get("gauges", {}).items():
            registry._gauges[name] = float(value)
        for name, hist_data in data.get("histograms", {}).items():
            registry._histograms[name] = Histogram.from_snapshot(hist_data)
        return registry

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_json` output."""
        return cls.from_snapshot(json.loads(text))

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's metrics into this one. Returns self.

        Shard-merge semantics, chosen so deterministic campaign counters
        are invariant to how the work was partitioned:

        * **counters sum** — ``pairs_attempted`` over four shards adds up
          to the unsharded count;
        * **gauges take the max** — peaks (``sim.heap_peak``,
          ``campaign.peak_concurrency``) are the only gauges that
          aggregate meaningfully across processes;
        * **histograms bucket-sum** (see :meth:`Histogram.merge`).

        The operation is associative and commutative (up to float
        addition), so any merge tree over shard results yields the same
        registry. ``other`` is not modified; adopted histograms are
        copied, never aliased.
        """
        if not other.enabled:
            return self
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in other._gauges.items():
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = value
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = histogram.copy()
            else:
                mine.merge(histogram)
        return self

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


class NullMetricsRegistry(MetricsRegistry):
    """A registry that records nothing: the zero-cost default.

    Construction is allocation-free (no backing dicts exist at all), so
    instantiating one in a hot path costs a bare object header. Reads
    return the same zero/``None``/empty answers a fresh live registry
    would; :meth:`snapshot` builds fresh dicts per call so no caller can
    mutate state shared with other holders of :data:`NULL_METRICS`, and
    :meth:`from_snapshot`/``from_json`` hand back a *live* registry (data
    deserializes to data) without touching the null singleton.
    """

    enabled = False

    __slots__ = ()

    def __init__(self) -> None:
        # Deliberately no super().__init__(): the null registry owns no
        # storage, which is what makes it safe as a process-wide default.
        pass

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def max_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value_ms: float) -> None:
        pass

    def ensure_histogram(
        self, name: str, edges: tuple[float, ...] = DEFAULT_BUCKET_EDGES_MS
    ) -> Histogram:
        """A fresh unstored histogram: callers may observe into it, but
        nothing is retained — the null registry stays allocation-free
        after construction and snapshot-empty forever."""
        return Histogram(edges)

    def reset(self) -> None:
        pass

    def merge(self, other: MetricsRegistry) -> "MetricsRegistry":
        """Null sinks drop merged data exactly as they drop writes."""
        return self

    def counter(self, name: str) -> int:
        return 0

    def gauge(self, name: str) -> float | None:
        return None

    def histogram(self, name: str) -> Histogram | None:
        return None

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __repr__(self) -> str:
        return "NullMetricsRegistry()"


#: The process-wide no-op registry; instrumented components default to it.
NULL_METRICS = NullMetricsRegistry()


def _prom_name(namespace: str, name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in f"{namespace}_{name}"
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def prometheus_exposition(snapshot: dict[str, Any], namespace: str = "ting") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text format.

    Works on any registry snapshot — serve telemetry, campaign metrics,
    a snapshot loaded back from disk — so one scrape path serves them
    all. Mapping:

    * counters → ``<ns>_<name>_total`` (monotonic counter convention);
    * gauges → ``<ns>_<name>``;
    * histograms → the standard cumulative triplet:
      ``_bucket{le="..."}`` rows per edge plus ``le="+Inf"``, then
      ``_sum`` and ``_count``. Bucket counts are cumulative per the
      exposition format (our snapshots store per-bucket counts).

    Dots and other non-identifier characters become underscores; output
    ordering follows the snapshot's (sorted) ordering, so the text is
    deterministic for a given snapshot.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(namespace, name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {int(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(namespace, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(value):g}")
    for name, data in snapshot.get("histograms", {}).items():
        metric = _prom_name(namespace, name)
        lines.append(f"# TYPE {metric} histogram")
        edges = tuple(
            float(e) for e in data.get("edges", DEFAULT_BUCKET_EDGES_MS)
        )
        by_label = dict(data.get("buckets", {}))
        cumulative = 0
        for edge in edges:
            cumulative += int(by_label.get(f"le_{edge:g}", 0))
            lines.append(f'{metric}_bucket{{le="{edge:g}"}} {cumulative}')
        cumulative += int(by_label.get("inf", 0))
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {float(data.get('sum', 0.0)):g}")
        lines.append(f"{metric}_count {int(data.get('count', 0))}")
    return "\n".join(lines) + "\n" if lines else ""
