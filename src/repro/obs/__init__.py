"""repro.obs — lightweight observability for the measurement stack.

Three primitives, all with zero-cost no-op defaults:

* :class:`MetricsRegistry` — counters, gauges, and ms-bucketed
  histograms, aggregated by dotted name and exportable as JSON.
* :class:`TraceLog` — a bounded structured log of typed events
  (circuit built/failed, probe lost, leg cache hit, retry round, heap
  compaction, ...).
* :class:`SpanTracer` — hierarchical sim-time intervals (campaign →
  pair → leg → circuit build → probe round) exportable as Chrome
  trace-event JSON for Perfetto.
* :class:`EventBus` — live severity-leveled events stamped with sim-
  and wall-time, backed by a bounded :class:`FlightRecorder` ring and
  fanned out to sinks (JSONL, console, the shard progress queue).

All of these are *mergeable*: shard workers snapshot their sinks and the
parent folds them into one registry/log/tracer with counter-sum,
gauge-max, histogram-bucket-sum, and shard-tagging semantics, so
observability survives the fork boundary of ``ShardedCampaign``.

Components (``Simulator``, ``OnionProxy``, ``Relay``, ``EchoClient``)
each carry ``metrics``/``trace`` attributes defaulting to
:data:`NULL_METRICS` / :data:`NULL_TRACE`; call
``MeasurementHost.enable_observability()`` to wire one live registry,
trace, and span tracer through an entire deployment.
"""

from repro.obs.events import (
    DEBUG,
    ERROR,
    INFO,
    NULL_EVENTS,
    WARNING,
    ConsoleSink,
    Event,
    EventBus,
    FlightRecorder,
    JsonlSink,
    NullEventBus,
    ProgressTracker,
    event_from_dict,
    format_event,
    severity_level,
    severity_name,
)
from repro.obs.registry import (
    DEFAULT_BUCKET_EDGES_MS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from repro.obs.spans import (
    CAMPAIGN_SPAN,
    CIRCUIT_BUILD_SPAN,
    LEG_SPAN,
    NULL_SPANS,
    NullSpanTracer,
    PAIR_SPAN,
    PROBE_ROUND_SPAN,
    SpanHandle,
    SpanTracer,
)
from repro.obs.trace import (
    CIRCUIT_BUILT,
    CIRCUIT_FAILED,
    HEAP_COMPACTION,
    LEG_CACHE_HIT,
    LEG_CACHE_MISS,
    NULL_TRACE,
    NullTraceLog,
    PAIR_FAILED,
    PAIR_MEASURED,
    PROBE_LOST,
    PROBE_SENT,
    RETRY_ROUND,
    STREAM_ATTACHED,
    STREAM_FAILED,
    TraceEvent,
    TraceLog,
    categorize_failure,
)

__all__ = [
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    "ConsoleSink",
    "Event",
    "EventBus",
    "FlightRecorder",
    "JsonlSink",
    "NULL_EVENTS",
    "NullEventBus",
    "ProgressTracker",
    "event_from_dict",
    "format_event",
    "severity_level",
    "severity_name",
    "DEFAULT_BUCKET_EDGES_MS",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_SPANS",
    "NULL_TRACE",
    "NullMetricsRegistry",
    "NullSpanTracer",
    "NullTraceLog",
    "SpanHandle",
    "SpanTracer",
    "TraceEvent",
    "TraceLog",
    "categorize_failure",
    "CAMPAIGN_SPAN",
    "PAIR_SPAN",
    "LEG_SPAN",
    "CIRCUIT_BUILD_SPAN",
    "PROBE_ROUND_SPAN",
    "CIRCUIT_BUILT",
    "CIRCUIT_FAILED",
    "STREAM_ATTACHED",
    "STREAM_FAILED",
    "PROBE_SENT",
    "PROBE_LOST",
    "LEG_CACHE_HIT",
    "LEG_CACHE_MISS",
    "RETRY_ROUND",
    "HEAP_COMPACTION",
    "PAIR_MEASURED",
    "PAIR_FAILED",
]
