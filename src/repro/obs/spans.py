"""Hierarchical sim-time span tracing with Perfetto export.

Where :class:`~repro.obs.registry.MetricsRegistry` aggregates and
:class:`~repro.obs.trace.TraceLog` keeps point events, a
:class:`SpanTracer` records *intervals*: how long each campaign, pair
task, leg measurement, circuit build, and probe round occupied simulated
time, and how they nest. The span hierarchy mirrors the measurement
stack::

    campaign
    └── pair (x, y)                └── leg (relay)
        ├── circuit_build              ├── circuit_build
        └── probe_round                └── probe_round

Spans are recorded against the *simulated* clock — a tracer is handed a
``clock`` callable (usually ``lambda: sim.now``) — so exported traces
show where campaign makespan went, not Python interpreter time.

Two recording styles:

* ``with spans.span("pair", x=..., y=...):`` for synchronous code; the
  tracer keeps a stack, so nested ``span()`` calls become children of
  the innermost open span (same Perfetto track).
* ``handle = spans.begin("pair", ...)`` / ``handle.end()`` for
  callback-driven code, where a task's start and finish live in
  different stack frames. Concurrent root spans each get their own
  track so overlapping intervals never collide in the viewer; children
  pass ``parent=handle`` to ride their parent's track.

:meth:`SpanTracer.to_chrome_trace` exports the Chrome trace-event JSON
object format (``{"traceEvents": [...]}``, complete events, ``ts``/
``dur`` in microseconds) which https://ui.perfetto.dev loads directly.

The default everywhere is :data:`NULL_SPANS`, whose ``span``/``begin``
hand back one shared, stateless no-op handle — recording costs nothing
until someone opts in.
"""

from __future__ import annotations

import heapq
import json
from pathlib import Path
from typing import Any, Callable

#: Span names used by the measurement stack, root to leaf. Plain strings
#: so downstream consumers can add their own without touching this module.
CAMPAIGN_SPAN = "campaign"
PAIR_SPAN = "pair"
LEG_SPAN = "leg"
CIRCUIT_BUILD_SPAN = "circuit_build"
PROBE_ROUND_SPAN = "probe_round"


class SpanHandle:
    """One open span; context-manageable and explicitly endable."""

    __slots__ = ("_tracer", "name", "args", "start_ms", "track", "_owns_track", "_open")

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        args: dict[str, Any],
        start_ms: float,
        track: int,
        owns_track: bool,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self.start_ms = start_ms
        self.track = track
        self._owns_track = owns_track
        self._open = True

    def end(self) -> None:
        """Close the span, recording its duration. Idempotent."""
        if not self._open:
            return
        self._open = False
        self._tracer._finish(self)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.end()
        if self._tracer._stack and self._tracer._stack[-1] is self:
            self._tracer._stack.pop()


class SpanTracer:
    """Records completed spans against a simulated-time clock.

    ``clock`` supplies the current time in milliseconds; ``shard`` tags
    every span with the worker that recorded it (0 for single-process
    runs). Finished spans are plain dicts — picklable across the fork
    boundary and mergeable in any order with :meth:`merge`.
    """

    #: Whether spans are kept; hot paths may branch on this.
    enabled = True

    __slots__ = ("_clock", "shard", "_records", "_stack", "_free_tracks", "_next_track")

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        shard: int = 0,
    ) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.shard = shard
        #: Finished spans: {"name", "start_ms", "dur_ms", "track",
        #: "shard"} plus "args" when non-empty.
        self._records: list[dict[str, Any]] = []
        self._stack: list[SpanHandle] = []
        self._free_tracks: list[int] = []  # min-heap of released track ids
        self._next_track = 0

    # -- recording -----------------------------------------------------

    def span(self, name: str, **args: Any) -> SpanHandle:
        """Open a synchronous span: ``with spans.span("pair", x=...):``.

        Nested calls become children of the innermost open ``span()``
        (they share its track, so the viewer renders a flame).
        """
        if self._stack:
            track, owns = self._stack[-1].track, False
        else:
            track, owns = self._alloc_track(), True
        handle = SpanHandle(self, name, args, self._clock(), track, owns)
        self._stack.append(handle)
        return handle

    def begin(
        self, name: str, parent: SpanHandle | None = None, **args: Any
    ) -> SpanHandle:
        """Open an asynchronous span; close it later with ``.end()``.

        Without a ``parent`` the span is a root task and gets its own
        track (concurrent tasks render side by side, never stacked
        wrongly); with one it shares the parent's track as a child.
        """
        if parent is not None:
            track, owns = parent.track, False
        else:
            track, owns = self._alloc_track(), True
        return SpanHandle(self, name, args, self._clock(), track, owns)

    def _alloc_track(self) -> int:
        if self._free_tracks:
            return heapq.heappop(self._free_tracks)
        track = self._next_track
        self._next_track += 1
        return track

    def _finish(self, handle: SpanHandle) -> None:
        record: dict[str, Any] = {
            "name": handle.name,
            "start_ms": handle.start_ms,
            "dur_ms": max(0.0, self._clock() - handle.start_ms),
            "track": handle.track,
            "shard": self.shard,
        }
        if handle.args:
            record["args"] = handle.args
        self._records.append(record)
        if handle._owns_track:
            heapq.heappush(self._free_tracks, handle.track)

    # -- reads & merging ----------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """All finished spans, in completion order (picklable dicts)."""
        return list(self._records)

    def count(self, name: str | None = None) -> int:
        """How many finished spans (optionally of one name) exist."""
        if name is None:
            return len(self._records)
        return sum(1 for record in self._records if record["name"] == name)

    def durations_ms(self, name: str) -> list[float]:
        """Durations of every finished span with the given name."""
        return [r["dur_ms"] for r in self._records if r["name"] == name]

    def merge(
        self,
        other: "SpanTracer | list[dict[str, Any]]",
        shard: int | None = None,
    ) -> "SpanTracer":
        """Adopt another tracer's (or raw record list's) finished spans.

        ``shard`` retags the adopted spans — the parent of a sharded
        campaign merges worker tracers with ``shard=<index>`` so a fused
        trace still shows which process ran what (workers all record
        shard 0 locally). Returns self; merge order only affects record
        order, never content.
        """
        records = other if isinstance(other, list) else other.records()
        for record in records:
            adopted = dict(record)
            if shard is not None:
                adopted["shard"] = shard
            self._records.append(adopted)
        return self

    # -- export --------------------------------------------------------

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome trace-event JSON object format (Perfetto-loadable).

        Every span becomes a complete event (``"ph": "X"``) with ``ts``
        and ``dur`` in microseconds; the shard index maps to ``pid`` and
        the track to ``tid``, so Perfetto shows one process group per
        worker with concurrent tasks on separate rows.
        """
        events = []
        for record in self._records:
            events.append(
                {
                    "name": record["name"],
                    "cat": "ting",
                    "ph": "X",
                    "ts": round(record["start_ms"] * 1000.0, 3),
                    "dur": round(record["dur_ms"] * 1000.0, 3),
                    "pid": record["shard"],
                    "tid": record["track"],
                    "args": record.get("args", {}),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.spans", "clock": "simulated"},
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialize :meth:`to_chrome_trace` as JSON text."""
        return json.dumps(self.to_chrome_trace(), indent=indent)

    def save(self, path: str | Path) -> None:
        """Write the Chrome trace JSON to ``path`` (open in Perfetto)."""
        Path(path).write_text(self.to_json())

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"SpanTracer({len(self._records)} spans, shard={self.shard})"


class _NullSpanHandle(SpanHandle):
    """The shared no-op handle; safe to reuse because it holds nothing."""

    __slots__ = ()

    def __init__(self) -> None:
        pass

    @property
    def track(self) -> int:  # type: ignore[override]
        return 0

    def end(self) -> None:
        pass

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_HANDLE = _NullSpanHandle()


class NullSpanTracer(SpanTracer):
    """A tracer that records nothing: the zero-cost default.

    ``span``/``begin`` return one shared stateless handle — no
    allocation per call — and every read returns a fresh empty value,
    so nothing a caller does through :data:`NULL_SPANS` can leak state
    between components.
    """

    enabled = False

    __slots__ = ()

    def __init__(self) -> None:
        pass

    def span(self, name: str, **args: Any) -> SpanHandle:
        return _NULL_HANDLE

    def begin(
        self, name: str, parent: SpanHandle | None = None, **args: Any
    ) -> SpanHandle:
        return _NULL_HANDLE

    def merge(
        self,
        other: "SpanTracer | list[dict[str, Any]]",
        shard: int | None = None,
    ) -> "SpanTracer":
        return self

    def records(self) -> list[dict[str, Any]]:
        return []

    def count(self, name: str | None = None) -> int:
        return 0

    def durations_ms(self, name: str) -> list[float]:
        return []

    def to_chrome_trace(self) -> dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullSpanTracer()"


#: The process-wide no-op span tracer; instrumented components default to it.
NULL_SPANS = NullSpanTracer()
