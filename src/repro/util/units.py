"""Time and distance unit conventions.

The simulator keeps all timestamps in *milliseconds* as floats: network RTTs
live naturally in the 0.1--2000 ms range, so milliseconds keep numbers
human-readable in logs and tests. These aliases and helpers document intent
at API boundaries.
"""

from __future__ import annotations

# Type aliases used in signatures to document the unit of a float.
Milliseconds = float
Seconds = float
Kilometers = float

#: Speed of light in vacuum, km/s.
SPEED_OF_LIGHT_KM_S = 299_792.458

#: Propagation speed in fiber is commonly taken as 2/3 c.  Expressed as
#: kilometers traveled per millisecond, this is the constant the paper's
#: Figure 8 uses for its "(2/3)c" sanity-check line.
KM_PER_MS_FIBER = SPEED_OF_LIGHT_KM_S * (2.0 / 3.0) / 1000.0


def ms_to_s(value: Milliseconds) -> Seconds:
    """Convert milliseconds to seconds."""
    return value / 1000.0


def s_to_ms(value: Seconds) -> Milliseconds:
    """Convert seconds to milliseconds."""
    return value * 1000.0


def propagation_delay_ms(distance_km: Kilometers) -> Milliseconds:
    """One-way propagation delay for ``distance_km`` of fiber at 2/3 c."""
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km}")
    return distance_km / KM_PER_MS_FIBER


def min_rtt_floor_ms(distance_km: Kilometers) -> Milliseconds:
    """The physical lower bound on RTT between points ``distance_km`` apart.

    This is the "(2/3)c" line from Figure 8 of the paper: no real
    measurement between two hosts should fall below it, and points that do
    indicate geolocation-database errors.
    """
    return 2.0 * propagation_delay_ms(distance_km)
