"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class. Subsystems raise the most specific
subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class MeasurementError(ReproError):
    """A Ting measurement could not be completed (circuit failure, timeout)."""


class CircuitError(ReproError):
    """A Tor circuit could not be built, extended, or used."""


class StreamError(ReproError):
    """A Tor stream could not be attached or carried data incorrectly."""


class ControlProtocolError(ReproError):
    """The Stem-like control channel received a malformed command or reply."""


class DirectoryError(ReproError):
    """Directory/consensus lookup failed (unknown relay, stale consensus)."""
