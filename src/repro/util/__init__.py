"""Shared utilities: errors, units, and deterministic random streams."""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    SimulationError,
    MeasurementError,
)
from repro.util.rng import RandomStreams
from repro.util.units import (
    Milliseconds,
    Seconds,
    ms_to_s,
    s_to_ms,
    KM_PER_MS_FIBER,
    SPEED_OF_LIGHT_KM_S,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "MeasurementError",
    "RandomStreams",
    "Milliseconds",
    "Seconds",
    "ms_to_s",
    "s_to_ms",
    "KM_PER_MS_FIBER",
    "SPEED_OF_LIGHT_KM_S",
]
