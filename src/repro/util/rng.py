"""Deterministic, named random streams.

Every stochastic component in the simulator draws from its own named child
stream of a single root seed. This gives two properties the experiments
rely on:

* **Reproducibility** — the same root seed always produces the same
  simulated network, the same jitter, and the same measurement results.
* **Isolation** — adding draws in one component (say, relay cross-traffic)
  does not perturb the sequence seen by another (say, topology generation),
  so experiments remain comparable across code changes.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """A factory of independent ``numpy.random.Generator`` streams.

    Each stream is identified by a string name; the stream's seed is derived
    from the root seed and the name via SHA-256, so streams are stable
    across runs and independent of the order in which they are requested.

    Example::

        streams = RandomStreams(seed=7)
        jitter_rng = streams.get("netsim.jitter")
        topo_rng = streams.get("netsim.topology")
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so a component that draws repeatedly advances its own
        stream only.
        """
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                self.derive_seed(self._seed, name)
            )
        return self._streams[name]

    def reseed(self, name: str, context: str) -> None:
        """Rewind the named stream to a ``context``-derived state, in place.

        The generator object returned by :meth:`get` is mutated, so every
        component already holding a reference to the stream starts drawing
        the new deterministic sequence immediately. Sharded campaigns use
        this to give each measurement task an RNG state that is a pure
        function of ``(root seed, stream name, task key)`` — making task
        results independent of which tasks ran earlier in the process.
        """
        seed = self.derive_seed(self._seed, f"{name}@{context}")
        self.get(name).bit_generator.state = np.random.default_rng(
            seed
        ).bit_generator.state

    def fork(self, name: str) -> "RandomStreams":
        """Return a new factory whose root seed is derived from ``name``.

        Useful for giving each experiment repetition its own fully
        independent universe of streams.
        """
        return RandomStreams(self.derive_seed(self._seed, name))

    @staticmethod
    def derive_seed(root_seed: int, name: str) -> int:
        """Derive a 63-bit child seed from ``root_seed`` and ``name``."""
        payload = f"{root_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self._seed}, streams={len(self._streams)})"
