"""Ting as a measurement platform: relay coverage (Section 5.3).

The paper argues Ting's reach grows with Tor: ~6000 unique /24 networks
hosted relays in spring 2015, a majority of them residential. This
module reproduces that analysis end to end:

* :func:`synthesize_archive` builds a two-month daily consensus archive
  with churn and growth shaped like Tor Metrics' Feb 28 – Apr 28 2015
  window (total relays in the mid-6000s, unique /24s between ~5400 and
  ~6050, total growth ~30%/yr pace).
* :class:`ResidentialClassifier` implements the Schulman-et-al.-style
  reverse-DNS classifier (suffix keywords + embedded address octets),
  extended with European ISP patterns as the paper describes, plus the
  hosting-domain and provider-address-range detection the paper uses to
  count data-center relays.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.netsim.addresses import (
    AddressAllocator,
    HOSTING_PROVIDER_RANGES,
    prefix24,
)
from repro.testbeds.rdns import synthesize_rdns
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class RelayRecord:
    """One relay's row in a daily consensus snapshot."""

    fingerprint: str
    address: str
    rdns: str | None
    host_type: str  # ground truth, for classifier validation

    @property
    def prefix24(self) -> str:
        """The relay's /24 network prefix."""
        return prefix24(self.address)


@dataclass
class DailySnapshot:
    """All relays present on one archive day."""

    day: int  # days since archive start
    relays: list[RelayRecord] = field(default_factory=list)

    @property
    def total_relays(self) -> int:
        """Number of relays in this snapshot."""
        return len(self.relays)

    @property
    def unique_24s(self) -> int:
        """Number of distinct /24 prefixes among the relays."""
        return len({r.prefix24 for r in self.relays})


@dataclass
class ConsensusArchive:
    """A sequence of daily snapshots."""

    snapshots: list[DailySnapshot]

    def series(self) -> tuple[list[int], list[int], list[int]]:
        """(day, total relays, unique /24s) — the Figure 18 series."""
        days = [s.day for s in self.snapshots]
        totals = [s.total_relays for s in self.snapshots]
        uniques = [s.unique_24s for s in self.snapshots]
        return days, totals, uniques

    @property
    def latest(self) -> DailySnapshot:
        """The archive's most recent daily snapshot."""
        return self.snapshots[-1]


#: Host-type mix for archive synthesis (matching the live-Tor testbed).
_ARCHIVE_TYPE_MIX: tuple[tuple[str, float], ...] = (
    ("residential", 0.58),
    ("hosting", 0.30),
    ("university", 0.12),
)


def synthesize_archive(
    rng: np.random.Generator,
    n_days: int = 60,
    initial_relays: int = 6300,
    daily_churn: float = 0.015,
    daily_growth: float = 0.0008,
    shared_24_fraction: float = 0.12,
) -> ConsensusArchive:
    """Build a synthetic daily consensus archive.

    Each day, ``daily_churn`` of relays leave and are replaced, plus a
    small net ``daily_growth`` adds new relays (Tor grew ~30% in the year
    before the paper's window). ``shared_24_fraction`` of joining relays
    land in a /24 that already hosts a relay — which is why unique /24s
    run below the relay total.
    """
    if n_days < 1:
        raise ConfigurationError("archive needs at least one day")
    if initial_relays < 1:
        raise ConfigurationError("archive needs at least one relay")
    allocator = AddressAllocator(rng)
    type_names = [name for name, _ in _ARCHIVE_TYPE_MIX]
    type_p = np.array([w for _, w in _ARCHIVE_TYPE_MIX])
    type_p /= type_p.sum()

    serial = 0
    open_networks: list[str] = []

    def new_relay() -> RelayRecord:
        nonlocal serial
        serial += 1
        host_type = type_names[int(rng.choice(len(type_names), p=type_p))]
        if open_networks and rng.random() < shared_24_fraction:
            network = open_networks[int(rng.integers(0, len(open_networks)))]
            try:
                address = allocator.address_in(network)
            except ConfigurationError:  # that /24 filled up
                network = allocator.new_network()
                open_networks.append(network)
                address = allocator.address_in(network)
        else:
            provider = None
            if host_type == "hosting" and rng.random() < 0.3:
                provider = HOSTING_PROVIDER_RANGES[
                    int(rng.integers(0, len(HOSTING_PROVIDER_RANGES)))
                ]
            try:
                network = allocator.new_network(provider)
            except ConfigurationError:
                # Provider range full: the provider's customers spill into
                # generic space (as real clouds do when ranges fill).
                network = allocator.new_network()
            open_networks.append(network)
            address = allocator.address_in(network)
        return RelayRecord(
            fingerprint=f"ARCHIVE{serial:08d}",
            address=address,
            rdns=synthesize_rdns(rng, address, host_type),
            host_type=host_type,
        )

    population = [new_relay() for _ in range(initial_relays)]
    snapshots: list[DailySnapshot] = []
    for day in range(n_days):
        if day > 0:
            leavers = rng.random(len(population)) < daily_churn
            survivors = [r for r, gone in zip(population, leavers) if not gone]
            replacements = int(leavers.sum())
            growth = rng.poisson(daily_growth * len(population))
            population = survivors + [
                new_relay() for _ in range(replacements + growth)
            ]
        snapshots.append(DailySnapshot(day=day, relays=list(population)))
    return ConsensusArchive(snapshots=snapshots)


# ----------------------------------------------------------------------
# Reverse-DNS classification


class ResidentialClassifier:
    """Schulman-style rDNS classification, extended to Europe.

    A name is *residential* when it carries a residential-access keyword
    or a known consumer-ISP suffix, especially combined with embedded
    address octets; *hosting* when it matches a known hosting domain;
    otherwise *other*. Names of ``None`` are unclassifiable.
    """

    #: Substrings indicating consumer access technology or address pools.
    RESIDENTIAL_KEYWORDS = (
        "dyn",
        "dynamic",
        "pool",
        "cable",
        "dsl",
        "adsl",
        "dip",
        "fios",
        "hsd",
        "res.",
        ".res",
        "cust",
        "client",
        "abo.",
        "cpe-",
        "broadband",
        "wline",
        "lightspeed",
    )

    #: Consumer ISP domain suffixes (U.S. + European extension).
    RESIDENTIAL_SUFFIXES = (
        "comcast.net",
        "verizon.net",
        "myvzw.com",
        "rr.com",
        "cox.net",
        "sbcglobal.net",
        "wideopenwest.com",
        "centurylink.net",
        "t-ipconnect.de",
        "telefonica.de",
        "bbox.fr",
        "wanadoo.fr",
        "virginm.net",
        "btcentralplus.com",
        "swisscom.ch",
        "luna.nl",
        "bahnhof.se",
        "tiscali.it",
    )

    #: Hosting domains, as enumerated in the paper plus our synthetic one.
    HOSTING_SUFFIXES = (
        "linode.com",
        "amazonaws.com",
        "ovh.com",
        "ovh.net",
        "cloudatcost.com",
        "your-server.de",
        "leaseweb.com",
        "stratus-cloud.example.net",
    )

    _OCTET_RUN = re.compile(r"(\d{1,3}[-.x]){2,}\d{1,3}")

    def classify(self, rdns: str | None) -> str | None:
        """Return "residential", "hosting", "other", or None (no name)."""
        if rdns is None:
            return None
        name = rdns.lower()
        if any(name.endswith(suffix) for suffix in self.HOSTING_SUFFIXES):
            return "hosting"
        if any(name.endswith(suffix) for suffix in self.RESIDENTIAL_SUFFIXES):
            return "residential"
        has_keyword = any(k in name for k in self.RESIDENTIAL_KEYWORDS)
        has_octets = bool(self._OCTET_RUN.search(name))
        if has_keyword and has_octets:
            return "residential"
        return "other"

    # ------------------------------------------------------------------

    def survey(self, snapshot: DailySnapshot) -> dict[str, int]:
        """Count a snapshot's relays per class (plus unnamed and
        provider-range hosting detected by address)."""
        counts = {"residential": 0, "hosting": 0, "other": 0, "unnamed": 0}
        for relay in snapshot.relays:
            label = self.classify(relay.rdns)
            if label is None:
                counts["unnamed"] += 1
                if any(
                    p.contains(relay.address) for p in HOSTING_PROVIDER_RANGES
                ):
                    counts["hosting"] += 1
            else:
                counts[label] += 1
        return counts

    def residential_fraction_of_named(self, snapshot: DailySnapshot) -> float:
        """Residential share among relays that *have* an rDNS name —
        the paper's 3355/5484 ≈ 61% statistic."""
        named = [r for r in snapshot.relays if r.rdns is not None]
        if not named:
            raise ConfigurationError("snapshot has no named relays")
        residential = sum(
            1 for r in named if self.classify(r.rdns) == "residential"
        )
        return residential / len(named)
