"""Latency-aware circuit selection: exploiting Ting's data (Section 5.2).

The paper motivates Ting with path-selection proposals (LASTor et al.)
that lacked real inter-relay RTTs and fell back to geographic distance.
This module implements three selection strategies over one relay set so
their end-to-end latency and anonymity cost can be compared:

* ``default`` — Tor's bandwidth-weighted random choice (the baseline).
* ``geographic`` — LASTor-style: prefer circuits with small total
  great-circle distance (a *proxy* that cannot see TIVs).
* ``ting`` — prefer circuits with small measured total RTT from an
  all-pairs Ting matrix, sampling among the best candidates to retain
  entropy.

Anonymity cost is quantified by the entropy of the realized relay-
selection distribution (Gini-style concentration): a selector that
always picks the same fast relays is easier to attack.

The selector accepts either an :class:`~repro.core.dataset.RttMatrix`
or a pre-built :class:`~repro.serve.index.MatrixIndex` and snapshots
the relay-subset RTTs into a contiguous integer-indexed submatrix at
construction, so every per-circuit lookup is plain array indexing —
no name hashing on the sampling hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import RttMatrix
from repro.netsim.geo import GeoPoint, great_circle_km
from repro.serve.index import MatrixIndex
from repro.util.errors import ConfigurationError, MeasurementError

STRATEGIES = ("default", "geographic", "ting")


@dataclass(frozen=True)
class RelayInfo:
    """What the selector knows about one relay."""

    name: str
    bandwidth_kbps: int
    location: GeoPoint


@dataclass
class SelectionOutcome:
    """The result of sampling many circuits under one strategy."""

    strategy: str
    circuit_rtts_ms: np.ndarray
    selection_counts: np.ndarray  # per relay

    def median_rtt_ms(self) -> float:
        """Median end-to-end RTT over the sampled circuits."""
        return float(np.median(self.circuit_rtts_ms))

    def selection_entropy(self) -> float:
        """Shannon entropy (bits) of the realized relay distribution."""
        total = self.selection_counts.sum()
        if total == 0:
            raise MeasurementError("no selections recorded")
        p = self.selection_counts / total
        p = p[p > 0]
        return float(-(p * np.log2(p)).sum())

    def max_entropy(self) -> float:
        """Entropy of a uniform distribution over the same relay set."""
        return float(np.log2(len(self.selection_counts)))


class CircuitSelector:
    """Samples 3-hop circuits under the three strategies.

    ``matrix`` may be a bare :class:`RttMatrix` or a serve-layer
    :class:`MatrixIndex`; either way the relay subset must be fully
    measured (every off-diagonal pair finite) — latency-aware selection
    over holes would silently degrade to the baseline.
    """

    def __init__(
        self,
        relays: list[RelayInfo],
        matrix: RttMatrix | MatrixIndex,
        rng: np.random.Generator,
        candidate_pool: int = 50,
    ) -> None:
        if len(relays) < 3:
            raise ConfigurationError("need at least three relays")
        names = [r.name for r in relays]
        if len(set(names)) != len(names):
            raise ConfigurationError("relay names must be unique")
        for name in names:
            if name not in matrix:
                raise ConfigurationError(f"matrix lacks relay {name!r}")
        if candidate_pool < 1:
            raise ConfigurationError("candidate_pool must be >= 1")
        self.relays = list(relays)
        self.matrix = matrix
        self._rng = rng
        self.candidate_pool = candidate_pool
        self._index = {r.name: i for i, r in enumerate(self.relays)}
        self._bandwidths = np.array([r.bandwidth_kbps for r in relays], dtype=float)
        # Bandwidth-weighted probabilities, normalized once — not per draw.
        self._p = self._bandwidths / self._bandwidths.sum()
        # Snapshot the relay-subset RTTs into a contiguous submatrix so
        # circuit scoring is integer indexing, not name lookups.
        if isinstance(matrix, MatrixIndex):
            ids = [matrix.index_of(name) for name in names]
            rows = np.stack([np.asarray(matrix.row(name)) for name in names])
            self._rtt = np.ascontiguousarray(rows[:, ids], dtype=np.float64)
        else:
            lookup = {node: i for i, node in enumerate(matrix.nodes)}
            ids = [lookup[name] for name in names]
            full = np.asarray(matrix.matrix, dtype=np.float64)
            self._rtt = np.ascontiguousarray(full[np.ix_(ids, ids)])
        off_diagonal = self._rtt[~np.eye(len(names), dtype=bool)]
        if np.any(np.isnan(off_diagonal)):
            raise MeasurementError("need a complete all-pairs matrix")
        self._dist: np.ndarray | None = None  # lazy geographic submatrix

    # ------------------------------------------------------------------

    def circuit_rtt_ms(self, circuit: tuple[int, int, int]) -> float:
        """Inter-relay RTT of a (guard, middle, exit) index triple."""
        a, b, c = circuit
        rtt = self._rtt
        return float(rtt[a, b] + rtt[b, c])

    def _distances_km(self) -> np.ndarray:
        """The pairwise great-circle submatrix, built on first use."""
        if self._dist is None:
            n = len(self.relays)
            dist = np.zeros((n, n))
            for i in range(n):
                for j in range(i + 1, n):
                    km = great_circle_km(
                        self.relays[i].location, self.relays[j].location
                    )
                    dist[i, j] = dist[j, i] = km
            self._dist = dist
        return self._dist

    def _circuit_distance_km(self, circuit: tuple[int, int, int]) -> float:
        a, b, c = circuit
        dist = self._distances_km()
        return float(dist[a, b] + dist[b, c])

    def _random_circuits(self, count: int, weighted: bool) -> np.ndarray:
        """``count`` circuits as a (count, 3) int array, one vectorized
        ``rng.choice`` per rejection round (rows with repeated relays
        are redrawn jointly)."""
        n = len(self.relays)
        p = self._p if weighted else None
        out = np.empty((count, 3), dtype=np.int64)
        filled = 0
        while filled < count:
            batch = max(count - filled, 16)
            draw = self._rng.choice(n, size=(batch, 3), p=p)
            distinct = (
                (draw[:, 0] != draw[:, 1])
                & (draw[:, 0] != draw[:, 2])
                & (draw[:, 1] != draw[:, 2])
            )
            good = draw[distinct]
            take = min(count - filled, good.shape[0])
            out[filled : filled + take] = good[:take]
            filled += take
        return out

    def _random_circuit(self, weighted: bool) -> tuple[int, int, int]:
        a, b, c = self._random_circuits(1, weighted)[0]
        return (int(a), int(b), int(c))

    def select(self, strategy: str) -> tuple[int, int, int]:
        """Sample one circuit under ``strategy``."""
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if strategy == "default":
            return self._random_circuit(weighted=True)
        # Informed strategies: draw a candidate pool of bandwidth-weighted
        # circuits, then pick the best by the strategy's metric — this is
        # the "sample then optimize" pattern LASTor-style selectors use
        # to keep some randomness.
        candidates = self._random_circuits(self.candidate_pool, weighted=True)
        metric = self._distances_km() if strategy == "geographic" else self._rtt
        scores = (
            metric[candidates[:, 0], candidates[:, 1]]
            + metric[candidates[:, 1], candidates[:, 2]]
        )
        # Pick uniformly among the best quartile to preserve entropy.
        order = np.argsort(scores, kind="stable")
        top = order[: max(1, order.size // 4)]
        a, b, c = candidates[int(self._rng.choice(top))]
        return (int(a), int(b), int(c))

    # ------------------------------------------------------------------

    def evaluate(self, strategy: str, n_circuits: int = 1000) -> SelectionOutcome:
        """Sample ``n_circuits`` circuits and summarize latency/entropy."""
        if n_circuits < 1:
            raise ConfigurationError("n_circuits must be >= 1")
        if strategy == "default":
            # The baseline needs no scoring pass: one batched draw.
            circuits = self._random_circuits(n_circuits, weighted=True)
        else:
            circuits = np.array(
                [self.select(strategy) for _ in range(n_circuits)],
                dtype=np.int64,
            )
        rtt = self._rtt
        rtts = (
            rtt[circuits[:, 0], circuits[:, 1]]
            + rtt[circuits[:, 1], circuits[:, 2]]
        )
        counts = np.zeros(len(self.relays))
        np.add.at(counts, circuits.ravel(), 1)
        return SelectionOutcome(
            strategy=strategy, circuit_rtts_ms=rtts, selection_counts=counts
        )

    def evaluate_all(self, n_circuits: int = 1000) -> dict[str, SelectionOutcome]:
        """All three strategies over independent draws."""
        return {
            strategy: self.evaluate(strategy, n_circuits)
            for strategy in STRATEGIES
        }
