"""Latency-aware circuit selection: exploiting Ting's data (Section 5.2).

The paper motivates Ting with path-selection proposals (LASTor et al.)
that lacked real inter-relay RTTs and fell back to geographic distance.
This module implements three selection strategies over one relay set so
their end-to-end latency and anonymity cost can be compared:

* ``default`` — Tor's bandwidth-weighted random choice (the baseline).
* ``geographic`` — LASTor-style: prefer circuits with small total
  great-circle distance (a *proxy* that cannot see TIVs).
* ``ting`` — prefer circuits with small measured total RTT from an
  all-pairs Ting matrix, sampling among the best candidates to retain
  entropy.

Anonymity cost is quantified by the entropy of the realized relay-
selection distribution (Gini-style concentration): a selector that
always picks the same fast relays is easier to attack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import RttMatrix
from repro.netsim.geo import GeoPoint, great_circle_km
from repro.util.errors import ConfigurationError, MeasurementError

STRATEGIES = ("default", "geographic", "ting")


@dataclass(frozen=True)
class RelayInfo:
    """What the selector knows about one relay."""

    name: str
    bandwidth_kbps: int
    location: GeoPoint


@dataclass
class SelectionOutcome:
    """The result of sampling many circuits under one strategy."""

    strategy: str
    circuit_rtts_ms: np.ndarray
    selection_counts: np.ndarray  # per relay

    def median_rtt_ms(self) -> float:
        """Median end-to-end RTT over the sampled circuits."""
        return float(np.median(self.circuit_rtts_ms))

    def selection_entropy(self) -> float:
        """Shannon entropy (bits) of the realized relay distribution."""
        total = self.selection_counts.sum()
        if total == 0:
            raise MeasurementError("no selections recorded")
        p = self.selection_counts / total
        p = p[p > 0]
        return float(-(p * np.log2(p)).sum())

    def max_entropy(self) -> float:
        """Entropy of a uniform distribution over the same relay set."""
        return float(np.log2(len(self.selection_counts)))


class CircuitSelector:
    """Samples 3-hop circuits under the three strategies."""

    def __init__(
        self,
        relays: list[RelayInfo],
        matrix: RttMatrix,
        rng: np.random.Generator,
        candidate_pool: int = 50,
    ) -> None:
        if len(relays) < 3:
            raise ConfigurationError("need at least three relays")
        names = [r.name for r in relays]
        if len(set(names)) != len(names):
            raise ConfigurationError("relay names must be unique")
        for name in names:
            if name not in matrix:
                raise ConfigurationError(f"matrix lacks relay {name!r}")
        if not matrix.is_complete:
            raise MeasurementError("need a complete all-pairs matrix")
        if candidate_pool < 1:
            raise ConfigurationError("candidate_pool must be >= 1")
        self.relays = list(relays)
        self.matrix = matrix
        self._rng = rng
        self.candidate_pool = candidate_pool
        self._index = {r.name: i for i, r in enumerate(self.relays)}
        self._bandwidths = np.array([r.bandwidth_kbps for r in relays], dtype=float)

    # ------------------------------------------------------------------

    def circuit_rtt_ms(self, circuit: tuple[int, int, int]) -> float:
        """Inter-relay RTT of a (guard, middle, exit) index triple."""
        a, b, c = circuit
        return self.matrix.get(
            self.relays[a].name, self.relays[b].name
        ) + self.matrix.get(self.relays[b].name, self.relays[c].name)

    def _circuit_distance_km(self, circuit: tuple[int, int, int]) -> float:
        a, b, c = circuit
        return great_circle_km(
            self.relays[a].location, self.relays[b].location
        ) + great_circle_km(self.relays[b].location, self.relays[c].location)

    def _random_circuit(self, weighted: bool) -> tuple[int, int, int]:
        n = len(self.relays)
        if weighted:
            p = self._bandwidths / self._bandwidths.sum()
            picks: list[int] = []
            while len(picks) < 3:
                candidate = int(self._rng.choice(n, p=p))
                if candidate not in picks:
                    picks.append(candidate)
            return tuple(picks)  # type: ignore[return-value]
        picks_arr = self._rng.choice(n, size=3, replace=False)
        return (int(picks_arr[0]), int(picks_arr[1]), int(picks_arr[2]))

    def select(self, strategy: str) -> tuple[int, int, int]:
        """Sample one circuit under ``strategy``."""
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if strategy == "default":
            return self._random_circuit(weighted=True)
        # Informed strategies: draw a candidate pool of bandwidth-weighted
        # circuits, then pick the best by the strategy's metric — this is
        # the "sample then optimize" pattern LASTor-style selectors use
        # to keep some randomness.
        candidates = [
            self._random_circuit(weighted=True) for _ in range(self.candidate_pool)
        ]
        if strategy == "geographic":
            scores = [self._circuit_distance_km(c) for c in candidates]
        else:
            scores = [self.circuit_rtt_ms(c) for c in candidates]
        # Pick uniformly among the best quartile to preserve entropy.
        order = np.argsort(scores)
        top = order[: max(1, len(order) // 4)]
        return candidates[int(self._rng.choice(top))]

    # ------------------------------------------------------------------

    def evaluate(self, strategy: str, n_circuits: int = 1000) -> SelectionOutcome:
        """Sample ``n_circuits`` circuits and summarize latency/entropy."""
        if n_circuits < 1:
            raise ConfigurationError("n_circuits must be >= 1")
        rtts = np.empty(n_circuits)
        counts = np.zeros(len(self.relays))
        for i in range(n_circuits):
            circuit = self.select(strategy)
            rtts[i] = self.circuit_rtt_ms(circuit)
            for hop in circuit:
                counts[hop] += 1
        return SelectionOutcome(
            strategy=strategy, circuit_rtts_ms=rtts, selection_counts=counts
        )

    def evaluate_all(self, n_circuits: int = 1000) -> dict[str, SelectionOutcome]:
        """All three strategies over independent draws."""
        return {
            strategy: self.evaluate(strategy, n_circuits)
            for strategy in STRATEGIES
        }
