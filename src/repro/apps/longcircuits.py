"""Longer circuits without higher latency (Section 5.2.2).

Given an all-pairs RTT matrix over n relays, sample random simple
circuits of each length ℓ in 3..10, compute each circuit's RTT (the sum
of its ℓ−1 inter-relay hop RTTs), and scale sampled bin counts up to the
C(n, ℓ) ways of choosing the relay set — reproducing Figure 16's
"there are orders of magnitude more 4..10-hop circuits at a given RTT
than 3-hop ones".

Figure 17's diversity metric is also here: for each RTT bin, the median
over nodes of the probability that a node appears on a circuit in that
bin — low values mean low-latency long circuits rely on few
well-connected relays.
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.core.dataset import RttMatrix
from repro.util.errors import ConfigurationError, MeasurementError


def _as_matrix(matrix: RttMatrix | np.ndarray) -> np.ndarray:
    if isinstance(matrix, RttMatrix):
        if not matrix.is_complete:
            raise MeasurementError("circuit analysis needs a complete matrix")
        # Read-only view, not a copy: circuit sampling never writes back.
        return matrix.matrix
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ConfigurationError("need a square RTT matrix")
    return arr


def sample_circuit_rtts(
    matrix: RttMatrix | np.ndarray,
    length: int,
    n_samples: int,
    rng: np.random.Generator,
    return_paths: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """RTTs of ``n_samples`` random simple circuits of ``length`` relays.

    A circuit's RTT is the sum of RTTs along its consecutive relay hops.
    With ``return_paths`` the sampled relay-index paths come back too
    (needed for the diversity analysis).
    """
    rtt = _as_matrix(matrix)
    n = rtt.shape[0]
    if length < 2:
        raise ConfigurationError("circuits need at least 2 relays")
    if length > n:
        raise ConfigurationError(f"cannot build {length}-relay circuits from {n} nodes")
    if n_samples < 1:
        raise ConfigurationError("n_samples must be >= 1")

    # Vectorized sampling of simple paths: one permutation slice per row.
    paths = np.empty((n_samples, length), dtype=int)
    for row in range(n_samples):
        paths[row] = rng.choice(n, size=length, replace=False)
    hops = rtt[paths[:, :-1], paths[:, 1:]]
    rtts = hops.sum(axis=1)
    if return_paths:
        return rtts, paths
    return rtts


def circuit_count_histogram(
    matrix: RttMatrix | np.ndarray,
    lengths: tuple[int, ...] = tuple(range(3, 11)),
    n_samples: int = 10_000,
    bin_ms: float = 50.0,
    max_rtt_ms: float = 2500.0,
    rng: np.random.Generator | None = None,
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Figure 16: estimated number of circuits per RTT bin, per length.

    Sampled bin frequencies are scaled by C(n, ℓ) — the number of ways
    to choose the relay set — matching the paper's scaling.
    """
    rtt = _as_matrix(matrix)
    n = rtt.shape[0]
    rng = rng if rng is not None else np.random.default_rng(0)
    edges = np.arange(0.0, max_rtt_ms + bin_ms, bin_ms)
    centers = (edges[:-1] + edges[1:]) / 2.0
    result: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for length in lengths:
        rtts = sample_circuit_rtts(rtt, length, n_samples, rng)
        counts, _ = np.histogram(rtts, bins=edges)
        scale = comb(n, length) / n_samples
        result[length] = (centers, counts * scale)
    return result


def node_presence_by_rtt(
    matrix: RttMatrix | np.ndarray,
    length: int,
    n_samples: int = 10_000,
    bin_ms: float = 50.0,
    max_rtt_ms: float = 2500.0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Figure 17: per RTT bin, the median over nodes of P(node on circuit).

    For bins with no sampled circuits the probability is reported as 0.
    """
    rtt = _as_matrix(matrix)
    n = rtt.shape[0]
    rng = rng if rng is not None else np.random.default_rng(0)
    rtts, paths = sample_circuit_rtts(rtt, length, n_samples, rng, return_paths=True)
    edges = np.arange(0.0, max_rtt_ms + bin_ms, bin_ms)
    centers = (edges[:-1] + edges[1:]) / 2.0
    bins = np.clip(np.digitize(rtts, edges) - 1, 0, centers.size - 1)

    median_presence = np.zeros(centers.size)
    for b in range(centers.size):
        rows = np.nonzero(bins == b)[0]
        if rows.size == 0:
            continue
        appearance = np.zeros(n)
        counts = np.bincount(paths[rows].ravel(), minlength=n)
        appearance = counts / rows.size  # P(node on a circuit | bin)
        median_presence[b] = float(np.median(appearance))
    return centers, median_presence


def circuits_within_band(
    matrix: RttMatrix | np.ndarray,
    rtt_low_ms: float,
    rtt_high_ms: float,
    lengths: tuple[int, ...] = tuple(range(3, 11)),
    n_samples: int = 10_000,
    rng: np.random.Generator | None = None,
) -> dict[int, float]:
    """Estimated circuit count per length inside an RTT band.

    Reproduces the paper's 200–300 ms observation: an order of magnitude
    more 4-hop than 3-hop circuits at the same RTT budget.
    """
    if rtt_high_ms <= rtt_low_ms:
        raise ConfigurationError("band must satisfy low < high")
    rtt = _as_matrix(matrix)
    n = rtt.shape[0]
    rng = rng if rng is not None else np.random.default_rng(0)
    out: dict[int, float] = {}
    for length in lengths:
        rtts = sample_circuit_rtts(rtt, length, n_samples, rng)
        fraction = float(np.mean((rtts >= rtt_low_ms) & (rtts < rtt_high_ms)))
        out[length] = fraction * comb(n, length)
    return out
