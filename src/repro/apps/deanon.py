"""Deanonymization speedup from all-pairs RTT knowledge (Section 5.1).

Threat model: the attacker *is the destination*. It knows the exit relay
``x``, its own RTT ``r`` to the exit, and the end-to-end RTT ``Re2e`` of
the victim circuit. It can brute-force probe one relay at a time
(Murdoch–Danezis style) to test whether that relay is on the circuit,
and wants to identify the entry and middle with as few probes as
possible.

Three strategies, as evaluated in Figure 12:

* ``unaware`` — probe relays in random order until both circuit members
  are found (median: ~72% of the network probed).
* ``ignore`` — maintain entry/middle candidate sets and discard any
  relay whose *best-case* circuit RTT already exceeds ``Re2e``; sharpen
  the sets after each positive probe (median: ~62%).
* ``informed`` — Algorithm 1: additionally rank remaining candidates by
  how closely their best completing circuit, plus the population-mean
  RTT μ standing in for the unknown source-entry leg, matches ``Re2e``;
  probe the best-scoring relay next (median: ~48%, a 1.5x speedup).

The weighted variants (footnote 5) model bandwidth-weighted relay
selection: circuits are sampled by weight, the baseline probes relays in
decreasing-weight order, and Algorithm 1 divides scores by weight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import RttMatrix
from repro.util.errors import ConfigurationError, MeasurementError

#: The strategies Figure 12 compares.
STRATEGIES = ("unaware", "ignore", "informed")


@dataclass(frozen=True)
class Scenario:
    """One victim circuit as the attacker sees it."""

    source: int
    entry: int
    middle: int
    exit: int
    attacker_rtt_ms: float  # r: destination <-> exit
    end_to_end_rtt_ms: float  # Re2e: source -> ... -> destination


@dataclass
class RunResult:
    """Outcome of one deanonymization run."""

    strategy: str
    probes_used: int
    testable_nodes: int
    found_entry: bool
    found_middle: bool
    ruled_out_implicitly: int

    @property
    def fraction_tested(self) -> float:
        """Probes used as a fraction of the testable network."""
        return self.probes_used / self.testable_nodes

    @property
    def fraction_ruled_out(self) -> float:
        """Relays excluded without probing, as a network fraction."""
        return self.ruled_out_implicitly / self.testable_nodes


class DeanonymizationSimulator:
    """Replays the three probing strategies over an RTT matrix."""

    def __init__(
        self,
        matrix: RttMatrix | np.ndarray,
        rng: np.random.Generator,
        weights: np.ndarray | None = None,
    ) -> None:
        if isinstance(matrix, RttMatrix):
            if not matrix.is_complete:
                raise MeasurementError("deanonymization needs a complete matrix")
            # Read-only view: the simulator only indexes into the matrix.
            self._rtt = matrix.matrix
        else:
            self._rtt = np.asarray(matrix, dtype=float)
        n = self._rtt.shape[0]
        if self._rtt.shape != (n, n) or n < 4:
            raise ConfigurationError("need a square matrix over at least 4 nodes")
        if not np.allclose(self._rtt, self._rtt.T):
            raise ConfigurationError("RTT matrix must be symmetric")
        self.n = n
        self._rng = rng
        self.mu = float(self._rtt[np.triu_indices(n, k=1)].mean())
        if weights is not None:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (n,) or np.any(weights <= 0):
                raise ConfigurationError("weights must be positive, one per node")
            self.weights = weights / weights.sum()
        else:
            self.weights = None

    # ------------------------------------------------------------------
    # Scenario generation

    def sample_scenario(self) -> Scenario:
        """Draw a victim circuit: source uniform; relays uniform or
        bandwidth-weighted; destination (attacker) a random other node."""
        source = int(self._rng.integers(0, self.n))
        entry, middle, exit_node = self._sample_circuit_nodes(exclude={source})
        destination = self._sample_uniform(exclude={source, entry, middle, exit_node})
        r = float(self._rtt[exit_node, destination])
        re2e = float(
            self._rtt[source, entry]
            + self._rtt[entry, middle]
            + self._rtt[middle, exit_node]
            + r
        )
        return Scenario(
            source=source,
            entry=entry,
            middle=middle,
            exit=exit_node,
            attacker_rtt_ms=r,
            end_to_end_rtt_ms=re2e,
        )

    def _sample_circuit_nodes(self, exclude: set[int]) -> tuple[int, int, int]:
        chosen: list[int] = []
        taken = set(exclude)
        for _ in range(3):
            node = self._sample_node(taken)
            chosen.append(node)
            taken.add(node)
        return chosen[0], chosen[1], chosen[2]

    def _sample_node(self, taken: set[int]) -> int:
        if self.weights is None:
            return self._sample_uniform(taken)
        available = np.array([i for i in range(self.n) if i not in taken])
        p = self.weights[available]
        p = p / p.sum()
        return int(available[self._rng.choice(available.size, p=p)])

    def _sample_uniform(self, exclude: set[int]) -> int:
        while True:
            node = int(self._rng.integers(0, self.n))
            if node not in exclude:
                return node

    # ------------------------------------------------------------------
    # Strategy execution

    def run(self, strategy: str, scenario: Scenario) -> RunResult:
        """Execute one strategy against one scenario."""
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        testable = np.array(
            [i for i in range(self.n) if i != scenario.exit], dtype=int
        )
        if strategy == "unaware":
            return self._run_unaware(scenario, testable)
        return self._run_rtt_aware(
            scenario, testable, informed=(strategy == "informed")
        )

    def _run_unaware(self, scenario: Scenario, testable: np.ndarray) -> RunResult:
        """Probe in random order (or by descending weight) until both
        circuit members are found."""
        if self.weights is None:
            order = self._rng.permutation(testable)
        else:
            order = testable[np.argsort(-self.weights[testable], kind="stable")]
        probes = 0
        found = 0
        for node in order:
            probes += 1
            if node in (scenario.entry, scenario.middle):
                found += 1
                if found == 2:
                    break
        return RunResult(
            strategy="unaware",
            probes_used=probes,
            testable_nodes=testable.size,
            found_entry=True,
            found_middle=True,
            ruled_out_implicitly=0,
        )

    def _run_rtt_aware(
        self, scenario: Scenario, testable: np.ndarray, informed: bool
    ) -> RunResult:
        """Shared engine for ``ignore`` and ``informed``.

        A probe reveals only *membership*; the attacker infers positions
        from the paper's four too-large-RTT rules. State is the pair of
        candidate sets plus at most one confirmed member of
        (possibly still) ambiguous role.
        """
        rtt = self._rtt
        x = scenario.exit
        r = scenario.attacker_rtt_ms
        budget = scenario.end_to_end_rtt_ms

        mask = np.ones(self.n, dtype=bool)
        mask[x] = False
        # pair_cost[e, m] = R(e, m) + R(m, x); exclude self-pairs and x.
        pair_cost = rtt + rtt[:, x][None, :]
        np.fill_diagonal(pair_cost, np.inf)
        pair_cost[x, :] = np.inf
        pair_cost[:, x] = np.inf
        feasible = pair_cost + r <= budget
        # m is a possible middle iff some entry completes a circuit
        # within budget; e is a possible entry iff some middle does.
        can_be_middle = feasible.any(axis=0) & mask
        can_be_entry = feasible.any(axis=1) & mask
        ruled_out = int(mask.sum() - (can_be_middle | can_be_entry).sum())

        # known = (node, role) with role in "entry"/"middle"/"ambiguous".
        known: tuple[int, str] | None = None
        members_found = 0
        probed: set[int] = set()
        probes = 0

        while members_found < 2:
            pool = np.array(
                [
                    i
                    for i in np.nonzero(can_be_entry | can_be_middle)[0]
                    if i not in probed
                ],
                dtype=int,
            )
            if pool.size == 0:
                break  # conservative pruning ran dry; fail safely
            target = self._choose_target(
                pool, scenario, can_be_entry, can_be_middle, known, informed
            )
            probed.add(int(target))
            probes += 1
            if target not in (scenario.entry, scenario.middle):
                continue
            members_found += 1
            if members_found == 2:
                break
            c = int(target)
            # Apply the positional rules to the first confirmed member.
            c_entry_possible = bool(can_be_entry[c])
            c_middle_possible = bool(can_be_middle[c])
            if c_entry_possible and not c_middle_possible:
                role = "entry"
            elif c_middle_possible and not c_entry_possible:
                role = "middle"
            else:
                role = "ambiguous"
            known = (c, role)
            # Shrink the candidate sets to circuits that include c.
            middles_with_c_entry = (rtt[c, :] + rtt[:, x] + r <= budget) & mask
            middles_with_c_entry[c] = False
            entries_with_c_middle = (rtt[:, c] + rtt[c, x] + r <= budget) & mask
            entries_with_c_middle[c] = False
            if role == "entry":
                can_be_middle = middles_with_c_entry
                can_be_entry = np.zeros(self.n, dtype=bool)
            elif role == "middle":
                can_be_entry = entries_with_c_middle
                can_be_middle = np.zeros(self.n, dtype=bool)
            else:
                can_be_middle = middles_with_c_entry
                can_be_entry = entries_with_c_middle

        return RunResult(
            strategy="informed" if informed else "ignore",
            probes_used=probes,
            testable_nodes=testable.size,
            found_entry=members_found == 2,
            found_middle=members_found == 2,
            ruled_out_implicitly=ruled_out,
        )

    def _choose_target(
        self,
        pool: np.ndarray,
        scenario: Scenario,
        can_be_entry: np.ndarray,
        can_be_middle: np.ndarray,
        known: tuple[int, str] | None,
        informed: bool,
    ) -> int:
        if not informed:
            return int(pool[self._rng.integers(0, pool.size)])
        scores = self._scores(pool, scenario, can_be_entry, can_be_middle, known)
        if self.weights is not None:
            scores = scores / self.weights[pool]
        return int(pool[int(np.argmin(scores))])

    def _scores(
        self,
        pool: np.ndarray,
        scenario: Scenario,
        can_be_entry: np.ndarray,
        can_be_middle: np.ndarray,
        known: tuple[int, str] | None,
    ) -> np.ndarray:
        """Algorithm 1's score: for candidate i, the closest match
        |Re2e − (R(circuit) + r + μ)| over circuits involving i that are
        consistent with what has been learned so far."""
        rtt = self._rtt
        x = scenario.exit
        target = scenario.end_to_end_rtt_ms - scenario.attacker_rtt_ms - self.mu
        scores = np.full(pool.size, np.inf)

        if known is not None:
            c, role = known
            for k, i in enumerate(pool):
                best = np.inf
                if role in ("entry", "ambiguous") and can_be_middle[i]:
                    best = min(best, abs(rtt[c, i] + rtt[i, x] - target))
                if role in ("middle", "ambiguous") and can_be_entry[i]:
                    best = min(best, abs(rtt[i, c] + rtt[c, x] - target))
                scores[k] = best
            return scores

        entries = np.nonzero(can_be_entry)[0]
        middles = np.nonzero(can_be_middle)[0]
        for k, i in enumerate(pool):
            best = np.inf
            if can_be_middle[i] and entries.size:
                costs = rtt[entries, i] + rtt[i, x]
                valid = entries != i
                if valid.any():
                    best = min(best, np.abs(costs[valid] - target).min())
            if can_be_entry[i] and middles.size:
                costs = rtt[i, middles] + rtt[middles, x]
                valid = middles != i
                if valid.any():
                    best = min(best, np.abs(costs[valid] - target).min())
            scores[k] = best
        return scores

    # ------------------------------------------------------------------

    def evaluate(
        self, strategy: str, runs: int = 1000
    ) -> list[RunResult]:
        """Run ``runs`` independent scenarios under one strategy."""
        results = []
        for _ in range(runs):
            scenario = self.sample_scenario()
            results.append(self.run(strategy, scenario))
        return results

    def evaluate_all(
        self, runs: int = 1000
    ) -> dict[str, list[RunResult]]:
        """Run all three strategies over a *shared* scenario sequence so
        the comparison is paired, as in the paper's simulator."""
        scenarios = [self.sample_scenario() for _ in range(runs)]
        return {
            strategy: [self.run(strategy, s) for s in scenarios]
            for strategy in STRATEGIES
        }
