"""Vivaldi network coordinates: the estimation baseline Ting beats.

The paper's related work (Section 2) contrasts Ting with coordinate/
landmark systems (Vivaldi [6], GNP [18], Octant [33]): they cover
*every* pair from few measurements, but metric-space embeddings cannot
represent triangle-inequality violations, so their per-pair error is
fundamentally bounded away from zero on real networks — exactly the
paths Section 5.2.1 shows matter for Tor.

This module implements the full Vivaldi algorithm (Dabek et al.,
SIGCOMM'04) with height vectors and the adaptive timestep, so the
comparison bench can quantify that trade-off: feed Vivaldi a sample of
Ting-measured RTTs, let it converge, and compare its all-pairs
predictions against direct measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import RttMatrix
from repro.util.errors import ConfigurationError, MeasurementError


@dataclass
class VivaldiCoordinate:
    """A Euclidean position plus Vivaldi's non-negative height.

    The height term models the access-link delay every path in and out
    of a host must pay (DSL tails, etc.); distance between two
    coordinates is the Euclidean part plus both heights.
    """

    position: np.ndarray
    height: float = 0.0

    def distance_to(self, other: "VivaldiCoordinate") -> float:
        """Predicted RTT to another coordinate (Euclidean + heights)."""
        euclidean = float(np.linalg.norm(self.position - other.position))
        return euclidean + self.height + other.height


class VivaldiSystem:
    """A centralized Vivaldi simulation over a node set.

    Nodes start at the origin with random unit-vector kicks for symmetry
    breaking, and update pairwise with the adaptive timestep
    ``delta = c_c * (e_i / (e_i + e_j))`` weighted by relative error, as
    in the original paper.
    """

    def __init__(
        self,
        nodes: list[str],
        rng: np.random.Generator,
        dimensions: int = 3,
        c_error: float = 0.25,
        c_correction: float = 0.25,
        initial_error: float = 1.0,
    ) -> None:
        if len(nodes) != len(set(nodes)):
            raise ConfigurationError("node names must be unique")
        if len(nodes) < 2:
            raise ConfigurationError("need at least two nodes")
        if dimensions < 1:
            raise ConfigurationError("dimensions must be >= 1")
        if not 0 < c_error <= 1 or not 0 < c_correction <= 1:
            raise ConfigurationError("Vivaldi constants must be in (0, 1]")
        self.nodes = list(nodes)
        self._rng = rng
        self.dimensions = dimensions
        self.c_error = c_error
        self.c_correction = c_correction
        self.coordinates: dict[str, VivaldiCoordinate] = {
            node: VivaldiCoordinate(position=np.zeros(dimensions), height=0.0)
            for node in nodes
        }
        self.errors: dict[str, float] = {node: initial_error for node in nodes}
        self.updates_applied = 0

    # ------------------------------------------------------------------

    def observe(self, a: str, b: str, rtt_ms: float) -> None:
        """Apply one RTT observation, moving ``a`` relative to ``b``.

        (Vivaldi is symmetric in practice because observations flow both
        ways; callers wanting both-sided updates call observe twice.)
        """
        if rtt_ms < 0:
            raise MeasurementError("RTT observations must be non-negative")
        if a not in self.coordinates or b not in self.coordinates:
            raise MeasurementError(f"unknown node in observation ({a}, {b})")
        if a == b:
            raise MeasurementError("self-observations are meaningless")
        coord_a = self.coordinates[a]
        coord_b = self.coordinates[b]
        predicted = coord_a.distance_to(coord_b)

        # Relative error of this sample and confidence weighting.
        sample_error = abs(predicted - rtt_ms) / max(rtt_ms, 1e-6)
        weight = self.errors[a] / max(self.errors[a] + self.errors[b], 1e-9)

        # Exponentially-weighted node error update.
        self.errors[a] = (
            sample_error * self.c_error * weight
            + self.errors[a] * (1.0 - self.c_error * weight)
        )

        # Move along the error gradient.
        delta = self.c_correction * weight
        direction = coord_a.position - coord_b.position
        norm = float(np.linalg.norm(direction))
        if norm < 1e-9:
            direction = self._rng.normal(size=self.dimensions)
            norm = float(np.linalg.norm(direction))
        unit = direction / norm
        magnitude = predicted - rtt_ms  # positive: too far apart in space

        coord_a.position = coord_a.position - delta * magnitude * unit
        # Heights absorb the share of error a Euclidean move cannot:
        # shrink height when overpredicting, grow when underpredicting.
        coord_a.height = max(
            0.0, coord_a.height - delta * magnitude * 0.5
        )
        self.updates_applied += 1

    def train(
        self,
        samples: list[tuple[str, str, float]],
        rounds: int = 50,
    ) -> None:
        """Run ``rounds`` passes over the observation set (both-sided)."""
        if not samples:
            raise MeasurementError("cannot train on zero observations")
        order = np.arange(len(samples))
        for _ in range(rounds):
            self._rng.shuffle(order)
            for index in order:
                a, b, rtt = samples[index]
                self.observe(a, b, rtt)
                self.observe(b, a, rtt)

    # ------------------------------------------------------------------

    def predict(self, a: str, b: str) -> float:
        """Predicted RTT between two nodes from their coordinates."""
        if a == b:
            return 0.0
        return self.coordinates[a].distance_to(self.coordinates[b])

    def predict_matrix(self) -> RttMatrix:
        """All-pairs predictions as an :class:`RttMatrix`."""
        matrix = RttMatrix(self.nodes)
        for i, a in enumerate(self.nodes):
            for b in self.nodes[i + 1 :]:
                matrix.set(a, b, self.predict(a, b))
        return matrix

    def mean_error(self) -> float:
        """Average per-node confidence error (diagnostic)."""
        return float(np.mean(list(self.errors.values())))


def relative_errors(
    predictions: RttMatrix | np.ndarray,
    truth: RttMatrix | np.ndarray,
) -> np.ndarray:
    """Per-pair |predicted - true| / true for two aligned matrices."""
    pred = predictions.matrix if isinstance(predictions, RttMatrix) else np.asarray(predictions)
    true = truth.matrix if isinstance(truth, RttMatrix) else np.asarray(truth)
    if pred.shape != true.shape:
        raise MeasurementError("matrices differ in shape")
    n = pred.shape[0]
    i, j = np.triu_indices(n, k=1)
    true_vals = true[i, j]
    if np.any(true_vals <= 0):
        raise MeasurementError("true RTTs must be positive")
    return np.abs(pred[i, j] - true_vals) / true_vals


def embedding_tiv_floor(truth: RttMatrix | np.ndarray) -> float:
    """A lower bound on any metric embedding's worst relative error.

    For each violated triangle R(a,b) > R(a,c) + R(c,b), any metric
    space must compress R(a,b) to at most the detour sum; the needed
    shrink is error no embedding can avoid. Returns the largest such
    mandatory relative error over all triangles.
    """
    true = truth.matrix if isinstance(truth, RttMatrix) else np.asarray(truth)
    n = true.shape[0]
    worst = 0.0
    for a in range(n):
        for b in range(a + 1, n):
            direct = true[a, b]
            if direct <= 0:
                continue
            detours = true[a, :] + true[:, b]
            detours[a] = np.inf
            detours[b] = np.inf
            best = float(detours.min())
            if best < direct:
                worst = max(worst, (direct - best) / direct / 2.0)
    return worst
