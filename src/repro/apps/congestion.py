"""The Murdoch–Danezis congestion probe — the primitive Section 5.1 assumes.

The paper's deanonymization study takes as given "a technique such as
that described by Murdoch and Danezis to brute-force probe whether a
given Tor node is on a circuit". This module *implements* that probe on
the simulated overlay, closing the loop:

1. A victim runs steady application traffic through its circuit,
   yielding an RTT time series (observable to an attacker who owns the
   destination).
2. The attacker builds several clog circuits through a candidate relay
   ``t`` (as (a1, t, a2) using its own helper relays) and blasts cells
   for a window.
3. If ``t`` is on the victim's circuit, the victim's cells queue behind
   the clog traffic at ``t`` (the relay's :class:`ServiceQueue`), so the
   victim RTT series rises during the window; off-path relays leave it
   untouched.

:class:`CongestionProbe` packages steps 2–3 plus the detection
statistic, and :meth:`CongestionProbe.identify_on_path` is exactly the
brute-force primitive whose *cost in probes* the paper's Figure 12
strategies minimize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.measurement_host import MeasurementHost
from repro.echo.client import EchoClient
from repro.tor.client import Circuit, TorStream
from repro.tor.directory import RelayDescriptor
from repro.util.errors import CircuitError, MeasurementError, StreamError
from repro.util.units import Milliseconds


@dataclass
class VictimTraffic:
    """A victim's steady traffic and its observable RTT series."""

    stream: TorStream
    client: EchoClient
    interval_ms: Milliseconds = 50.0
    times_ms: list[Milliseconds] = field(default_factory=list)
    rtts_ms: list[Milliseconds] = field(default_factory=list)

    def run_for(self, duration_ms: Milliseconds) -> None:
        """Generate traffic for ``duration_ms``, appending to the series."""
        samples = max(1, int(duration_ms / self.interval_ms))
        sim = self.client.sim
        for _ in range(samples):
            started = sim.now
            result = self.client.probe(
                self.stream, samples=1, interval_ms=self.interval_ms
            )
            self.times_ms.append(started)
            self.rtts_ms.append(result.rtts_ms[0])
            # Pace to the configured interval even if the reply was fast.
            next_slot = started + self.interval_ms
            if sim.now < next_slot:
                sim.run(until=next_slot)

    def series_between(
        self, start_ms: Milliseconds, end_ms: Milliseconds
    ) -> np.ndarray:
        """RTT samples whose send time falls in [start, end)."""
        return np.array(
            [
                rtt
                for t, rtt in zip(self.times_ms, self.rtts_ms)
                if start_ms <= t < end_ms
            ]
        )


@dataclass
class ProbeVerdict:
    """One candidate relay's congestion-probe outcome."""

    fingerprint: str
    baseline_mean_ms: float
    attack_mean_ms: float
    statistic: float  # mean shift in baseline standard deviations
    on_path: bool


class CongestionProbe:
    """Drives clog circuits through candidate relays and reads the shift."""

    def __init__(
        self,
        attacker: MeasurementHost,
        clog_circuits: int = 6,
        burst_interval_ms: Milliseconds = 5.0,
        intensity: float = 2.0,
        max_cells_per_burst: int = 16,
        detection_threshold: float = 3.0,
    ) -> None:
        if clog_circuits < 1:
            raise MeasurementError("need at least one clog circuit")
        if detection_threshold <= 0:
            raise MeasurementError("detection threshold must be positive")
        if intensity <= 0:
            raise MeasurementError("intensity must be positive")
        self.attacker = attacker
        self.clog_circuits = clog_circuits
        self.burst_interval_ms = burst_interval_ms
        #: Target clog rate as a multiple of the candidate's consensus
        #: bandwidth — the attacker sizes its bursts to saturate the
        #: relay (Murdoch–Danezis maximized their clog stream likewise).
        self.intensity = intensity
        #: Upper bound on the attacker's own send rate per circuit; a
        #: relay faster than the attacker can clog is genuinely
        #: unprobeable, which is faithful to the attack's limits.
        self.max_cells_per_burst = max_cells_per_burst
        self.detection_threshold = detection_threshold
        self.probes_executed = 0

    def _cells_per_burst(self, target: RelayDescriptor) -> int:
        """Burst size per clog circuit sized to the target's capacity."""
        capacity_cells_per_ms = target.bandwidth_kbps / 512.0  # KB/s units
        needed_per_burst = (
            self.intensity * capacity_cells_per_ms * self.burst_interval_ms
        )
        per_circuit = int(np.ceil(needed_per_burst / self.clog_circuits))
        return max(1, min(self.max_cells_per_burst, per_circuit))

    # ------------------------------------------------------------------

    def _open_clog_streams(
        self, target: RelayDescriptor
    ) -> list[tuple[Circuit, TorStream]]:
        controller = self.attacker.controller
        a1 = self.attacker.relay_w.fingerprint
        a2 = self.attacker.relay_z.fingerprint
        out: list[tuple[Circuit, TorStream]] = []
        for _ in range(self.clog_circuits):
            try:
                circuit = controller.build_circuit(
                    [a1, target.fingerprint, a2]
                )
                stream = controller.open_stream(
                    circuit, self.attacker.echo_address, self.attacker.echo_port
                )
            except (CircuitError, StreamError) as exc:
                raise MeasurementError(
                    f"could not set up clog circuit through "
                    f"{target.nickname}: {exc}"
                ) from exc
            stream.on_data = lambda _data: None  # discard echoes
            out.append((circuit, stream))
        return out

    def _blast(
        self,
        streams: list[TorStream],
        duration_ms: Milliseconds,
        cells_per_burst: int,
    ) -> None:
        """Send bursts on every clog stream for ``duration_ms``."""
        sim = self.attacker.sim
        payload = b"\xAA" * 128
        bursts = max(1, int(duration_ms / self.burst_interval_ms))

        def send_burst(round_index: int) -> None:
            for stream in streams:
                if stream.state != "open":
                    continue
                for _ in range(cells_per_burst):
                    stream.send(payload)
            if round_index + 1 < bursts:
                sim.schedule(self.burst_interval_ms, send_burst, round_index + 1)

        sim.schedule(0.0, send_burst, 0)

    # ------------------------------------------------------------------

    def probe_relay(
        self,
        target: RelayDescriptor,
        victim: VictimTraffic,
        baseline_ms: Milliseconds = 1_500.0,
        attack_ms: Milliseconds = 1_500.0,
    ) -> ProbeVerdict:
        """Run one on-path test of ``target`` against ``victim``.

        Observes the victim series for ``baseline_ms``, then clogs the
        target while observing for ``attack_ms``, and compares windows.
        """
        sim = self.attacker.sim
        baseline_start = sim.now
        victim.run_for(baseline_ms)
        baseline = victim.series_between(baseline_start, sim.now)
        if baseline.size < 3:
            raise MeasurementError("victim produced too few baseline samples")

        clog = self._open_clog_streams(target)
        self._blast(
            [stream for _, stream in clog], attack_ms, self._cells_per_burst(target)
        )
        attack_start = sim.now
        victim.run_for(attack_ms)
        attacked = victim.series_between(attack_start, sim.now)

        for circuit, stream in clog:
            stream.close()
            self.attacker.controller.close_circuit(circuit)
        sim.run_until_idle()
        self.probes_executed += 1

        spread = float(baseline.std(ddof=0))
        spread = max(spread, 0.25)  # floor against degenerate quiet baselines
        statistic = float((attacked.mean() - baseline.mean()) / spread)
        return ProbeVerdict(
            fingerprint=target.fingerprint,
            baseline_mean_ms=float(baseline.mean()),
            attack_mean_ms=float(attacked.mean()),
            statistic=statistic,
            on_path=statistic >= self.detection_threshold,
        )

    def identify_on_path(
        self,
        candidates: list[RelayDescriptor],
        victim: VictimTraffic,
        baseline_ms: Milliseconds = 1_500.0,
        attack_ms: Milliseconds = 1_500.0,
    ) -> list[ProbeVerdict]:
        """Probe every candidate in turn — the brute-force primitive."""
        if not candidates:
            raise MeasurementError("no candidate relays to probe")
        return [
            self.probe_relay(target, victim, baseline_ms, attack_ms)
            for target in candidates
        ]
