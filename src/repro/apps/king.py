"""King (Gummadi et al., IMW'02): the technique Ting modernizes.

King estimates R(A, B) without touching A or B:

1. Find the authoritative name server ``NS_A`` near A that answers
   recursive queries, and the authoritative server ``NS_B`` for B's
   zone.
2. Measure ``R(client, NS_A)`` with iterative queries.
3. Send NS_A a recursive query for a (random, uncacheable) name in B's
   zone; it must ask NS_B, so the reply takes
   ``R(client, NS_A) + R(NS_A, NS_B)``.
4. Estimate ``R(A, B) ≈ step3 − step2``.

Two structural weaknesses, both reproduced here and quantified by the
comparison bench:

* **Proxy error** — King measures *name servers*, which are better
  connected than the (often residential) hosts they stand for, so its
  ratio distribution skews left of 1 (paper Section 4.2).
* **Coverage collapse** — by 2015 only ~3% of authoritative servers
  still answered open recursive queries (paper Section 5.3), so most
  host pairs simply cannot be measured.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.netsim.dns import DnsInfrastructure, NameServer
from repro.netsim.topology import Host
from repro.tor.control import SimFuture
from repro.util.errors import MeasurementError
from repro.util.units import Milliseconds


@dataclass
class KingResult:
    """One King pair estimate and its raw legs."""

    target_a: str
    target_b: str
    rtt_ms: Milliseconds
    leg_to_ns_a_ms: Milliseconds
    recursive_total_ms: Milliseconds
    samples: int


class KingMeasurer:
    """Runs the King procedure from a single client host."""

    def __init__(
        self,
        dns: DnsInfrastructure,
        client: Host,
        samples: int = 10,
    ) -> None:
        if samples < 1:
            raise MeasurementError("samples must be >= 1")
        self.dns = dns
        self.client = client
        self.samples = samples
        self._labels = itertools.count()

    # ------------------------------------------------------------------

    def can_measure(self, a: Host, b: Host) -> bool:
        """Whether King applies to this pair: NS_A must offer recursion.

        (King also works with the roles swapped; callers wanting maximal
        coverage check both orientations.)
        """
        try:
            ns_a = self.dns.server_for(a)
            self.dns.server_for(b)
        except MeasurementError:
            return False
        return ns_a.supports_recursion

    def measure_pair(self, a: Host, b: Host) -> KingResult:
        """Estimate R(a, b); raises if the pair is not measurable."""
        ns_a = self.dns.server_for(a)
        ns_b = self.dns.server_for(b)
        if not ns_a.supports_recursion:
            raise MeasurementError(
                f"{ns_a.host.name} refuses recursion; King cannot measure "
                f"({a.name}, {b.name})"
            )
        direct = self._min_rtt(ns_a, qname=ns_a.zone, recursive=False)
        recursive = self._min_rtt(
            ns_a, qname=self._random_name(ns_b), recursive=True
        )
        return KingResult(
            target_a=a.name,
            target_b=b.name,
            rtt_ms=recursive - direct,
            leg_to_ns_a_ms=direct,
            recursive_total_ms=recursive,
            samples=self.samples,
        )

    def _random_name(self, ns_b: NameServer) -> str:
        """A fresh label in B's zone, so caches never short-circuit."""
        return f"king-{next(self._labels)}.{ns_b.zone}"

    def _min_rtt(
        self, server: NameServer, qname: str, recursive: bool
    ) -> Milliseconds:
        sim = self.dns.sim
        best: list[Milliseconds] = []

        def one_round(remaining: int) -> None:
            started = sim.now

            def replied(ok: bool) -> None:
                if not ok:
                    future.reject(
                        f"{server.host.name} refused query for {qname!r}"
                    )
                    return
                best.append(sim.now - started)
                if remaining > 1:
                    one_round(remaining - 1)
                else:
                    future.resolve(min(best))

            self.dns.query(
                self.client,
                server,
                self._random_name_suffix(qname, len(best)),
                recursive,
                replied,
            )

        future = SimFuture(sim)
        one_round(self.samples)
        return future.wait()

    @staticmethod
    def _random_name_suffix(qname: str, round_index: int) -> str:
        # Vary the left-most label per sample to stay cache-proof while
        # keeping the zone (routing target) fixed.
        if qname.startswith("king-"):
            return f"r{round_index}.{qname}"
        return qname
