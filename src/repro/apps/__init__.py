"""The paper's Section 5 applications of all-pairs RTT data.

* :mod:`repro.apps.deanon` — faster circuit deanonymization (§5.1).
* :mod:`repro.apps.tiv` — triangle-inequality-violation hunting (§5.2.1).
* :mod:`repro.apps.longcircuits` — long-but-quick circuits (§5.2.2).
* :mod:`repro.apps.coverage` — Ting as a measurement platform (§5.3).
"""

from repro.apps.deanon import (
    DeanonymizationSimulator,
    Scenario,
    RunResult,
    STRATEGIES,
)
from repro.apps.tiv import TivFinding, find_tivs, tiv_summary
from repro.apps.longcircuits import (
    sample_circuit_rtts,
    circuit_count_histogram,
    node_presence_by_rtt,
)
from repro.apps.coverage import (
    ConsensusArchive,
    RelayRecord,
    ResidentialClassifier,
    synthesize_archive,
)
from repro.apps.coordinates import (
    VivaldiSystem,
    VivaldiCoordinate,
    relative_errors,
    embedding_tiv_floor,
)
from repro.apps.pathopt import CircuitSelector, RelayInfo, SelectionOutcome
from repro.apps.congestion import CongestionProbe, ProbeVerdict, VictimTraffic
from repro.apps.king import KingMeasurer, KingResult

__all__ = [
    "DeanonymizationSimulator",
    "Scenario",
    "RunResult",
    "STRATEGIES",
    "TivFinding",
    "find_tivs",
    "tiv_summary",
    "sample_circuit_rtts",
    "circuit_count_histogram",
    "node_presence_by_rtt",
    "ConsensusArchive",
    "RelayRecord",
    "ResidentialClassifier",
    "synthesize_archive",
    "VivaldiSystem",
    "VivaldiCoordinate",
    "relative_errors",
    "embedding_tiv_floor",
    "CircuitSelector",
    "RelayInfo",
    "SelectionOutcome",
    "CongestionProbe",
    "ProbeVerdict",
    "VictimTraffic",
    "KingMeasurer",
    "KingResult",
]
