"""Triangle inequality violations in the Tor overlay (Section 5.2.1).

A pair (s, d) exhibits a TIV when some relay r gives
``R(s, r) + R(r, d) < R(s, d)``: the detour through r beats the routed
"direct" path. TIVs are a routing phenomenon — geographic distance can
never violate the triangle inequality, which is the paper's argument
that measured RTTs (Ting), not geography (LASTor), must guide path
selection.

Paper findings these functions reproduce: 69% of the 50-node all-pairs
set has at least one TIV; the median best-detour saving is 7.5%; the top
decile saves 28% or more; TIVs are not confined to any RTT range
(Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import RttMatrix
from repro.util.errors import ConfigurationError, MeasurementError


@dataclass(frozen=True)
class TivFinding:
    """The best detour for one violated pair."""

    src: str
    dst: str
    relay: str
    direct_rtt_ms: float
    detour_rtt_ms: float

    @property
    def savings_ms(self) -> float:
        """Absolute RTT saved by taking the detour."""
        return self.direct_rtt_ms - self.detour_rtt_ms

    @property
    def savings_fraction(self) -> float:
        """Relative RTT reduction from taking the detour (Figure 14)."""
        if self.direct_rtt_ms <= 0:
            raise MeasurementError("direct RTT must be positive")
        return self.savings_ms / self.direct_rtt_ms


def _matrix_and_nodes(
    matrix: RttMatrix | np.ndarray, require_complete: bool = True
) -> tuple[np.ndarray, list[str]]:
    if isinstance(matrix, RttMatrix):
        if require_complete and not matrix.is_complete:
            raise MeasurementError("TIV analysis needs a complete matrix")
        # Zero-copy: the analysis only reads, so the read-only view is
        # enough — no O(n^2) copy per call at full-network scale.
        return matrix.matrix, list(matrix.nodes)
    arr = np.asarray(matrix, dtype=float)
    n = arr.shape[0]
    if arr.ndim != 2 or arr.shape != (n, n):
        raise ConfigurationError("need a square RTT matrix")
    return arr, [str(i) for i in range(n)]


def tiv_rate(
    matrix: RttMatrix | np.ndarray,
    max_pairs: int = 2000,
    seed: int = 0,
) -> dict[str, float | bool]:
    """The TIV pair rate, tolerating missing entries and large matrices.

    The health scorecard's view of `tiv_summary`: unmeasured entries are
    simply excluded (a detour through an unmeasured relay never counts,
    and a pair with no direct estimate is not checked), and above
    ``max_pairs`` measured pairs a seeded uniform sample is checked
    instead of all of them — the ``sampled`` flag in the result says
    which happened, so a capped check is never mistaken for an
    exhaustive one. Exact (and identical to `tiv_summary`'s fraction)
    below the cap.
    """
    rtt, _ = _matrix_and_nodes(matrix, require_complete=False)
    n = rtt.shape[0]
    # Missing entries become +inf: an unmeasured detour leg can never
    # undercut a measured direct path, which is exactly "excluded".
    work = np.where(np.isnan(rtt), np.inf, rtt)
    np.fill_diagonal(work, np.inf)
    iu, ju = np.triu_indices(n, k=1)
    measured = np.isfinite(work[iu, ju])
    iu, ju = iu[measured], ju[measured]
    total = int(iu.size)
    if total == 0:
        return {
            "pairs_checked": 0.0,
            "violations": 0.0,
            "rate": 0.0,
            "sampled": False,
        }
    sampled = total > max_pairs
    if sampled:
        picks = np.random.default_rng(seed).choice(total, size=max_pairs, replace=False)
        picks.sort()
        iu, ju = iu[picks], ju[picks]
    violations = 0
    # Chunked so the (chunk × n) detour matrix stays small at any scale.
    chunk = max(1, 1_000_000 // max(1, n))
    for start in range(0, iu.size, chunk):
        ic, jc = iu[start : start + chunk], ju[start : start + chunk]
        best = np.min(work[ic, :] + work[:, jc].T, axis=1)
        violations += int(np.sum(best < work[ic, jc]))
    checked = int(iu.size)
    return {
        "pairs_checked": float(checked),
        "violations": float(violations),
        "rate": violations / checked,
        "sampled": sampled,
    }


def find_tivs(matrix: RttMatrix | np.ndarray) -> list[TivFinding]:
    """The best-detour TIV for every violated pair (one finding per pair)."""
    rtt, nodes = _matrix_and_nodes(matrix)
    n = len(nodes)
    findings: list[TivFinding] = []
    for i in range(n):
        for j in range(i + 1, n):
            direct = rtt[i, j]
            detours = rtt[i, :] + rtt[:, j]
            detours[i] = np.inf
            detours[j] = np.inf
            best = int(np.argmin(detours))
            if detours[best] < direct:
                findings.append(
                    TivFinding(
                        src=nodes[i],
                        dst=nodes[j],
                        relay=nodes[best],
                        direct_rtt_ms=float(direct),
                        detour_rtt_ms=float(detours[best]),
                    )
                )
    return findings


def tiv_summary(matrix: RttMatrix | np.ndarray) -> dict[str, float]:
    """Headline numbers: TIV pair fraction, median and p90 savings."""
    rtt, nodes = _matrix_and_nodes(matrix)
    n = len(nodes)
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0:
        raise MeasurementError("need at least two nodes")
    findings = find_tivs(matrix)
    if findings:
        savings = np.array([f.savings_fraction for f in findings])
        median_saving = float(np.median(savings))
        p90_saving = float(np.percentile(savings, 90))
    else:
        median_saving = 0.0
        p90_saving = 0.0
    return {
        "pairs": float(total_pairs),
        "tiv_pairs": float(len(findings)),
        "tiv_fraction": len(findings) / total_pairs,
        "median_savings_fraction": median_saving,
        "p90_savings_fraction": p90_saving,
    }


def detour_scatter(
    matrix: RttMatrix | np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Figure 15's point set: (direct RTT, best detour RTT) per TIV pair."""
    findings = find_tivs(matrix)
    direct = np.array([f.direct_rtt_ms for f in findings])
    detour = np.array([f.detour_rtt_ms for f in findings])
    return direct, detour
