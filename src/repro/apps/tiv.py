"""Triangle inequality violations in the Tor overlay (Section 5.2.1).

A pair (s, d) exhibits a TIV when some relay r gives
``R(s, r) + R(r, d) < R(s, d)``: the detour through r beats the routed
"direct" path. TIVs are a routing phenomenon — geographic distance can
never violate the triangle inequality, which is the paper's argument
that measured RTTs (Ting), not geography (LASTor), must guide path
selection.

Paper findings these functions reproduce: 69% of the 50-node all-pairs
set has at least one TIV; the median best-detour saving is 7.5%; the top
decile saves 28% or more; TIVs are not confined to any RTT range
(Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import RttMatrix
from repro.util.errors import ConfigurationError, MeasurementError


@dataclass(frozen=True)
class TivFinding:
    """The best detour for one violated pair."""

    src: str
    dst: str
    relay: str
    direct_rtt_ms: float
    detour_rtt_ms: float

    @property
    def savings_ms(self) -> float:
        """Absolute RTT saved by taking the detour."""
        return self.direct_rtt_ms - self.detour_rtt_ms

    @property
    def savings_fraction(self) -> float:
        """Relative RTT reduction from taking the detour (Figure 14)."""
        if self.direct_rtt_ms <= 0:
            raise MeasurementError("direct RTT must be positive")
        return self.savings_ms / self.direct_rtt_ms


def _matrix_and_nodes(matrix: RttMatrix | np.ndarray) -> tuple[np.ndarray, list[str]]:
    if isinstance(matrix, RttMatrix):
        if not matrix.is_complete:
            raise MeasurementError("TIV analysis needs a complete matrix")
        # Zero-copy: the analysis only reads, so the read-only view is
        # enough — no O(n^2) copy per call at full-network scale.
        return matrix.matrix, list(matrix.nodes)
    arr = np.asarray(matrix, dtype=float)
    n = arr.shape[0]
    if arr.ndim != 2 or arr.shape != (n, n):
        raise ConfigurationError("need a square RTT matrix")
    return arr, [str(i) for i in range(n)]


def find_tivs(matrix: RttMatrix | np.ndarray) -> list[TivFinding]:
    """The best-detour TIV for every violated pair (one finding per pair)."""
    rtt, nodes = _matrix_and_nodes(matrix)
    n = len(nodes)
    findings: list[TivFinding] = []
    for i in range(n):
        for j in range(i + 1, n):
            direct = rtt[i, j]
            detours = rtt[i, :] + rtt[:, j]
            detours[i] = np.inf
            detours[j] = np.inf
            best = int(np.argmin(detours))
            if detours[best] < direct:
                findings.append(
                    TivFinding(
                        src=nodes[i],
                        dst=nodes[j],
                        relay=nodes[best],
                        direct_rtt_ms=float(direct),
                        detour_rtt_ms=float(detours[best]),
                    )
                )
    return findings


def tiv_summary(matrix: RttMatrix | np.ndarray) -> dict[str, float]:
    """Headline numbers: TIV pair fraction, median and p90 savings."""
    rtt, nodes = _matrix_and_nodes(matrix)
    n = len(nodes)
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0:
        raise MeasurementError("need at least two nodes")
    findings = find_tivs(matrix)
    if findings:
        savings = np.array([f.savings_fraction for f in findings])
        median_saving = float(np.median(savings))
        p90_saving = float(np.percentile(savings, 90))
    else:
        median_saving = 0.0
        p90_saving = 0.0
    return {
        "pairs": float(total_pairs),
        "tiv_pairs": float(len(findings)),
        "tiv_fraction": len(findings) / total_pairs,
        "median_savings_fraction": median_saving,
        "p90_savings_fraction": p90_saving,
    }


def detour_scatter(
    matrix: RttMatrix | np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Figure 15's point set: (direct RTT, best detour RTT) per TIV pair."""
    findings = find_tivs(matrix)
    direct = np.array([f.direct_rtt_ms for f in findings])
    detour = np.array([f.detour_rtt_ms for f in findings])
    return direct, detour
