"""repro — a full reproduction of "Ting: Measuring and Exploiting
Latencies Between All Tor Nodes" (Cangialosi, Levin, Spring; IMC 2015).

The package layers as the paper's system does:

* :mod:`repro.netsim` — the Internet substrate: a deterministic
  discrete-event simulator with geographic propagation, policy routing
  (the source of triangle-inequality violations), per-network protocol
  policies, and packet/stream transport.
* :mod:`repro.tor` — a from-scratch Tor overlay: cells, onion crypto,
  directory/consensus, relays with queueing forwarding delays, an
  onion-proxy client, and a Stem-like controller.
* :mod:`repro.echo` — the TCP echo instrument Ting probes with.
* :mod:`repro.core` — Ting itself: the measurement host, the three-
  circuit procedure with min-filtering (Equation 4), the strawman
  baseline, forwarding-delay estimation, all-pairs campaigns.
* :mod:`repro.apps` — the Section 5 applications: deanonymization
  speedup, TIV hunting, long-but-quick circuits, coverage analysis.
* :mod:`repro.testbeds` — assembled worlds: the 31-relay PlanetLab
  ground-truth testbed and a live-Tor-shaped network.
* :mod:`repro.analysis` — the statistics the figures are built from.

Quickstart::

    from repro import PlanetLabTestbed, TingMeasurer, SamplePolicy

    testbed = PlanetLabTestbed.build(seed=2015, n_relays=8)
    ting = TingMeasurer(testbed.measurement, policy=SamplePolicy(samples=100))
    a, b = testbed.relay_pairs()[0]
    result = ting.measure_pair(a, b)
    print(f"R({a.nickname}, {b.nickname}) = {result.rtt_ms:.2f} ms")
"""

from repro.core import (
    AllPairsCampaign,
    ForwardingDelayEstimator,
    MeasurementHost,
    RttMatrix,
    SamplePolicy,
    StabilityCampaign,
    StrawmanMeasurer,
    TingMeasurer,
    TingResult,
)
from repro.apps import DeanonymizationSimulator, find_tivs, tiv_summary
from repro.obs import MetricsRegistry, TraceLog
from repro.testbeds import GeolocationDB, LiveTorTestbed, PlanetLabTestbed
from repro.util.errors import MeasurementError, ReproError

__version__ = "1.0.0"

__all__ = [
    "AllPairsCampaign",
    "DeanonymizationSimulator",
    "ForwardingDelayEstimator",
    "GeolocationDB",
    "LiveTorTestbed",
    "MeasurementHost",
    "MeasurementError",
    "MetricsRegistry",
    "PlanetLabTestbed",
    "ReproError",
    "RttMatrix",
    "SamplePolicy",
    "StabilityCampaign",
    "StrawmanMeasurer",
    "TingMeasurer",
    "TingResult",
    "TraceLog",
    "find_tivs",
    "tiv_summary",
    "__version__",
]
