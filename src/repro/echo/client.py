"""The measuring echo client (the paper's ``s``).

Given a Tor stream attached to a circuit that exits at the echo server,
the client sends numbered probe payloads and records the time until each
comes back. One probe round-trip traverses the entire circuit out and
back — the quantity every Ting equation is written in.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.netsim.engine import Simulator
from repro.obs import NULL_EVENTS, NULL_METRICS, NULL_TRACE, PROBE_LOST, PROBE_SENT
from repro.tor.client import TorStream
from repro.tor.control import SimFuture
from repro.util.errors import MeasurementError
from repro.util.units import Milliseconds

_PROBE = struct.Struct("!IQ")  # sequence number, nonce

#: Default probe-run deadline; matches ``SamplePolicy.timeout_ms`` so a
#: bare client run and a policy-driven run behave the same.
DEFAULT_PROBE_TIMEOUT_MS: Milliseconds = 600_000.0


@dataclass
class EchoProbeResult:
    """RTT samples from one echo run over one circuit.

    ``stopped_early`` is set when an adaptive policy's convergence rule
    terminated the run before the sample cap; ``samples_saved`` is then
    the number of probes the cap allowed but the run never sent.
    ``stop_reason`` records why a run ended short of the cap
    (``"converged"``, ``"deadline"``, ``"stream_death"``); it stays
    ``None`` for a full fixed-count run.
    """

    rtts_ms: list[Milliseconds] = field(default_factory=list)
    sent: int = 0
    received: int = 0
    stopped_early: bool = False
    samples_saved: int = 0
    stop_reason: str | None = None

    @property
    def min_rtt_ms(self) -> Milliseconds:
        """The minimum observed RTT (Ting's estimator input)."""
        if not self.rtts_ms:
            raise MeasurementError("no echo samples collected")
        return min(self.rtts_ms)

    @property
    def loss(self) -> int:
        """Probes sent but never answered."""
        return self.sent - self.received


class EchoClient:
    """Sends echo probes over a Tor stream and times the replies."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._nonce = 0
        #: Observability sinks; no-ops unless a live registry is wired in.
        self.metrics = NULL_METRICS
        self.trace = NULL_TRACE
        self.events = NULL_EVENTS

    def probe(
        self,
        stream: TorStream,
        samples: int,
        interval_ms: Milliseconds | None = 5.0,
        timeout_ms: Milliseconds = DEFAULT_PROBE_TIMEOUT_MS,
        adaptive=None,
    ) -> EchoProbeResult:
        """Send ``samples`` probes and return the collected RTTs.

        With a numeric ``interval_ms``, probes are paced on a timer (a
        small spacing keeps a probe's queueing from being self-inflicted
        by its siblings while pipelining the run). With
        ``interval_ms=None`` the client runs **ping-pong**: each probe is
        sent only after the previous reply returns — the paper's serial
        measurement loop, whose wall-clock cost is ~samples x RTT.

        ``adaptive`` (an :class:`~repro.core.sampling.AdaptiveSpec`)
        turns ``samples`` into a cap: the run ends as soon as the
        running minimum plateaus, reporting ``stopped_early`` and
        ``samples_saved`` on the result.

        This synchronous form drives the simulator until done; use
        :meth:`probe_async` from orchestration code that runs several
        measurements concurrently.
        """
        future = SimFuture(self.sim)
        self.probe_async(
            stream,
            samples,
            on_done=future.resolve,
            on_error=future.reject,
            interval_ms=interval_ms,
            timeout_ms=timeout_ms,
            adaptive=adaptive,
        )
        return future.wait()

    def probe_async(
        self,
        stream: TorStream,
        samples: int,
        on_done: "callable",
        on_error: "callable",
        interval_ms: Milliseconds | None = 5.0,
        timeout_ms: Milliseconds = DEFAULT_PROBE_TIMEOUT_MS,
        adaptive=None,
    ) -> None:
        """Callback form of :meth:`probe`: schedules the probe run and
        returns immediately; ``on_done(EchoProbeResult)`` or
        ``on_error(reason)`` fires when it resolves.

        Partial results are handled uniformly: whether the run ends at
        the deadline or because the stream died mid-run, any already-
        collected RTT samples are delivered via ``on_done`` (the minimum
        filter works on what arrived); ``on_error`` fires only when a
        run ends with zero replies.
        """
        if samples < 1:
            raise MeasurementError("samples must be >= 1")
        result = EchoProbeResult()
        in_flight: dict[int, Milliseconds] = {}
        pingpong = interval_ms is None
        state = {"finished": False}
        metrics = self.metrics
        events = self.events
        if events.enabled:
            events.debug(
                "probe",
                "round_started",
                samples=samples,
                adaptive=adaptive is not None,
            )
        # O(1)-per-reply convergence check; None keeps the fixed-count
        # path untouched (and bit-for-bit identical).
        tracker = adaptive.make_tracker() if adaptive is not None else None

        def account_finished() -> None:
            if not metrics.enabled:
                return
            lost = result.loss
            if lost > 0:
                metrics.inc("echo.probes_lost", lost)
                if self.trace.enabled:
                    self.trace.record(
                        self.sim.now,
                        PROBE_LOST,
                        lost=lost,
                        sent=result.sent,
                        received=result.received,
                    )

        def finish_ok() -> None:
            if not state["finished"]:
                state["finished"] = True
                deadline.cancel()
                account_finished()
                if events.enabled:
                    events.debug(
                        "probe",
                        "round_finished",
                        sent=result.sent,
                        received=result.received,
                        saved=result.samples_saved,
                        stop_reason=result.stop_reason,
                    )
                on_done(result)

        def finish_error(reason: str) -> None:
            if not state["finished"]:
                state["finished"] = True
                deadline.cancel()
                account_finished()
                if events.enabled:
                    events.warning(
                        "probe",
                        "round_failed",
                        sent=result.sent,
                        reason=reason,
                    )
                on_error(reason)

        def reply_arrived(payload: bytes) -> None:
            if state["finished"]:
                # A reply landing after the run resolved (early stop or
                # deadline with probes still in flight) must not mutate
                # the already-delivered result.
                return
            if len(payload) != _PROBE.size:
                return
            seq, _ = _PROBE.unpack(payload)
            sent_at = in_flight.pop(seq, None)
            if sent_at is None:
                return
            rtt = self.sim.now - sent_at
            result.rtts_ms.append(rtt)
            result.received += 1
            if metrics.enabled:
                metrics.inc("echo.probes_received")
                metrics.observe("echo.rtt_ms", rtt)
            if result.received >= samples:
                finish_ok()
            elif tracker is not None and tracker.update(rtt):
                result.stopped_early = True
                result.stop_reason = "converged"
                result.samples_saved = samples - result.sent
                if metrics.enabled:
                    metrics.inc("echo.early_stops")
                    metrics.inc("echo.probes_saved", result.samples_saved)
                finish_ok()
            elif pingpong and result.sent < samples:
                self.sim.schedule(0.0, send_next, result.sent)

        stream.on_data = reply_arrived

        def send_next(seq: int) -> None:
            if state["finished"]:
                return
            if stream.state != "open":
                # Mid-run stream death: keep whatever already came back
                # rather than discarding collected samples (a minimum
                # over a shortened run is still a valid estimate).
                if result.rtts_ms:
                    result.stop_reason = "stream_death"
                    finish_ok()
                else:
                    finish_error(f"stream became {stream.state}")
                return
            self._nonce += 1
            in_flight[seq] = self.sim.now
            result.sent += 1
            if metrics.enabled:
                metrics.inc("echo.probes_sent")
                if self.trace.enabled:
                    self.trace.record(self.sim.now, PROBE_SENT, seq=seq)
            stream.send(_PROBE.pack(seq, self._nonce))
            if not pingpong and seq + 1 < samples:
                self.sim.schedule(interval_ms, send_next, seq + 1)

        def deadline_hit() -> None:
            # Accept partial results if we got anything; else a failure.
            if result.rtts_ms:
                result.stop_reason = "deadline"
                finish_ok()
            else:
                finish_error("echo probe deadline with zero replies")

        deadline = self.sim.schedule(timeout_ms, deadline_hit)
        self.sim.schedule(0.0, send_next, 0)
