"""The minimal TCP echo server (the paper's ``d``).

Accepts stream connections and writes every received payload straight
back. Runs on a plain simulated host; Tor exit relays connect to it like
any other TCP service.
"""

from __future__ import annotations

from repro.netsim.topology import Host
from repro.netsim.transport import NetworkFabric, StreamConnection

#: Default port the echo service listens on.
DEFAULT_ECHO_PORT = 7


class EchoServer:
    """Echo every byte back to the sender."""

    def __init__(
        self, fabric: NetworkFabric, host: Host, port: int = DEFAULT_ECHO_PORT
    ) -> None:
        self.fabric = fabric
        self.host = host
        self.port = port
        self.connections_accepted = 0
        self.payloads_echoed = 0
        fabric.listen(host, port, self._accept)

    def _accept(self, conn: StreamConnection) -> None:
        self.connections_accepted += 1
        conn.on_data = lambda payload, c=conn: self._echo(c, payload)

    def _echo(self, conn: StreamConnection, payload: bytes) -> None:
        if conn.closed:
            return
        self.payloads_echoed += 1
        conn.send(payload, size_bytes=max(64, len(payload)))

    def shutdown(self) -> None:
        """Stop accepting new connections."""
        self.fabric.stop_listening(self.host, self.port)

    @property
    def address(self) -> str:
        """The server host's IPv4 address."""
        return self.host.address

    def __repr__(self) -> str:
        return (
            f"EchoServer({self.host.name}:{self.port}, "
            f"echoed={self.payloads_echoed})"
        )
