"""TCP echo client and server — Ting's measurement instrument.

The paper's Section 3.1: "an end-to-end echo client and server to allow
us to collect RTT measurements through Tor circuits ... similar in
spirit to ping ... but operates over TCP, and can thus be used over
Tor."
"""

from repro.echo.server import EchoServer
from repro.echo.client import EchoClient, EchoProbeResult

__all__ = ["EchoServer", "EchoClient", "EchoProbeResult"]
