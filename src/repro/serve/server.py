"""The query server: batched dispatch, forked workers, selftest.

:class:`QueryServer` turns a :class:`~repro.serve.index.MatrixIndex`
into a request/response surface: each query is a plain dict (the JSONL
wire format of ``repro serve --batch``), each answer a plain dict —
picklable, so batches fan out across forked worker processes with
nothing but slice boundaries crossing the process gap.

The multiprocess model mirrors ``ShardedCampaign``'s fork discipline:
the index is built **once in the parent** and inherited copy-on-write;
when the underlying matrix is a ``load(..., mmap=True)`` memmap, the
workers don't even pay the COW — every process reads the same page-
cache copy of the npz file. Queries are split into contiguous slices
(one per worker), answered independently, and reassembled by position,
so results are bit-identical for any worker count — the invariance the
serve tests pin.

:func:`selftest` is the trust anchor: it re-answers sampled queries
with brute-force numpy references straight off the raw matrix, checks
mmap-backed answers against in-memory answers, and checks forked
batches against inline ones. ``repro serve --selftest`` runs it in CI
against the planner-smoke dataset.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.dataset import CampaignDataset
from repro.serve.index import MatrixIndex
from repro.serve.telemetry import (
    NULL_SERVE_TELEMETRY,
    QUERY_OPS,
    ServeTelemetry,
    UnknownOpError,
    classify_error,
)
from repro.util.errors import ConfigurationError, MeasurementError


def _error_answer(query: dict[str, Any], exc: Exception) -> dict[str, Any]:
    """The error wire format: echoed op, message, taxonomy category."""
    return {
        "op": query.get("op"),
        "error": str(exc) or exc.__class__.__name__,
        "category": classify_error(exc),
    }


class QueryServer:
    """Answers query dicts against one frozen :class:`MatrixIndex`.

    ``workers`` sets the default fan-out for :meth:`batch`; 1 means
    inline (no forks). Each answer dict echoes the query's ``op`` and
    carries the dataset ``version`` the answer was served from, so a
    client can detect a refresh between two answers.

    ``telemetry`` defaults to the no-op
    :data:`~repro.serve.telemetry.NULL_SERVE_TELEMETRY`; pass a live
    :class:`~repro.serve.telemetry.ServeTelemetry` to get per-op
    latency histograms, taxonomy-keyed error counters, the slow-query
    access log, and sampled spans — merged across :meth:`batch` workers
    invariantly to the fan-out.
    """

    def __init__(
        self,
        index: MatrixIndex,
        workers: int = 1,
        telemetry: ServeTelemetry = NULL_SERVE_TELEMETRY,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.index = index
        self.workers = workers
        self.telemetry = telemetry

    # ------------------------------------------------------------------

    def query(self, query: dict[str, Any]) -> dict[str, Any]:
        """Answer one query dict; errors come back as ``{"error": ...,
        "category": <taxonomy>}`` rather than raising, so one bad query
        cannot poison a batch."""
        telemetry = self.telemetry
        if not telemetry.enabled:
            try:
                return self._dispatch(query)
            except Exception as exc:  # noqa: BLE001 — answer, don't poison
                return _error_answer(query, exc)
        start_s = telemetry.timer()
        try:
            answer = self._dispatch(query)
        except Exception as exc:  # noqa: BLE001
            answer = _error_answer(query, exc)
            telemetry.record(
                query.get("op"), start_s, telemetry.timer(),
                category=answer["category"], detail=answer["error"],
            )
            return answer
        telemetry.record(query.get("op"), start_s, telemetry.timer())
        return answer

    def _dispatch(self, query: dict[str, Any]) -> dict[str, Any]:
        op = query.get("op")
        index = self.index
        if op == "point":
            answer = index.point(query["x"], query["y"]).to_dict()
        elif op == "knn":
            k = int(query.get("k", 10))
            answer = {
                "x": query["x"],
                "k": k,
                "neighbors": [
                    p.to_dict() for p in index.k_nearest(query["x"], k)
                ],
            }
        elif op == "percentile":
            q = float(query["q"])
            if "x" in query:
                answer = {
                    "x": query["x"], "q": q,
                    "rtt_ms": index.percentile(query["x"], q),
                }
            else:
                answer = {"q": q, "rtt_ms": index.global_percentile(q)}
        elif op == "rank":
            answer = {
                "x": query["x"],
                "rtt_ms": float(query["rtt_ms"]),
                "rank": index.rank(query["x"], float(query["rtt_ms"])),
            }
        elif op == "path":
            hops = list(query["hops"])
            answer = {"hops": hops, "rtt_ms": index.path_rtt(hops)}
        elif op == "via":
            k = int(query.get("k", 1))
            answer = {
                "detours": [
                    v.to_dict()
                    for v in index.best_via(query["x"], query["y"], k=k)
                ],
            }
        else:
            raise UnknownOpError(
                f"unknown op {op!r}; expected one of {QUERY_OPS}"
            )
        answer["op"] = op
        answer["version"] = index.version
        return answer

    # ------------------------------------------------------------------

    def batch(
        self,
        queries: Sequence[dict[str, Any]],
        workers: int | None = None,
    ) -> list[dict[str, Any]]:
        """Answer a batch of query dicts, in order.

        ``workers`` overrides the server default. With more than one
        worker the batch is split into contiguous slices, each answered
        in a forked child, and reassembled by slice position — results
        are identical to an inline run for any worker count. Forking
        costs ~ms, so small batches run inline regardless.

        With live telemetry, each worker records into a fresh
        same-config recorder (span sampling offset by its slice start)
        and ships the snapshot home with its answers; the parent folds
        them in worker order, so merged counters and histogram buckets
        equal the inline run's exactly.

        A worker that dies before shipping its slice (kill -9, OOM) is
        detected by polling ``exitcode`` under a bounded queue timeout
        and raised as a categorized :class:`MeasurementError` — the
        collection loop can never block forever on a dead child.
        """
        queries = list(queries)
        n_workers = self.workers if workers is None else workers
        if n_workers < 1:
            raise ConfigurationError("workers must be >= 1")
        n_workers = min(n_workers, len(queries))
        if n_workers <= 1 or len(queries) < 2:
            return self._batch_inline(queries)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: inline fallback
            return self._batch_inline(queries)

        telemetry = self.telemetry
        bounds = np.linspace(0, len(queries), n_workers + 1).astype(int)
        channel = ctx.Queue()
        procs = []
        for w in range(n_workers):
            lo, hi = int(bounds[w]), int(bounds[w + 1])
            worker_telemetry = (
                telemetry.worker_copy(sample_offset=lo, shard=w)
                if telemetry.enabled else None
            )
            proc = ctx.Process(
                target=_batch_worker,
                args=(channel, self, queries[lo:hi], w, worker_telemetry),
                daemon=True,
            )
            procs.append(proc)
            proc.start()
        slices: dict[int, list[dict[str, Any]]] = {}
        snaps: dict[int, dict[str, Any]] = {}

        def absorb(message: tuple[str, int, Any, Any]) -> None:
            kind, w, payload, snap = message
            if kind == "error":
                raise MeasurementError(f"serve worker {w} failed: {payload}")
            slices[w] = payload
            if snap is not None:
                snaps[w] = snap

        try:
            while len(slices) < n_workers:
                try:
                    absorb(channel.get(timeout=0.25))
                    continue
                except queue_module.Empty:
                    pass
                dead = [
                    w for w, proc in enumerate(procs)
                    if proc.exitcode is not None and w not in slices
                ]
                if not dead:
                    continue
                # A worker may exit cleanly with its message still in
                # the feeder-thread pipe: one grace drain before the
                # death is declared real.
                try:
                    while len(slices) < n_workers:
                        absorb(channel.get(timeout=1.0))
                except queue_module.Empty:
                    pass
                lost = [w for w in dead if w not in slices]
                if lost:
                    w = lost[0]
                    raise MeasurementError(
                        f"serve worker {w} died (exit "
                        f"{procs[w].exitcode}) before shipping its slice"
                    )
        finally:
            for proc in procs:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
        if telemetry.enabled:
            for w in range(n_workers):
                snap = snaps.get(w)
                if snap is not None:
                    telemetry.merge_snapshot(snap, shard=w)
            telemetry._sync_counters()
        out: list[dict[str, Any]] = []
        for w in range(n_workers):
            out.extend(slices[w])
        return out

    def _batch_inline(self, queries: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Answer in-process; sync tallies so the registry state after
        an inline batch matches a forked one exactly."""
        out = [self.query(q) for q in queries]
        if self.telemetry.enabled:
            self.telemetry._sync_counters()
        return out


def _batch_worker(
    channel: Any,
    server: QueryServer,
    queries: list[dict[str, Any]],
    w: int,
    telemetry: ServeTelemetry | None = None,
) -> None:
    """Forked child: answer one contiguous slice, ship it home whole.

    With telemetry, the child answers through its own recorder (built
    pre-fork by the parent, slice-offset sampling wired in) and ships
    the snapshot alongside the answers.
    """
    try:
        if telemetry is not None:
            server = QueryServer(server.index, telemetry=telemetry)
        answers = [server.query(q) for q in queries]
        snap = telemetry.snapshot() if telemetry is not None else None
        channel.put(("ok", w, answers, snap))
    except BaseException as exc:  # noqa: BLE001 — report, then die
        channel.put(("error", w, f"{exc.__class__.__name__}: {exc}", None))


# ----------------------------------------------------------------------
# Selftest: brute-force references + load-path and fork invariance


def _sample_nodes(
    rng: np.random.Generator, nodes: list[str], count: int
) -> list[str]:
    picked = rng.choice(len(nodes), size=min(count, len(nodes)), replace=False)
    return [nodes[int(i)] for i in picked]


def _reference_checks(
    index: MatrixIndex,
    matrix: np.ndarray,
    nodes: list[str],
    rng: np.random.Generator,
    samples: int,
    problems: list[str],
) -> int:
    """Re-answer sampled queries with brute-force numpy; count checks."""
    n = len(nodes)
    checks = 0
    picks = rng.integers(0, n, size=(samples, 2))
    for i, j in picks:
        i, j = int(i), int(j)
        if i == j:
            continue
        a, b = nodes[i], nodes[j]
        value = matrix[i, j]
        answer = index.point(a, b)
        checks += 1
        if np.isnan(value):
            if answer.measured or answer.rtt_ms is not None:
                problems.append(f"point({a},{b}): expected unmeasured")
        elif answer.rtt_ms != float(value):
            problems.append(
                f"point({a},{b}): {answer.rtt_ms} != {float(value)}"
            )

        # k-NN vs a full row sort.
        row = matrix[i].copy()
        row[i] = np.nan
        finite = np.flatnonzero(~np.isnan(row))
        k = int(rng.integers(1, 8))
        got = index.k_nearest(a, k)
        expect = finite[np.argsort(row[finite], kind="stable")][:k]
        checks += 1
        if [p.y for p in got] != [nodes[int(e)] for e in expect]:
            problems.append(f"knn({a},{k}): ranking mismatch")
        elif [p.rtt_ms for p in got] != [float(row[e]) for e in expect]:
            problems.append(f"knn({a},{k}): value mismatch")

        # Row percentile vs np.percentile on the raw row.
        if finite.size:
            q = float(rng.uniform(0, 100))
            got_p = index.percentile(a, q)
            expect_p = float(np.percentile(row[finite], q))
            checks += 1
            if not np.isclose(got_p, expect_p, rtol=0, atol=1e-9):
                problems.append(f"percentile({a},{q:.2f}): {got_p} != {expect_p}")

        # Best-via detour vs the brute-force min.
        detour = matrix[i, :] + matrix[:, j]
        detour[i] = np.nan
        detour[j] = np.nan
        finite_d = np.flatnonzero(~np.isnan(detour))
        got_via = index.best_via(a, b)[0]
        checks += 1
        if finite_d.size == 0:
            if got_via.via is not None:
                problems.append(f"via({a},{b}): expected no finite detour")
        else:
            best = float(detour[finite_d].min())
            if got_via.via_rtt_ms != best:
                problems.append(
                    f"via({a},{b}): {got_via.via_rtt_ms} != {best}"
                )

    # Path sums over random 3-hop paths, batch == scalar.
    paths = [
        tuple(_sample_nodes(rng, nodes, 3))
        for _ in range(min(samples, 32))
        if n >= 3
    ]
    if paths:
        batch = index.batch_path_rtt(paths)
        for path, total in zip(paths, batch):
            scalar = index.path_rtt(path)
            ids = [nodes.index(h) for h in path]
            legs = [matrix[x, y] for x, y in zip(ids, ids[1:])]
            expect = None if any(np.isnan(v) for v in legs) else float(sum(legs))
            checks += 1
            if scalar != expect:
                problems.append(f"path({path}): {scalar} != {expect}")
            if expect is None:
                if not np.isnan(total):
                    problems.append(f"batch path({path}): expected NaN")
            elif float(total) != expect:
                problems.append(f"batch path({path}): {float(total)} != {expect}")
    return checks


def _selftest_queries(
    rng: np.random.Generator, nodes: list[str], count: int
) -> list[dict[str, Any]]:
    """A mixed query batch for the load-path/fork invariance checks."""
    queries: list[dict[str, Any]] = []
    n = len(nodes)
    for _ in range(count):
        i, j = (int(v) for v in rng.integers(0, n, size=2))
        if i == j:
            j = (j + 1) % n
        a, b = nodes[i], nodes[j]
        kind = int(rng.integers(0, 5))
        if kind == 0:
            queries.append({"op": "point", "x": a, "y": b})
        elif kind == 1:
            queries.append({"op": "knn", "x": a, "k": int(rng.integers(1, 9))})
        elif kind == 2:
            queries.append(
                {"op": "percentile", "x": a, "q": float(rng.uniform(0, 100))}
            )
        elif kind == 3:
            queries.append(
                {"op": "path", "hops": _sample_nodes(rng, nodes, 3)}
            )
        else:
            queries.append({"op": "via", "x": a, "y": b, "k": 2})
    return queries


def selftest(
    path: str | Path | None = None,
    dataset: CampaignDataset | None = None,
    seed: int = 0,
    samples: int = 64,
    workers: int = 2,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Verify the serve stack end to end; returns the result report.

    Three layers of checks, ``problems`` empty on success:

    1. **Reference answers** — sampled point/k-NN/percentile/via/path
       queries re-answered by brute-force numpy over the raw matrix.
    2. **Load-path invariance** — for npz datasets, a mmap-backed index
       must answer a mixed batch bit-identically to the in-memory one.
    3. **Fork invariance** — a forked multi-worker batch must equal the
       inline single-process batch, element for element.
    """
    say = progress or (lambda _msg: None)
    if dataset is None:
        if path is None:
            raise ConfigurationError("selftest needs a dataset or a path")
        dataset = CampaignDataset.load(path)
    rng = np.random.default_rng(seed)
    index = MatrixIndex.build(dataset)
    nodes = index.nodes
    matrix = np.array(dataset.matrix.matrix, dtype=np.float64, copy=True)
    problems: list[str] = []

    say(f"reference checks over {samples} sampled nodes ...")
    checks = _reference_checks(index, matrix, nodes, rng, samples, problems)

    queries = _selftest_queries(rng, nodes, max(32, samples))
    server = QueryServer(index)
    inline = server.batch(queries, workers=1)

    mmap_checked = False
    if path is not None and Path(path).suffix == ".npz":
        say("mmap vs in-memory load-path invariance ...")
        mapped = CampaignDataset.load(path, mmap=True)
        mapped_index = MatrixIndex.build(mapped)
        mapped_answers = QueryServer(mapped_index).batch(queries, workers=1)
        checks += 1
        mmap_checked = True
        if mapped_answers != inline:
            problems.append("mmap-backed answers differ from in-memory answers")

    forked = None
    if workers > 1:
        say(f"fork invariance ({workers} workers) ...")
        forked = server.batch(queries, workers=workers)
        checks += 1
        if forked != inline:
            problems.append(
                f"{workers}-worker batch differs from the inline batch"
            )

    return {
        "ok": not problems,
        "checks": checks,
        "queries": len(queries),
        "mmap_checked": mmap_checked,
        "fork_workers": workers if forked is not None else 1,
        "version": index.version,
        "problems": problems,
    }
