"""The read side of the matrix: a frozen, query-optimized index.

A measured all-pairs RTT matrix is only worth its campaign cost if
consumers can ask it questions at *client* rates, not measurement
rates — ShorTor-style via-relay routing and latency-aware circuit
selection both assume a "fastest path / best detour for this pair"
primitive served to millions of users. :class:`MatrixIndex` is that
primitive's data structure: built once from a
:class:`~repro.core.dataset.CampaignDataset`, then immutable.

Build-time precomputation (all O(n²), vectorized):

* a contiguous float64 matrix reference (zero-copy view of the dataset
  matrix — which may itself be a read-only ``np.memmap`` over the npz
  file, so forked query workers share one page-cache copy);
* per-row neighbor rankings: ``argsort`` of each row with the diagonal
  and unmeasured entries pushed past the end, plus a per-row measured
  degree — k-nearest-neighbor queries become an O(k) slice;
* per-row sorted RTT tables — percentile and rank queries become one
  ``np.percentile``/``searchsorted`` over a prefix slice;
* the global sorted value vector, for matrix-wide percentiles;
* an optional quality/freshness join from the dataset's provenance
  (:meth:`~repro.core.dataset.CampaignDataset.quality`): per-pair
  quality scores and age-in-provenance-rows ride along on every
  answer, so a consumer can see *how much* to trust an estimate.

Query surface: :meth:`point`, :meth:`row`, :meth:`k_nearest`,
:meth:`percentile` / :meth:`rank` / :meth:`global_percentile`,
:meth:`path_rtt` (+ vectorized :meth:`batch_path_rtt`), and the
ShorTor-style :meth:`best_via` detour search — one vectorized
``min(row_a + col_b)`` pass over all candidate via relays.

Unmeasured pairs are first-class: point answers carry
``measured=False`` with ``rtt_ms=None``, k-NN rankings only cover the
measured degree, and a path through an unmeasured hop reports ``None``
rather than NaN-poisoning downstream sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.dataset import CampaignDataset, RttMatrix
from repro.util.errors import ConfigurationError, MeasurementError


class UnknownNodeError(MeasurementError):
    """A query named a node the index has never heard of.

    A distinct subclass so the serve telemetry can count it under its
    own taxonomy bucket (``unknown_node``) — a client typo or a stale
    node list, not a data problem like "no measured neighbors".
    """


@dataclass(slots=True)
class PointAnswer:
    """One pair's RTT plus the trust metadata a consumer needs."""

    x: str
    y: str
    rtt_ms: float | None
    measured: bool
    quality: float | None = None
    age_rows: int | None = None
    stale: bool | None = None

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "x": self.x,
            "y": self.y,
            "rtt_ms": self.rtt_ms,
            "measured": self.measured,
        }
        if self.quality is not None:
            record["quality"] = round(self.quality, 4)
        if self.age_rows is not None:
            record["age_rows"] = self.age_rows
        if self.stale is not None:
            record["stale"] = self.stale
        return record


@dataclass(slots=True)
class ViaAnswer:
    """The best ShorTor-style detour for one pair.

    ``improved`` says whether the detour actually beats the direct
    estimate — when the direct pair is unmeasured, any finite detour
    counts as an improvement over nothing.
    """

    x: str
    y: str
    via: str | None
    via_rtt_ms: float | None
    direct_rtt_ms: float | None
    improved: bool

    @property
    def savings_ms(self) -> float | None:
        if self.via_rtt_ms is None or self.direct_rtt_ms is None:
            return None
        return self.direct_rtt_ms - self.via_rtt_ms

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "x": self.x,
            "y": self.y,
            "via": self.via,
            "via_rtt_ms": self.via_rtt_ms,
            "direct_rtt_ms": self.direct_rtt_ms,
            "improved": self.improved,
        }
        if self.savings_ms is not None:
            record["savings_ms"] = round(self.savings_ms, 6)
        return record


class MatrixIndex:
    """A frozen, read-optimized view of one dataset version.

    Construct with :meth:`build`; every query method is then pure
    (no mutation, no caching beyond what build precomputed), which is
    what makes the index trivially shareable across forked workers.
    """

    __slots__ = (
        "nodes",
        "_id",
        "_rtt",
        "_order",
        "_row_sorted",
        "_degree",
        "_all_sorted",
        "_quality",
        "_age",
        "_stale_after",
        "version",
        "measured_pairs",
        "provenance_rows",
    )

    def __init__(
        self,
        nodes: list[str],
        rtt: np.ndarray,
        order: np.ndarray,
        row_sorted: np.ndarray,
        degree: np.ndarray,
        all_sorted: np.ndarray,
        quality: np.ndarray | None,
        age: np.ndarray | None,
        stale_after: int | None,
        version: str,
        measured_pairs: int,
        provenance_rows: int,
    ) -> None:
        self.nodes = nodes
        self._id = {node: i for i, node in enumerate(nodes)}
        self._rtt = rtt
        self._order = order
        self._row_sorted = row_sorted
        self._degree = degree
        self._all_sorted = all_sorted
        self._quality = quality
        self._age = age
        self._stale_after = stale_after
        #: Short content-hash prefix identifying the dataset version
        #: every answer was served from.
        self.version = version
        self.measured_pairs = measured_pairs
        self.provenance_rows = provenance_rows

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def build(
        cls,
        dataset: CampaignDataset | RttMatrix,
        quality: bool = True,
    ) -> "MatrixIndex":
        """Build the index from a dataset (or a bare matrix).

        ``quality=True`` joins per-pair quality scores and freshness
        ages from the dataset's provenance when it has any; a bare
        :class:`RttMatrix` (or an empty log) serves answers without the
        trust metadata.
        """
        if isinstance(dataset, RttMatrix):
            matrix = dataset
            dataset = None  # type: ignore[assignment]
        else:
            matrix = dataset.matrix
        nodes = list(matrix.nodes)
        n = len(nodes)
        if n < 2:
            raise ConfigurationError("need at least two nodes to index")
        rtt = matrix.matrix  # read-only view; possibly memmap-backed

        # Neighbor ranking scratch: diagonal and unmeasured entries to
        # +inf so they sort past every finite RTT.
        work = np.array(rtt, dtype=np.float64, copy=True)
        np.fill_diagonal(work, np.inf)
        work[np.isnan(work)] = np.inf
        order = np.argsort(work, axis=1, kind="stable")[:, : n - 1].astype(
            np.int32
        )
        row_sorted = np.take_along_axis(work, order.astype(np.int64), axis=1)
        degree = (np.isfinite(row_sorted)).sum(axis=1).astype(np.int64)
        iu, ju = np.triu_indices(n, k=1)
        upper = work[iu, ju]
        all_sorted = np.sort(upper[np.isfinite(upper)])

        quality_matrix = None
        age = None
        stale_after = None
        if quality and dataset is not None and len(dataset.provenance):
            scores = dataset.quality()
            if list(scores.nodes) == nodes:
                quality_matrix = np.asarray(scores.scores, dtype=np.float64)
                age = np.asarray(scores.age_rows, dtype=np.float64)
                stale_after = int(scores.stale_after_rows)

        version = matrix.content_hash()[:12]
        return cls(
            nodes=nodes,
            rtt=rtt,
            order=order,
            row_sorted=row_sorted,
            degree=degree,
            all_sorted=all_sorted,
            quality=quality_matrix,
            age=age,
            stale_after=stale_after,
            version=version,
            measured_pairs=matrix.num_measured,
            provenance_rows=0 if dataset is None else len(dataset.provenance),
        )

    # ------------------------------------------------------------------
    # Introspection

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._id

    def index_of(self, node: str) -> int:
        """Row index of a node; raises on unknown identifiers."""
        try:
            return self._id[node]
        except KeyError:
            raise UnknownNodeError(f"unknown node {node!r}") from None

    def degree(self, node: str) -> int:
        """How many neighbors of ``node`` have measured RTTs."""
        return int(self._degree[self.index_of(node)])

    def freshness(self) -> dict[str, Any]:
        """Dataset-level freshness/identity metadata for responses."""
        info: dict[str, Any] = {
            "version": self.version,
            "nodes": len(self.nodes),
            "measured_pairs": self.measured_pairs,
            "provenance_rows": self.provenance_rows,
        }
        if self._stale_after is not None:
            info["stale_after_rows"] = self._stale_after
        return info

    def _meta_at(self, i: int, j: int) -> tuple[float | None, int | None, bool | None]:
        """(quality, age_rows, stale) for one pair, or Nones."""
        if self._quality is None:
            return None, None, None
        q = self._quality[i, j]
        if np.isnan(q):
            return None, None, None
        age = self._age[i, j]
        age_rows = None if np.isnan(age) else int(age)
        stale = (
            None
            if age_rows is None or self._stale_after is None
            else age_rows > self._stale_after
        )
        return float(q), age_rows, stale

    # ------------------------------------------------------------------
    # Point / row queries

    def point(self, a: str, b: str) -> PointAnswer:
        """R(a, b) with quality/freshness metadata. The hot path."""
        _id = self._id
        try:
            i = _id[a]
            j = _id[b]
        except KeyError as exc:
            raise UnknownNodeError(f"unknown node {exc.args[0]!r}") from None
        value = self._rtt[i, j]
        quality, age_rows, stale = self._meta_at(i, j)
        if value != value:  # NaN: unmeasured
            return PointAnswer(
                x=a, y=b, rtt_ms=None, measured=False,
                quality=quality, age_rows=age_rows, stale=stale,
            )
        return PointAnswer(
            x=a, y=b, rtt_ms=float(value), measured=True,
            quality=quality, age_rows=age_rows, stale=stale,
        )

    def row(self, a: str) -> np.ndarray:
        """The read-only RTT row for one node (NaN where unmeasured)."""
        return self._rtt[self.index_of(a)]

    # ------------------------------------------------------------------
    # k-nearest / percentile queries

    def k_nearest(self, a: str, k: int = 10) -> list[PointAnswer]:
        """The ``k`` measured neighbors with the smallest RTTs, ascending.

        O(k): the ranking was argsorted at build time. Fewer than ``k``
        measured neighbors returns what exists.
        """
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        i = self.index_of(a)
        count = min(k, int(self._degree[i]))
        neighbors = self._order[i, :count]
        rtts = self._row_sorted[i, :count]
        nodes = self.nodes
        out = []
        for idx, rtt in zip(neighbors.tolist(), rtts.tolist()):
            quality, age_rows, stale = self._meta_at(i, idx)
            out.append(
                PointAnswer(
                    x=a, y=nodes[idx], rtt_ms=rtt, measured=True,
                    quality=quality, age_rows=age_rows, stale=stale,
                )
            )
        return out

    def percentile(self, a: str, q: float) -> float:
        """The ``q``-th percentile RTT among ``a``'s measured neighbors."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError("percentile must be in [0, 100]")
        i = self.index_of(a)
        count = int(self._degree[i])
        if count == 0:
            raise MeasurementError(f"node {a!r} has no measured neighbors")
        return float(np.percentile(self._row_sorted[i, :count], q))

    def rank(self, a: str, rtt_ms: float) -> float:
        """The fraction of ``a``'s measured neighbors at or below
        ``rtt_ms`` — where a candidate RTT sits in the row distribution."""
        i = self.index_of(a)
        count = int(self._degree[i])
        if count == 0:
            raise MeasurementError(f"node {a!r} has no measured neighbors")
        pos = int(np.searchsorted(self._row_sorted[i, :count], rtt_ms, side="right"))
        return pos / count

    def global_percentile(self, q: float) -> float:
        """The ``q``-th percentile over every measured pair RTT."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError("percentile must be in [0, 100]")
        if self._all_sorted.size == 0:
            raise MeasurementError("matrix has no measurements")
        return float(np.percentile(self._all_sorted, q))

    # ------------------------------------------------------------------
    # Path estimates

    def path_rtt(self, hops: Sequence[str]) -> float | None:
        """Total inter-relay RTT along ``hops`` (sum over adjacent
        pairs); ``None`` when any hop pair is unmeasured."""
        if len(hops) < 2:
            raise ConfigurationError("a path needs at least two hops")
        ids = [self.index_of(h) for h in hops]
        total = 0.0
        rtt = self._rtt
        for i, j in zip(ids, ids[1:]):
            value = rtt[i, j]
            if value != value:
                return None
            total += value
        return float(total)

    def batch_path_rtt(self, paths: Sequence[Sequence[str]]) -> np.ndarray:
        """Vectorized :meth:`path_rtt` for same-length paths.

        Returns one float per path, NaN where a hop pair is unmeasured.
        All paths must have the same hop count (the batch is one fancy-
        indexing pass); mixed lengths belong in separate batches.
        """
        if not paths:
            return np.empty(0, dtype=np.float64)
        width = len(paths[0])
        if width < 2:
            raise ConfigurationError("a path needs at least two hops")
        if any(len(p) != width for p in paths):
            raise ConfigurationError("batch paths must share one hop count")
        ids = np.array(
            [[self.index_of(h) for h in path] for path in paths],
            dtype=np.int64,
        )
        legs = self._rtt[ids[:, :-1], ids[:, 1:]]
        return legs.sum(axis=1)

    # ------------------------------------------------------------------
    # ShorTor-style via-relay detours

    def best_via(self, a: str, b: str, k: int = 1) -> list[ViaAnswer]:
        """The best ``k`` via-relay detours for (a, b), ascending.

        One vectorized pass: ``row_a + col_b`` over every candidate
        relay, endpoints and unmeasured legs masked out. A detour
        "improves" when it beats the direct estimate (always, when the
        direct pair is unmeasured) — the triangle-inequality-violation
        exploitation Section 5.2.1 measures and ShorTor deploys.
        """
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        i = self.index_of(a)
        j = self.index_of(b)
        if i == j:
            raise ConfigurationError("via query needs two distinct nodes")
        direct_value = self._rtt[i, j]
        direct = None if direct_value != direct_value else float(direct_value)
        detour = self._rtt[i, :] + self._rtt[:, j]
        detour[i] = np.nan
        detour[j] = np.nan
        finite = np.flatnonzero(~np.isnan(detour))
        if finite.size == 0:
            return [
                ViaAnswer(
                    x=a, y=b, via=None, via_rtt_ms=None,
                    direct_rtt_ms=direct, improved=False,
                )
            ]
        count = min(k, finite.size)
        if count < finite.size:
            picked = finite[
                np.argpartition(detour[finite], count - 1)[:count]
            ]
        else:
            picked = finite
        picked = picked[np.argsort(detour[picked], kind="stable")]
        return [
            ViaAnswer(
                x=a,
                y=b,
                via=self.nodes[int(r)],
                via_rtt_ms=float(detour[r]),
                direct_rtt_ms=direct,
                improved=direct is None or float(detour[r]) < direct,
            )
            for r in picked
        ]
