"""Read-optimized serving layer over a frozen campaign dataset.

``repro.serve`` is the consumption side of the pipeline: measurement
(PR 6-7) and grading (PR 8) produce a versioned ``CampaignDataset``;
this package freezes it into a :class:`MatrixIndex` and answers
point / k-NN / percentile / path / best-via queries at rates far above
measurement rates, through :class:`QueryServer` or the ``repro serve``
CLI.
"""

from repro.serve.index import MatrixIndex, PointAnswer, UnknownNodeError, ViaAnswer
from repro.serve.server import QUERY_OPS, QueryServer, selftest
from repro.serve.telemetry import (
    NULL_SERVE_TELEMETRY,
    SERVE_ERROR_TAXONOMY,
    NullServeTelemetry,
    ServeTelemetry,
    UnknownOpError,
    classify_error,
)

__all__ = [
    "MatrixIndex",
    "PointAnswer",
    "ViaAnswer",
    "QueryServer",
    "QUERY_OPS",
    "selftest",
    "ServeTelemetry",
    "NullServeTelemetry",
    "NULL_SERVE_TELEMETRY",
    "SERVE_ERROR_TAXONOMY",
    "UnknownNodeError",
    "UnknownOpError",
    "classify_error",
]
