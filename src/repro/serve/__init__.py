"""Read-optimized serving layer over a frozen campaign dataset.

``repro.serve`` is the consumption side of the pipeline: measurement
(PR 6-7) and grading (PR 8) produce a versioned ``CampaignDataset``;
this package freezes it into a :class:`MatrixIndex` and answers
point / k-NN / percentile / path / best-via queries at rates far above
measurement rates, through :class:`QueryServer` or the ``repro serve``
CLI.
"""

from repro.serve.index import MatrixIndex, PointAnswer, ViaAnswer
from repro.serve.server import QUERY_OPS, QueryServer, selftest

__all__ = [
    "MatrixIndex",
    "PointAnswer",
    "ViaAnswer",
    "QueryServer",
    "QUERY_OPS",
    "selftest",
]
