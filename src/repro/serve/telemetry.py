"""Query-layer telemetry: per-op latency, error taxonomy, access log.

PR 9 made ``repro.serve`` fast; this module makes it *observable*. A
:class:`ServeTelemetry` bundles the three obs primitives the rest of
the stack already uses, specialized for the query hot path:

* **per-op latency histograms** — one µs-bucketed
  :class:`~repro.obs.registry.Histogram` per query op (the default ms
  edges would flatten 3 µs point lookups into a single bucket), held
  live so recording skips the name lookup;
* **QPS / error counters** keyed by a *stable* error taxonomy
  (:data:`SERVE_ERROR_TAXONOMY`): ``unknown_op`` (bad dispatch),
  ``unknown_node`` (client named a node the index lacks), ``bad_arg``
  (malformed arguments), ``internal`` (everything else — including
  bugs, which must never poison a batch). Only ops in
  :data:`QUERY_OPS` get their own metrics: attacker-controlled op
  strings bump taxonomy counters, never mint new metric names, so
  cardinality stays bounded;
* **a bounded structured access log** — slow queries (latency over the
  ``slow_ms`` threshold) and every error are emitted on an
  :class:`~repro.obs.events.EventBus` under the ``serve`` category, so
  the flight-recorder ring, severity counts, and sinks all come for
  free;
* **1-in-N sampled per-query spans** joined to a
  :class:`~repro.obs.spans.SpanTracer` for Perfetto export. Sampling
  is keyed to the query's *position in the batch*, not the worker that
  happened to answer it, so the sampled set is invariant to the
  ``batch()`` fan-out.

Fork discipline matches PRs 3/5/6: workers record into their own
telemetry, ship :meth:`snapshot` home with their answer slice, and the
parent folds them in worker order with :meth:`merge_snapshot` —
counters and histogram buckets merge exactly, so totals are invariant
to the worker count.

The default is :data:`NULL_SERVE_TELEMETRY`, mirroring
:data:`~repro.obs.spans.NULL_SPANS`: allocation-free, ``enabled`` is
``False``, and the query hot path pays one attribute check.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs.events import ERROR, WARNING, EventBus, NullEventBus
from repro.obs.registry import (
    MICRO_BUCKET_EDGES_MS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    prometheus_exposition,
)
from repro.obs.spans import NullSpanTracer, SpanTracer
from repro.serve.index import UnknownNodeError
from repro.util.errors import ConfigurationError

#: Query ``op`` values the server dispatches (re-exported by
#: ``repro.serve.server``). Lives here so the telemetry can premint
#: exactly one histogram per legitimate op without importing the server
#: (which imports this module).
QUERY_OPS = ("point", "knn", "percentile", "rank", "path", "via")

#: The stable error-category vocabulary. Counter names are
#: ``serve.errors.<category>``; answer dicts carry the category under
#: ``"category"``. Extend by appending — consumers key dashboards off
#: these strings.
SERVE_ERROR_TAXONOMY = ("unknown_op", "unknown_node", "bad_arg", "internal")


class UnknownOpError(ConfigurationError):
    """A query asked for an op outside :data:`QUERY_OPS`."""


def classify_error(exc: BaseException) -> str:
    """Map an exception from query dispatch onto the taxonomy.

    Order matters: the specific serve errors first, then the argument
    shape of the wire format (missing keys are ``KeyError``, wrong
    types ``TypeError``/``ValueError``, range checks
    ``ConfigurationError``), then the catch-all. ``internal`` is the
    bucket an alert should page on — it includes genuine bugs and data
    states like "no measured neighbors" that the client didn't cause.
    """
    if isinstance(exc, UnknownOpError):
        return "unknown_op"
    if isinstance(exc, UnknownNodeError):
        return "unknown_node"
    if isinstance(exc, (ConfigurationError, KeyError, TypeError, ValueError)):
        return "bad_arg"
    return "internal"


class ServeTelemetry:
    """Everything the query layer records, bundled and mergeable.

    ``slow_ms`` is the access-log threshold (queries at or above it are
    ringed as ``serve.slow_query``); ``sample_every`` keeps one span
    per N queries (0 disables spans); ``timer`` is the latency clock —
    injectable so invariance tests can drive a deterministic fake.
    """

    enabled = True

    __slots__ = ("registry", "bus", "spans", "slow_ms", "sample_every",
                 "timer", "shard", "_sample_offset", "_seen", "_hists")

    def __init__(
        self,
        slow_ms: float = 1.0,
        sample_every: int = 100,
        capacity: int = 256,
        timer: Callable[[], float] | None = None,
        shard: int = 0,
        sample_offset: int = 0,
    ) -> None:
        if slow_ms < 0:
            raise ConfigurationError("slow_ms must be >= 0")
        if sample_every < 0:
            raise ConfigurationError("sample_every must be >= 0")
        self.registry = MetricsRegistry()
        self.bus = EventBus(capacity=capacity, shard=shard)
        self.spans = SpanTracer(shard=shard)
        self.slow_ms = float(slow_ms)
        self.sample_every = int(sample_every)
        self.timer = timer if timer is not None else time.perf_counter
        self.shard = shard
        #: Global index of this recorder's first query — a forked worker
        #: answering ``queries[lo:hi]`` gets ``sample_offset=lo`` so the
        #: 1-in-N span sample lands on the same queries for any fan-out.
        self._sample_offset = int(sample_offset)
        self._seen = 0
        # Premint one µs histogram per legitimate op: bounded
        # cardinality, and the hot path dict-gets a live Histogram.
        self._hists: dict[str, Histogram] = {
            op: self.registry.ensure_histogram(
                f"serve.latency_ms.{op}", MICRO_BUCKET_EDGES_MS
            )
            for op in QUERY_OPS
        }

    # ------------------------------------------------------------------
    # Recording (the hot path)

    def record(
        self,
        op: Any,
        start_s: float,
        end_s: float,
        category: str | None = None,
        detail: str | None = None,
    ) -> None:
        """Record one answered query.

        ``category`` is ``None`` for a success, else a taxonomy string;
        ``detail`` (the error text) rides into the access-log event.

        The success path is deliberately counter-free: per-op counts
        live in the histograms (``Histogram.count``) and the query
        total derives from ``_seen``, synced into the registry lazily
        by :meth:`_sync_counters` — a dict-keyed ``inc`` per query
        would roughly double the telemetry cost of a point lookup.
        """
        dur_ms = (end_s - start_s) * 1000.0
        hist = self._hists.get(op)
        if hist is not None:
            hist.observe(dur_ms)
        if category is not None:
            registry = self.registry
            registry.inc("serve.errors")
            registry.inc(f"serve.errors.{category}")
            self.bus.emit(
                ERROR, "serve", "query_error",
                op=str(op), taxonomy=category, dur_ms=dur_ms,
                error=detail if detail is not None else "",
            )
        elif dur_ms >= self.slow_ms:
            self.registry.inc("serve.slow_queries")
            self.bus.emit(
                WARNING, "serve", "slow_query",
                op=str(op), dur_ms=dur_ms, threshold_ms=self.slow_ms,
            )
        index = self._sample_offset + self._seen
        self._seen += 1
        if self.sample_every and index % self.sample_every == 0:
            # Synthesized record, not begin()/end(): the query already
            # happened, and merge() adopts raw record dicts.
            self.spans.merge([{
                "name": "serve.query",
                "start_ms": start_s * 1000.0,
                "dur_ms": dur_ms,
                "track": 0,
                "shard": self.shard,
                "args": {"op": str(op), "sample_index": index},
            }])

    # ------------------------------------------------------------------
    # Fork boundary

    def worker_copy(self, sample_offset: int = 0, shard: int = 0) -> "ServeTelemetry":
        """A fresh same-config recorder for one forked batch worker.

        Built in the parent *before* the fork (so fake timers and other
        injected callables ride the fork, never a pickle), with the
        worker's slice offset wired into the span sampler.
        """
        return ServeTelemetry(
            slow_ms=self.slow_ms,
            sample_every=self.sample_every,
            capacity=self.bus.recorder.capacity,
            timer=self.timer,
            shard=shard,
            sample_offset=sample_offset,
        )

    def _sync_counters(self) -> None:
        """Materialize the hot-path tallies into registry counters.

        ``record()`` keeps the query total in ``_seen`` (a plain int
        bump) instead of a dict-keyed ``inc`` per query; every read path
        (:meth:`snapshot`, :meth:`summary`, :meth:`to_prometheus`) calls
        this first so ``serve.queries`` is exact. Written as a delta so
        it is idempotent and safe after :meth:`merge_snapshot` (which
        sums both the counter and ``seen``).
        """
        delta = self._seen - self.registry.counter("serve.queries")
        if delta:
            self.registry.inc("serve.queries", delta)

    def snapshot(self) -> dict[str, Any]:
        """A picklable, JSON-ready view of everything recorded."""
        self._sync_counters()
        return {
            "metrics": self.registry.snapshot(),
            "events": self.bus.snapshot(),
            "spans": self.spans.records(),
            "seen": self._seen,
        }

    def merge_snapshot(
        self, snap: dict[str, Any], shard: int | None = None
    ) -> "ServeTelemetry":
        """Fold one worker's :meth:`snapshot` into this recorder.

        Counters sum, histogram buckets sum (exact integer merges), bus
        counts sum with ring adoption, spans are adopted retagged with
        ``shard``. Associative and commutative up to float addition of
        histogram sums — the parent merges in worker order so even the
        float paths are deterministic for a given fan-out.
        """
        self.registry.merge(MetricsRegistry.from_snapshot(snap["metrics"]))
        self.bus.merge_snapshot(snap["events"], shard=shard)
        self.spans.merge(snap["spans"], shard=shard)
        self._seen += int(snap.get("seen", 0))
        return self

    # ------------------------------------------------------------------
    # Reads

    def summary(self) -> dict[str, Any]:
        """The ``repro serve --stats`` view: totals, taxonomy, per-op
        latency quantiles (ms), and access-log volume."""
        self._sync_counters()
        registry = self.registry
        per_op: dict[str, dict[str, Any]] = {}
        for op in QUERY_OPS:
            hist = self._hists[op]
            if not hist.count:
                continue
            per_op[op] = {
                "count": hist.count,
                "p50_ms": hist.quantile(0.5),
                "p99_ms": hist.quantile(0.99),
                "mean_ms": hist.mean,
                "max_ms": hist.max,
            }
        errors = {
            category: count
            for category in SERVE_ERROR_TAXONOMY
            if (count := registry.counter(f"serve.errors.{category}"))
        }
        return {
            "queries": registry.counter("serve.queries"),
            "errors": registry.counter("serve.errors"),
            "errors_by_category": errors,
            "slow_queries": registry.counter("serve.slow_queries"),
            "slow_ms": self.slow_ms,
            "sampled_spans": len(self.spans),
            "access_log_events": self.bus.emitted,
            "per_op": per_op,
        }

    def access_log(self) -> list[dict[str, Any]]:
        """The retained access-log ring (slow queries + errors),
        oldest first."""
        return self.bus.events(category="serve")

    def to_prometheus(self, namespace: str = "ting") -> str:
        """Prometheus text exposition of the counters and histograms."""
        self._sync_counters()
        return prometheus_exposition(self.registry.snapshot(), namespace=namespace)

    def __repr__(self) -> str:
        return (
            f"ServeTelemetry(queries={self._seen}, "
            f"errors={self.registry.counter('serve.errors')}, "
            f"spans={len(self.spans)})"
        )


class NullServeTelemetry(ServeTelemetry):
    """Telemetry that records nothing: the zero-cost default.

    Construction is allocation-free; the query path pays exactly one
    ``enabled`` check. The null obs singletons shadow the parent's
    slots so accidental reads stay safe and stateless.
    """

    enabled = False

    __slots__ = ()

    registry = NullMetricsRegistry()
    bus = NullEventBus()
    spans = NullSpanTracer()
    slow_ms = 0.0
    sample_every = 0
    timer = staticmethod(time.perf_counter)
    shard = 0
    _sample_offset = 0
    _seen = 0
    _hists: dict[str, Histogram] = {}

    def __init__(self) -> None:
        pass

    def record(
        self,
        op: Any,
        start_s: float,
        end_s: float,
        category: str | None = None,
        detail: str | None = None,
    ) -> None:
        pass

    def worker_copy(self, sample_offset: int = 0, shard: int = 0) -> ServeTelemetry:
        return self

    def snapshot(self) -> dict[str, Any]:
        return {
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "events": {"emitted": 0, "counts": [],
                       "ring": {"dropped": 0, "events": []}},
            "spans": [],
            "seen": 0,
        }

    def merge_snapshot(
        self, snap: dict[str, Any], shard: int | None = None
    ) -> ServeTelemetry:
        return self

    def summary(self) -> dict[str, Any]:
        return {
            "queries": 0, "errors": 0, "errors_by_category": {},
            "slow_queries": 0, "slow_ms": 0.0, "sampled_spans": 0,
            "access_log_events": 0, "per_op": {},
        }

    def access_log(self) -> list[dict[str, Any]]:
        return []

    def __repr__(self) -> str:
        return "NullServeTelemetry()"


#: The process-wide no-op serve telemetry; :class:`QueryServer` defaults
#: to it.
NULL_SERVE_TELEMETRY = NullServeTelemetry()
