"""A synthetic IP-geolocation database (the paper's Neustar stand-in).

Figure 8 plots Ting RTTs against great-circle distances computed from a
commercial geolocation service. Such databases are mostly right but
contain gross errors — the paper traces its few below-(2/3)c points to
exactly those. :class:`GeolocationDB` reproduces that: each host's entry
is its true location, except a configurable fraction that get assigned a
random catalogue city instead.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.geo import CITY_CATALOG, GeoPoint, great_circle_km
from repro.netsim.topology import Host
from repro.util.errors import ConfigurationError


class GeolocationDB:
    """Address → estimated coordinates, with database errors baked in."""

    def __init__(self, entries: dict[str, GeoPoint], wrong: frozenset[str]) -> None:
        self._entries = dict(entries)
        self._wrong = wrong

    @classmethod
    def build(
        cls,
        hosts: list[Host],
        rng: np.random.Generator,
        error_fraction: float = 0.02,
    ) -> "GeolocationDB":
        """Index ``hosts``; ``error_fraction`` of entries are grossly wrong."""
        if not 0.0 <= error_fraction <= 1.0:
            raise ConfigurationError("error_fraction must be in [0, 1]")
        entries: dict[str, GeoPoint] = {}
        wrong: set[str] = set()
        for host in hosts:
            if rng.random() < error_fraction:
                city = CITY_CATALOG[int(rng.integers(0, len(CITY_CATALOG)))]
                entries[host.address] = city.point
                wrong.add(host.address)
            else:
                entries[host.address] = host.point
        return cls(entries, frozenset(wrong))

    def lookup(self, address: str) -> GeoPoint:
        """The database's (possibly wrong) coordinates for ``address``."""
        try:
            return self._entries[address]
        except KeyError:
            raise KeyError(f"no geolocation entry for {address!r}") from None

    def distance_km(self, address_a: str, address_b: str) -> float:
        """Great-circle distance between two database entries."""
        return great_circle_km(self.lookup(address_a), self.lookup(address_b))

    def is_erroneous(self, address: str) -> bool:
        """Whether this entry was deliberately corrupted (for validation)."""
        return address in self._wrong

    def __len__(self) -> int:
        return len(self._entries)
