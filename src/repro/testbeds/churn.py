"""Relay churn: the live network never holds still.

Volunteer relays reboot, lose connectivity, and come back. A
:class:`ChurnProcess` drives that behaviour during an experiment: each
managed relay alternates exponentially-distributed online and offline
periods, and the directory authority's view follows (withdraw on
failure, republish on return). Campaign code sees the same symptoms the
paper's live measurements did — circuits failing mid-campaign, pairs
needing retries.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.engine import Simulator
from repro.tor.directory import DirectoryAuthority
from repro.tor.relay import Relay
from repro.util.errors import ConfigurationError
from repro.util.units import Milliseconds


class ChurnProcess:
    """Alternates relays between online and offline states."""

    def __init__(
        self,
        sim: Simulator,
        relays: list[Relay],
        authority: DirectoryAuthority,
        rng: np.random.Generator,
        mean_uptime_ms: Milliseconds = 12.0 * 3_600_000.0,
        mean_downtime_ms: Milliseconds = 30.0 * 60_000.0,
    ) -> None:
        if not relays:
            raise ConfigurationError("churn process needs at least one relay")
        if mean_uptime_ms <= 0 or mean_downtime_ms <= 0:
            raise ConfigurationError("churn periods must be positive")
        self.sim = sim
        self.relays = list(relays)
        self.authority = authority
        self._rng = rng
        self.mean_uptime_ms = mean_uptime_ms
        self.mean_downtime_ms = mean_downtime_ms
        self.transitions = 0
        self._running = False

    def start(self) -> None:
        """Begin churning: schedule each relay's first failure."""
        if self._running:
            return
        self._running = True
        for relay in self.relays:
            self._schedule_failure(relay)

    def stop(self) -> None:
        """Stop scheduling further transitions (pending ones are inert)."""
        self._running = False

    def force_online(self) -> None:
        """Bring every managed relay back up (end-of-experiment cleanup)."""
        for relay in self.relays:
            if not relay.is_online:
                relay.restart()
                self.authority.publish(relay.descriptor(), now_ms=self.sim.now)

    # ------------------------------------------------------------------

    def _schedule_failure(self, relay: Relay) -> None:
        delay = float(self._rng.exponential(self.mean_uptime_ms))
        self.sim.schedule(delay, self._fail, relay)

    def _fail(self, relay: Relay) -> None:
        if not self._running or not relay.is_online:
            return
        relay.shutdown()
        self.authority.withdraw(relay.fingerprint)
        self.transitions += 1
        self.sim.schedule(
            float(self._rng.exponential(self.mean_downtime_ms)),
            self._recover,
            relay,
        )

    def _recover(self, relay: Relay) -> None:
        if not self._running:
            return
        relay.restart()
        self.authority.publish(relay.descriptor(), now_ms=self.sim.now)
        self.transitions += 1
        self._schedule_failure(relay)

    @property
    def online_count(self) -> int:
        """How many managed relays are currently online."""
        return sum(1 for relay in self.relays if relay.is_online)
