"""The Section 4.1 ground-truth testbed.

31 Tor relays on PlanetLab-like university hosts chosen so that:

* they cover a wide geographic area (several European countries, many
  U.S. states, and at least one site each in Asia, South America,
  Oceania, and the Middle East);
* the distribution is U.S./Europe-heavy like the live Tor network;
* pairwise latencies range from ~0 ms (same metro) to near-antipodal.

Each relay runs an unmodified simulated Tor with the paper's restrictive
exit policy (exit only to the measurement host), and the testbed exposes
two ground truths: all-pairs ICMP ping (what the paper could measure)
and the latency engine's exact Tor-class floor (what only a simulator
can provide).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.measurement_host import MeasurementHost
from repro.netsim.engine import Simulator
from repro.netsim.latency import LatencyEngine
from repro.netsim.policies import PolicyModel, TrafficClass
from repro.netsim.routing import Router
from repro.netsim.topology import Host, Topology, TopologyBuilder
from repro.netsim.transport import IcmpPinger, NetworkFabric
from repro.tor.directory import (
    Consensus,
    DirectoryAuthority,
    ExitPolicy,
    RelayDescriptor,
)
from repro.tor.relay import ForwardingDelayModel, Relay
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStreams
from repro.util.units import Milliseconds

#: How many relays the paper's testbed ran.
PAPER_TESTBED_SIZE = 31

#: Region quotas mirroring Section 4.1's selection criteria. U.S. and
#: Europe dominate; the remainder guarantees global spread.
REGION_QUOTAS: dict[str, int] = {
    "us": 12,
    "europe": 13,
    "asia": 2,
    "south-america": 2,
    "oceania": 1,
    "middle-east": 1,
}


@dataclass
class PlanetLabTestbed:
    """The assembled ground-truth world."""

    sim: Simulator
    streams: RandomStreams
    topology: Topology
    builder: TopologyBuilder
    router: Router
    latency: LatencyEngine
    fabric: NetworkFabric
    relays: list[Relay]
    authority: DirectoryAuthority
    consensus: Consensus
    measurement: MeasurementHost

    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        seed: int = 2015,
        n_relays: int = PAPER_TESTBED_SIZE,
        differential_fraction: float = 0.35,
        relay_load_range: tuple[float, float] = (0.05, 0.5),
        policy_model: PolicyModel | None = None,
    ) -> "PlanetLabTestbed":
        """Construct the testbed deterministically from ``seed``.

        ``policy_model`` overrides the default per-network protocol-policy
        sampler (which uses ``differential_fraction``) — the Figure 5
        forwarding-delay study uses a harsher mix to surface several
        anomalous networks among a small relay draw.
        """
        if n_relays < 2:
            raise ConfigurationError("testbed needs at least two relays")
        streams = RandomStreams(seed)
        topo_rng = streams.get("planetlab.topology")
        builder = TopologyBuilder(
            topo_rng,
            policy_model=policy_model
            or PolicyModel(differential_fraction=differential_fraction),
        )
        topology = builder.build()
        router = Router(topology.graph)
        sim = Simulator()
        latency = LatencyEngine(topology, router, streams)
        fabric = NetworkFabric(sim, latency)

        site_rng = streams.get("planetlab.sites")
        sites = cls._choose_sites(site_rng, topology, n_relays)

        authority = DirectoryAuthority()
        relays: list[Relay] = []
        relay_rng = streams.get("planetlab.relays")
        load_lo, load_hi = relay_load_range
        for index, pop_id in enumerate(sites):
            host = builder.attach_random_host(
                topology, f"pl{index:02d}", pop_id, host_type="university"
            )
            relay = Relay(
                sim,
                fabric,
                topology,
                host,
                nickname=f"plrelay{index:02d}",
                bandwidth_kbps=int(relay_rng.integers(512, 8192)),
                # Restrictive policy: exit only to addresses we control
                # (filled in after the measurement host exists).
                exit_policy=ExitPolicy.reject_all(),
                forwarding_model=ForwardingDelayModel(
                    relay_rng,
                    crypto_floor_ms=float(relay_rng.uniform(0.1, 1.2)),
                    load=float(relay_rng.uniform(load_lo, load_hi)),
                    queue_scale_ms=float(relay_rng.uniform(0.5, 2.5)),
                ),
            )
            relays.append(relay)

        # The relays were "maintained for over a month" before the
        # experiment: backdate their first-seen time so flags like Stable
        # vote correctly.
        for relay in relays:
            authority.publish(relay.descriptor(), now_ms=-31 * 24 * 3600 * 1000.0)
        consensus = authority.make_consensus(now_ms=0.0)

        measurement = MeasurementHost.deploy(
            sim,
            fabric,
            topology,
            builder,
            consensus,
            pop_id=cls._college_park_pop(topology),
            streams=streams,
        )

        # Now that the echo server address exists, install the paper's
        # restrictive exit policy on every testbed relay.
        restricted = ExitPolicy.accept_only(
            measurement.echo_address, measurement.echo_client_host.address
        )
        for relay in relays:
            relay.exit_policy = restricted
            authority.publish(
                relay.descriptor(), now_ms=-31 * 24 * 3600 * 1000.0
            )
        consensus = authority.make_consensus(now_ms=0.0)
        measurement.refresh_consensus(consensus)

        return cls(
            sim=sim,
            streams=streams,
            topology=topology,
            builder=builder,
            router=router,
            latency=latency,
            fabric=fabric,
            relays=relays,
            authority=authority,
            consensus=consensus,
            measurement=measurement,
        )

    @staticmethod
    def _choose_sites(
        rng: np.random.Generator, topology: Topology, n_relays: int
    ) -> list[int]:
        """Pick PoPs honouring the regional quotas, then round-robin."""
        pops_by_region: dict[str, list[int]] = {}
        for pop in topology.pops.values():
            pops_by_region.setdefault(pop.city.region, []).append(pop.pop_id)

        sites: list[int] = []
        for region, quota in REGION_QUOTAS.items():
            pool = pops_by_region.get(region, [])
            if not pool:
                continue
            # Prefer distinct cities — the paper's testbed latencies were
            # "unique, from very close to nearly antipodal", which needs
            # geographic spread rather than co-located piles.
            picks = rng.choice(pool, size=quota, replace=quota > len(pool))
            sites.extend(int(p) for p in picks)
        # Trim or pad to the requested size.
        if len(sites) > n_relays:
            order = rng.permutation(len(sites))[:n_relays]
            sites = [sites[i] for i in order]
        while len(sites) < n_relays:
            region = ("us", "europe")[len(sites) % 2]
            pool = pops_by_region.get(region, [])
            sites.append(int(rng.choice(pool)))
        return sites

    @staticmethod
    def _college_park_pop(topology: Topology) -> int:
        """The measurement host lives at the authors' institution."""
        for pop in topology.pops.values():
            if pop.city.name == "College Park":
                return pop.pop_id
        return 0

    # ------------------------------------------------------------------
    # Ground truths

    def relay_pairs(self) -> list[tuple[RelayDescriptor, RelayDescriptor]]:
        """All unordered relay pairs (the paper's 930 ordered = 465 here)."""
        descriptors = [r.descriptor() for r in self.relays]
        return [
            (a, b)
            for i, a in enumerate(descriptors)
            for b in descriptors[i + 1 :]
        ]

    def ping_ground_truth(
        self, a: RelayDescriptor, b: RelayDescriptor, count: int = 100
    ) -> Milliseconds:
        """Min-of-``count`` ICMP ping between the two relay hosts — the
        ground truth the paper could actually collect."""
        src = self.topology.host_by_address(a.address)
        dst = self.topology.host_by_address(b.address)
        pinger = IcmpPinger(self.fabric, src)
        try:
            return pinger.measure_min_rtt(dst, count=count)
        finally:
            self.fabric.unbind_icmp_listener(src)

    def oracle_rtt(
        self,
        a: RelayDescriptor,
        b: RelayDescriptor,
        traffic_class: TrafficClass = TrafficClass.TOR,
    ) -> Milliseconds:
        """The simulator's exact latency floor for a pair and class."""
        return self.latency.true_rtt_ms(
            self.topology.host_by_address(a.address),
            self.topology.host_by_address(b.address),
            traffic_class,
        )

    def host_of(self, descriptor: RelayDescriptor) -> Host:
        """The simulated host behind a relay descriptor."""
        return self.topology.host_by_address(descriptor.address)
