"""A live-Tor-shaped network for the in-the-wild experiments.

Builds a population of volunteer relays matching the live network's
gross statistics: region mix concentrated in Europe and the U.S.
(Section 4.1), roughly 61% residential hosts among those with rDNS
names plus hosting-provider and institutional relays (Section 5.3),
heavy-tailed bandwidths, realistic exit-policy mix, and mostly-own-/24
address allocation (the network spans ~6000 unique /24s).

The default size is far below the real ~6500 relays so event-driven
experiments stay fast; every experiment that needs scale takes the relay
count as a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.core.measurement_host import MeasurementHost
from repro.netsim.engine import Simulator
from repro.netsim.geo import TOR_REGION_WEIGHTS
from repro.netsim.latency import LatencyEngine
from repro.netsim.policies import PolicyModel
from repro.netsim.routing import Router
from repro.netsim.topology import Topology, TopologyBuilder
from repro.netsim.transport import NetworkFabric
from repro.testbeds.geolocation import GeolocationDB
from repro.testbeds.rdns import synthesize_rdns
from repro.tor.directory import (
    Consensus,
    DirectoryAuthority,
    ExitPolicy,
    ExitRule,
    RelayDescriptor,
)
from repro.tor.relay import ForwardingDelayModel, Relay, ServiceQueue
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStreams

#: Host-type mix among relays (Section 5.3: ~61% of named relays are
#: residential; data centers and institutions share the rest).
HOST_TYPE_MIX: tuple[tuple[str, float], ...] = (
    ("residential", 0.58),
    ("hosting", 0.30),
    ("university", 0.12),
)

#: Fraction of relays whose exit policy accepts general destinations.
EXIT_FRACTION = 0.25


@dataclass
class LiveTorTestbed:
    """The assembled live-network world."""

    sim: Simulator
    streams: RandomStreams
    topology: Topology
    builder: TopologyBuilder
    router: Router
    latency: LatencyEngine
    fabric: NetworkFabric
    relays: list[Relay]
    authority: DirectoryAuthority
    consensus: Consensus
    measurement: MeasurementHost
    geolocation: GeolocationDB

    @classmethod
    def build(
        cls,
        seed: int = 2015,
        n_relays: int = 120,
        geolocation_error_fraction: float = 0.02,
        service_queues: bool = False,
    ) -> "LiveTorTestbed":
        """Construct a live-Tor-shaped world with ``n_relays`` relays.

        ``service_queues`` attaches a bandwidth-derived
        :class:`~repro.tor.relay.ServiceQueue` to every relay, making
        cross-circuit congestion physically real (needed by the
        Murdoch–Danezis probe experiments; off by default because the
        statistical load model is cheaper and sufficient elsewhere).
        """
        if n_relays < 3:
            raise ConfigurationError("live network needs at least three relays")
        streams = RandomStreams(seed)
        builder = TopologyBuilder(
            streams.get("livetor.topology"), policy_model=PolicyModel()
        )
        topology = builder.build()
        router = Router(topology.graph)
        sim = Simulator()
        latency = LatencyEngine(topology, router, streams)
        fabric = NetworkFabric(sim, latency)

        relay_rng = streams.get("livetor.relays")
        pops_by_region: dict[str, list[int]] = {}
        for pop in topology.pops.values():
            pops_by_region.setdefault(pop.city.region, []).append(pop.pop_id)
        regions = list(TOR_REGION_WEIGHTS)
        region_p = np.array([TOR_REGION_WEIGHTS[r] for r in regions])
        region_p /= region_p.sum()
        type_names = [name for name, _ in HOST_TYPE_MIX]
        type_p = np.array([w for _, w in HOST_TYPE_MIX])
        type_p /= type_p.sum()

        authority = DirectoryAuthority()
        relays: list[Relay] = []
        for index in range(n_relays):
            region = regions[int(relay_rng.choice(len(regions), p=region_p))]
            pop_id = int(relay_rng.choice(pops_by_region[region]))
            host_type = type_names[int(relay_rng.choice(len(type_names), p=type_p))]
            host = builder.attach_random_host(
                topology, f"tor{index:04d}", pop_id, host_type=host_type
            )
            host.rdns = synthesize_rdns(relay_rng, host.address, host_type)
            bandwidth = cls._sample_bandwidth(relay_rng, host_type)
            relay = Relay(
                sim,
                fabric,
                topology,
                host,
                nickname=f"relay{index:04d}",
                bandwidth_kbps=bandwidth,
                exit_policy=cls._sample_exit_policy(relay_rng),
                forwarding_model=cls._sample_forwarding(relay_rng, host_type),
                service_queue=(
                    ServiceQueue(bandwidth_kbytes_s=float(bandwidth))
                    if service_queues
                    else None
                ),
            )
            relays.append(relay)
            # Most relays have been up for a while; ~20% are young.
            age_days = 45.0 if relay_rng.random() > 0.2 else 2.0
            authority.publish(
                relay.descriptor(), now_ms=-age_days * 24 * 3600 * 1000.0
            )

        consensus = authority.make_consensus(now_ms=0.0)
        measurement = MeasurementHost.deploy(
            sim,
            fabric,
            topology,
            builder,
            consensus,
            pop_id=cls._measurement_pop(topology),
            streams=streams,
        )
        geolocation = GeolocationDB.build(
            [r.host for r in relays],
            streams.get("livetor.geolocation"),
            error_fraction=geolocation_error_fraction,
        )
        return cls(
            sim=sim,
            streams=streams,
            topology=topology,
            builder=builder,
            router=router,
            latency=latency,
            fabric=fabric,
            relays=relays,
            authority=authority,
            consensus=consensus,
            measurement=measurement,
            geolocation=geolocation,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _sample_bandwidth(rng: np.random.Generator, host_type: str) -> int:
        """Heavy-tailed consensus bandwidth; data centers skew higher."""
        mu = {"residential": 5.5, "university": 7.0, "hosting": 8.0}[host_type]
        return max(32, int(rng.lognormal(mean=mu, sigma=1.0)))

    @staticmethod
    def _sample_exit_policy(rng: np.random.Generator) -> ExitPolicy:
        draw = rng.random()
        if draw < EXIT_FRACTION:
            # Typical exit: allow most ports, reject SMTP-style ranges.
            return ExitPolicy(
                rules=(
                    ExitRule(accept=False, port_low=25, port_high=25),
                    ExitRule(accept=False, port_low=119, port_high=119),
                    ExitRule(accept=True),
                )
            )
        return ExitPolicy.reject_all()

    @staticmethod
    def _sample_forwarding(
        rng: np.random.Generator, host_type: str
    ) -> ForwardingDelayModel:
        """Residential relays run hotter: slower CPUs, fuller queues."""
        if host_type == "hosting":
            load = float(rng.uniform(0.05, 0.45))
            floor = float(rng.uniform(0.05, 0.5))
        elif host_type == "university":
            load = float(rng.uniform(0.05, 0.5))
            floor = float(rng.uniform(0.1, 0.8))
        else:
            load = float(rng.uniform(0.15, 0.7))
            floor = float(rng.uniform(0.2, 1.5))
        return ForwardingDelayModel(
            rng,
            crypto_floor_ms=floor,
            load=load,
            queue_scale_ms=float(rng.uniform(0.5, 3.0)),
            burst_probability=float(rng.uniform(0.01, 0.05)),
        )

    @staticmethod
    def _measurement_pop(topology: Topology) -> int:
        for pop in topology.pops.values():
            if pop.city.name == "College Park":
                return pop.pop_id
        return 0

    # ------------------------------------------------------------------

    def descriptors(self) -> list[RelayDescriptor]:
        """Every live relay's descriptor."""
        return [relay.descriptor() for relay in self.relays]

    def random_relays(
        self, n: int, rng: np.random.Generator
    ) -> list[RelayDescriptor]:
        """Sample ``n`` distinct relays uniformly at random."""
        if n > len(self.relays):
            raise ConfigurationError(
                f"asked for {n} relays but the network has {len(self.relays)}"
            )
        indices = rng.choice(len(self.relays), size=n, replace=False)
        return [self.relays[int(i)].descriptor() for i in indices]

    def random_pairs(
        self, n_pairs: int, rng: np.random.Generator
    ) -> list[tuple[RelayDescriptor, RelayDescriptor]]:
        """Sample ``n_pairs`` distinct unordered relay pairs."""
        total = len(self.relays)
        max_pairs = total * (total - 1) // 2
        if n_pairs > max_pairs:
            raise ConfigurationError(
                f"asked for {n_pairs} pairs but only {max_pairs} exist"
            )
        seen: set[tuple[int, int]] = set()
        out: list[tuple[RelayDescriptor, RelayDescriptor]] = []
        while len(out) < n_pairs:
            i = int(rng.integers(0, total))
            j = int(rng.integers(0, total))
            if i == j:
                continue
            key = (min(i, j), max(i, j))
            if key in seen:
                continue
            seen.add(key)
            out.append((self.relays[key[0]].descriptor(), self.relays[key[1]].descriptor()))
        return out

    def oracle_rtt(self, a: RelayDescriptor, b: RelayDescriptor) -> float:
        """The simulator's exact Tor-class RTT floor for a relay pair."""
        return self.latency.true_rtt_ms(
            self.topology.host_by_address(a.address),
            self.topology.host_by_address(b.address),
        )

    # ------------------------------------------------------------------

    #: Every named stream drawn from while a probe is in flight. Reseeding
    #: exactly these per task makes a task's delay draws independent of
    #: process history (see :class:`~repro.core.parallel.TaskIsolation`).
    ISOLATION_STREAMS: ClassVar[tuple[str, ...]] = (
        "netsim.latency.jitter",
        "livetor.relays",
        "ting.local-relays",
    )

    def reset_connections(self) -> None:
        """Drop every cached OR connection in the world.

        Connection reuse couples measurement tasks: whichever task runs
        first pays the handshake (and its RNG draws), later tasks do not.
        Dropping the caches before each isolated task makes every task
        start from the same cold-connection state.
        """
        self.measurement.proxy.disconnect_or_conns()
        self.measurement.relay_w.disconnect_or_conns()
        self.measurement.relay_z.disconnect_or_conns()
        for relay in self.relays:
            relay.disconnect_or_conns()

    def task_isolation(self):
        """A :class:`~repro.core.parallel.TaskIsolation` for this world."""
        from repro.core.parallel import TaskIsolation

        return TaskIsolation(
            streams=self.streams,
            stream_names=self.ISOLATION_STREAMS,
            reset=self.reset_connections,
        )
