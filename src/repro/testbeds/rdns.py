"""Reverse-DNS name synthesis for simulated relay hosts.

Section 5.3 classifies relays as residential by their rDNS names
(Schulman et al.'s technique, extended to Europe). To exercise that
classifier, the live-Tor testbed gives each host a name drawn from
realistic provider templates: U.S. and European ISP patterns for
residential hosts, hosting-provider patterns (the exact domains the
paper lists) for data-center hosts, and institutional names for
university hosts. A configurable fraction of hosts get no rDNS at all,
matching the 1150-of-6634 unnamed relays the paper reports.
"""

from __future__ import annotations

import numpy as np

#: U.S. residential templates. ``{o1}..{o4}`` are address octets,
#: ``{n}`` a random small integer, ``{state}`` a U.S. state code.
US_RESIDENTIAL_TEMPLATES: tuple[str, ...] = (
    "c-{o1}-{o2}-{o3}-{o4}.hsd1.{state}.comcast.net",
    "pool-{o1}-{o2}-{o3}-{o4}.nycmny.fios.verizon.net",
    "{o4}.sub-{o1}-{o2}-{o3}.myvzw.com",
    "cpe-{o1}-{o2}-{o3}-{o4}.socal.res.rr.com",
    "ip{o1}-{o2}-{o3}-{o4}.ri.ri.cox.net",
    "{o1}-{o2}-{o3}-{o4}.lightspeed.sntcca.sbcglobal.net",
    "d{o1}-{o2}-{o3}-{o4}.try.wideopenwest.com",
    "{o1}.{o2}.{o3}.{o4}.dyn.centurylink.net",
)

#: European residential templates.
EU_RESIDENTIAL_TEMPLATES: tuple[str, ...] = (
    "p{o1}{o2}{o3}{o4}.dip0.t-ipconnect.de",
    "x{o1}d{o2}{o3}{o4}.dyn.telefonica.de",
    "{o1}-{o2}-{o3}-{o4}.abo.bbox.fr",
    "alyon-{n}-{o3}-{o4}.w{o1}-{o2}.abo.wanadoo.fr",
    "cpc{n}-seve{n}-2-0-cust{o4}.13-3.cable.virginm.net",
    "host{o1}-{o2}-{o3}-{o4}.range86-{n}.btcentralplus.com",
    "{o4}.{o3}.{o2}.{o1}.dynamic.wline.res.cust.swisscom.ch",
    "ip-{o1}-{o2}-{o3}-{o4}.dyn.luna.nl",
    "h-{o1}-{o2}-{o3}-{o4}.na.cust.bahnhof.se",
    "dynamic-adsl-{o1}-{o2}-{o3}-{o4}.clienti.tiscali.it",
)

#: Hosting/data-center templates; domains match the paper's list.
HOSTING_TEMPLATES: tuple[str, ...] = (
    "li{n}-{o4}.members.linode.com",
    "ec2-{o1}-{o2}-{o3}-{o4}.compute-1.amazonaws.com",
    "ns{n}.ovh.net",
    "{n}.ip-{o1}-{o2}-{o3}.eu.ovh.com",
    "server{n}.cloudatcost.com",
    "static.{o4}.{o3}.{o2}.{o1}.clients.your-server.de",
    "hosted-by.leaseweb.com",
    "vps{n}.stratus-cloud.example.net",
)

#: University/institutional templates (neither residential nor hosting).
UNIVERSITY_TEMPLATES: tuple[str, ...] = (
    "planetlab{n}.cs.example-u.edu",
    "node{n}.research.example.ac.uk",
    "gw.cs.example-tech.edu",
    "relay{n}.net.example-institute.org",
)

_US_STATES = ("ca", "md", "ma", "ny", "tx", "wa", "il", "ga", "fl", "co", "or", "pa")


def synthesize_rdns(
    rng: np.random.Generator,
    address: str,
    host_type: str,
    unnamed_fraction: float = 0.17,
) -> str | None:
    """Generate a plausible rDNS name for a host, or ``None``.

    ``unnamed_fraction`` of hosts get no name regardless of type,
    mirroring the share of live relays with no PTR record.
    """
    if rng.random() < unnamed_fraction:
        return None
    o1, o2, o3, o4 = address.split(".")
    if host_type == "residential":
        templates = (
            US_RESIDENTIAL_TEMPLATES
            if rng.random() < 0.45
            else EU_RESIDENTIAL_TEMPLATES
        )
    elif host_type == "hosting":
        templates = HOSTING_TEMPLATES
    else:
        templates = UNIVERSITY_TEMPLATES
    template = templates[int(rng.integers(0, len(templates)))]
    return template.format(
        o1=o1,
        o2=o2,
        o3=o3,
        o4=o4,
        n=int(rng.integers(1, 999)),
        state=_US_STATES[int(rng.integers(0, len(_US_STATES)))],
    )
