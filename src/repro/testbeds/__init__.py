"""Testbed builders: assembled worlds the experiments run in.

* :class:`PlanetLabTestbed` — the Section 4.1 ground-truth environment:
  31 geographically diverse relays on shared university infrastructure,
  plus the Ting measurement host, plus ping-based ground truth.
* :class:`LiveTorTestbed` — a live-Tor-shaped network: many volunteer
  relays (residential-heavy, bandwidth-skewed) for the Sections 4.4–4.6
  and Section 5 experiments.
* :class:`GeolocationDB` — a synthetic IP-geolocation service with a
  configurable error rate (the paper's Neustar stand-in).
* :mod:`repro.testbeds.rdns` — reverse-DNS name synthesis for the
  Section 5.3 residential-classification study.
"""

from repro.testbeds.churn import ChurnProcess
from repro.testbeds.geolocation import GeolocationDB
from repro.testbeds.planetlab import PlanetLabTestbed
from repro.testbeds.livetor import LiveTorTestbed

__all__ = ["ChurnProcess", "GeolocationDB", "PlanetLabTestbed", "LiveTorTestbed"]
