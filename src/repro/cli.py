"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the paper's tool was used operationally:

* ``validate`` — ground-truth accuracy check (the Figure 3 experiment,
  small scale): build the PlanetLab-style testbed, measure all pairs,
  compare against ping.
* ``measure`` — run an all-pairs Ting campaign over a random live-relay
  sample and optionally write the RTT matrix to JSON.
* ``tiv`` — analyze a measured matrix (from ``measure --output``) for
  triangle-inequality violations.
* ``deanon`` — replay the Section 5.1 deanonymization strategies over a
  measured matrix.
* ``coverage`` — synthesize a consensus archive and print the
  Section 5.3 coverage statistics.
* ``stats`` — run an instrumented concurrent all-pairs campaign and
  report the observability counters (circuits, probes, losses, cache
  hits, heap compactions), optionally exporting the full metrics
  snapshot as JSON. ``--workers N`` routes the same instrumented run
  through the sharded multiprocess path and reports the *merged*
  registry.
* ``report`` — run (or load) an instrumented campaign and emit the
  fused run report: accuracy vs the simulator's ground truth, failure
  breakdown, slowest pairs, shard balance, span summary; optionally
  exporting report JSON, a Perfetto-loadable span trace, and the
  matrix+provenance dataset.
* ``tail`` — render an ``--events`` JSONL stream as console lines,
  with severity/category/``--since`` filters and an optional
  ``--follow`` mode; pointed at a saved campaign dataset (JSON or
  ``.npz``, sniffed) it replays the provenance history as events.
* ``plan`` — score every pair of a relay set against an existing
  campaign dataset (coverage, staleness, predicted-vs-measured
  disagreement, ``--quality`` data-quality deficit) and emit a
  prioritized, budgeted pair list; with ``--run``, measure the planned
  pairs as a sharded campaign and fold the results back into the
  dataset (incremental refresh).
* ``health`` — grade a saved campaign dataset's data quality: the
  ``repro.obs.health`` scorecard (coverage, symmetry, physical
  plausibility, TIV rate, staleness, per-pair quality percentiles),
  a drift diff against a ``--baseline`` version, and ``--check``
  exit-code gating for CI.
* ``serve`` — answer latency queries against a saved campaign dataset
  through the read-optimized ``repro.serve`` index: one-shot queries
  (``point A B``, ``knn A [K]``, ``percentile A Q``, ``path A B C``,
  ``via A B [K]``, ``freshness``), a ``--batch`` JSONL mode fanned out
  across ``--workers`` forked processes, ``--mmap`` to share one page-
  cache copy of the npz matrix between them, and ``--selftest`` — the
  CI gate that re-answers sampled queries with brute-force references
  and checks mmap/fork invariance.

Output conventions: machine-readable results (reports, metric
listings, ``tail`` lines) go to **stdout**; human-facing progress
chatter goes to **stderr** and is silenced by the global ``--quiet``
flag — so ``repro report --quiet > report.txt`` stays clean.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.analysis.stats import fraction_within, spearman_rank_correlation
from repro.apps.coverage import ResidentialClassifier, synthesize_archive
from repro.apps.deanon import STRATEGIES, DeanonymizationSimulator
from repro.apps.tiv import tiv_summary
from repro.core.campaign import AllPairsCampaign, ProbeBudget
from repro.core.dataset import CampaignDataset, RttMatrix
from repro.core.parallel import ParallelCampaign
from repro.core.planner import CampaignPlanner
from repro.core.sampling import SamplePolicy
from repro.core.shard import CampaignTelemetry, ShardedCampaign
from repro.core.ting import TingMeasurer
from repro.obs import (
    Event,
    JsonlSink,
    ProgressTracker,
    format_event,
    severity_level,
)
from repro.testbeds.livetor import LiveTorTestbed
from repro.testbeds.planetlab import PlanetLabTestbed


#: ``--policy`` choices shared by measure/stats/report.
POLICY_CHOICES = ("fixed", "adaptive-1ms", "adaptive-5pct")

#: ``--min-severity`` choices for ``tail``.
SEVERITY_CHOICES = ("debug", "info", "warning", "error")


def _status(args: argparse.Namespace) -> Callable[..., None]:
    """The human-facing progress channel: stderr, silenced by ``--quiet``.

    Every command routes its progress chatter through this, keeping
    stdout reserved for machine-readable output (reports, metric
    listings, ``tail`` lines) so pipelines stay clean.
    """
    if getattr(args, "quiet", False):
        return lambda message="": None
    return lambda message="": print(message, file=sys.stderr)


def _write_json_artifact(
    path: Path, text: str, label: str, status: Callable[..., None]
) -> None:
    """Write one JSON artifact and announce it on the status channel.

    The single output-writing path shared by ``stats`` and ``report``
    (snapshot, report JSON) so the write-then-announce idiom cannot
    drift between commands.
    """
    path.write_text(text)
    status(f"{label} written to {path}")


def _progress_sink(
    tracker: ProgressTracker, stream=None
) -> Callable[[Event], None]:
    """An event-bus sink driving a live one-line progress display.

    Tracks an unsharded campaign as shard 0 with absolute totals — the
    same idempotent contract the forked workers' heartbeats use. The
    line redraws in place (``\\r``) on every pair completion.
    """
    out = stream if stream is not None else sys.stderr
    state = {"done": 0, "failed": 0, "sent": 0, "saved": 0}

    def sink(event: Event) -> None:
        if event.kind == "pair_measured" and event.category in ("ting", "campaign"):
            state["done"] += 1
        elif event.kind == "pair_failed" and event.category == "campaign":
            state["done"] += 1
            state["failed"] += 1
        elif event.category == "probe" and event.kind in (
            "round_finished", "round_failed"
        ):
            state["sent"] += int(event.fields.get("sent", 0))
            state["saved"] += int(event.fields.get("saved", 0))
            return  # probes tick silently; the line redraws per pair
        else:
            return
        tracker.update_shard(
            0,
            pairs_done=state["done"],
            pairs_failed=state["failed"],
            probes_sent=state["sent"],
            probes_saved=state["saved"],
        )
        print(f"\r  {tracker.render()}", end="", file=out, flush=True)

    return sink


def _render_heartbeat_progress(stream=None) -> Callable[[ProgressTracker], None]:
    """An ``on_progress`` callback for sharded runs: redraw per heartbeat."""
    out = stream if stream is not None else sys.stderr

    def render(tracker: ProgressTracker) -> None:
        print(f"\r  {tracker.render()}", end="", file=out, flush=True)

    return render


def _geo_meta(testbed, relays) -> dict[str, list[float]]:
    """``meta["geo"]``: fingerprint → [lat, lon] from the testbed's
    geolocation database, for the health layer's light-time check.

    The coordinates persist with the dataset (meta survives both JSON
    and npz), so ``repro health`` can run the physical-plausibility
    check on a reloaded dataset with no testbed around.
    """
    db = getattr(testbed, "geolocation", None)
    if db is None:
        return {}
    geo: dict[str, list[float]] = {}
    for descriptor in relays:
        try:
            point = db.lookup(descriptor.address)
        except KeyError:
            continue
        geo[descriptor.fingerprint] = [point.lat, point.lon]
    return geo


def resolve_policy(name: str, samples: int) -> SamplePolicy:
    """Map a ``--policy`` choice to a :class:`SamplePolicy`.

    ``fixed`` keeps the historical fixed-count behaviour bit for bit;
    the adaptive choices treat ``--samples`` as the cap and stop early
    on convergence (Section 4.4). ``min_samples`` is clamped to the cap
    so small ``--samples`` values stay valid.
    """
    if name == "fixed":
        return SamplePolicy(samples=samples)
    if name == "adaptive-1ms":
        return SamplePolicy.adaptive_1ms(
            max_samples=samples, min_samples=min(10, samples)
        )
    if name == "adaptive-5pct":
        return SamplePolicy.adaptive_5pct(
            max_samples=samples, min_samples=min(10, samples)
        )
    raise ValueError(f"unknown policy {name!r}")


def _add_policy_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--policy", choices=POLICY_CHOICES, default="fixed",
        help="probe policy: fixed count, or convergence-triggered "
             "early stopping at the 1 ms / 5%% tolerance "
             "(--samples becomes the cap)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ting (IMC'15) reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=2015, help="root RNG seed")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="silence progress chatter on stderr "
                             "(machine output on stdout is unaffected)")
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="ground-truth accuracy check")
    validate.add_argument("--relays", type=int, default=8)
    validate.add_argument("--samples", type=int, default=100)

    measure = sub.add_parser("measure", help="all-pairs Ting campaign")
    measure.add_argument("--relays", type=int, default=10)
    measure.add_argument("--network-size", type=int, default=60)
    measure.add_argument("--samples", type=int, default=50)
    _add_policy_flag(measure)
    measure.add_argument("--probe-budget", type=int, default=None,
                         help="campaign-wide probe allowance; as it runs "
                              "low, remaining pairs degrade to coarser "
                              "tolerances and smaller caps")
    measure.add_argument("--progress", action="store_true",
                         help="live progress line on stderr (pairs done, "
                              "probe totals, EWMA rate, ETA)")
    measure.add_argument("--events", type=Path, default=None,
                         help="stream campaign telemetry events to this "
                              "JSONL file (read it with 'repro tail')")
    measure.add_argument("--output", type=Path, default=None)

    tiv = sub.add_parser("tiv", help="TIV analysis of a measured matrix")
    tiv.add_argument("matrix", type=Path)

    deanon = sub.add_parser("deanon", help="deanonymization replay")
    deanon.add_argument("matrix", type=Path)
    deanon.add_argument("--runs", type=int, default=300)

    coverage = sub.add_parser("coverage", help="network coverage statistics")
    coverage.add_argument("--days", type=int, default=30)
    coverage.add_argument("--relays", type=int, default=3000)

    bench = sub.add_parser(
        "bench", help="time representative workloads; write BENCH_ting.json"
    )
    bench.add_argument("--relays", type=int, default=60,
                       help="relays in the campaign workloads")
    bench.add_argument("--samples", type=int, default=6,
                       help="probe samples per circuit measurement")
    bench.add_argument("--workers", type=int, default=4,
                       help="worker processes for the sharded workload")
    bench.add_argument("--output", type=Path, default=Path("BENCH_ting.json"),
                       help="where to write the bench report")
    bench.add_argument("--check", action="store_true",
                       help="compare against the baseline; exit nonzero on "
                            ">2x wall-time regression")
    bench.add_argument("--baseline", type=Path, default=Path("BENCH_ting.json"),
                       help="baseline report for --check")

    stats = sub.add_parser(
        "stats", help="instrumented campaign with metrics report"
    )
    stats.add_argument("--relays", type=int, default=8)
    stats.add_argument("--network-size", type=int, default=40)
    stats.add_argument("--samples", type=int, default=20)
    stats.add_argument("--concurrency", type=int, default=4)
    _add_policy_flag(stats)
    stats.add_argument("--probe-budget", type=int, default=None,
                       help="campaign-wide probe allowance (unsharded "
                            "runs only)")
    stats.add_argument("--workers", type=int, default=0,
                       help="run the sharded multiprocess path with N "
                            "workers and report the merged metrics "
                            "(0 = unsharded concurrent campaign)")
    stats.add_argument("--output", type=Path, default=None,
                       help="write the full metrics snapshot as JSON")
    stats.add_argument("--format", choices=("table", "prom"), default="table",
                       help="stdout format: human-readable table, or "
                            "Prometheus text exposition for scraping")

    report = sub.add_parser(
        "report", help="fused run report: accuracy, failures, spans, shards"
    )
    report.add_argument("--relays", type=int, default=8)
    report.add_argument("--network-size", type=int, default=40)
    report.add_argument("--samples", type=int, default=10)
    _add_policy_flag(report)
    report.add_argument("--workers", type=int, default=2,
                        help="worker processes for the instrumented "
                             "sharded campaign")
    report.add_argument("--top", type=int, default=5,
                        help="slowest pairs to list")
    report.add_argument("--input", type=Path, default=None,
                        help="report on a saved campaign dataset instead "
                             "of running a new campaign")
    report.add_argument("--no-ground-truth", action="store_true",
                        help="skip the accuracy-vs-oracle section")
    report.add_argument("--json", type=Path, default=None, dest="json_out",
                        help="write the report as JSON")
    report.add_argument("--spans", type=Path, default=None,
                        help="write the span trace as Chrome trace-event "
                             "JSON (open in ui.perfetto.dev)")
    report.add_argument("--output", type=Path, default=None,
                        help="write the matrix+provenance dataset as JSON")
    report.add_argument("--progress", action="store_true",
                        help="live progress line on stderr, fed by worker "
                             "heartbeats streamed across the fork boundary")
    report.add_argument("--events", type=Path, default=None,
                        help="stream worker telemetry events to this JSONL "
                             "file (read it with 'repro tail')")
    report.add_argument("--worker-timeout", type=float, default=None,
                        help="fail the campaign if a shard worker has not "
                             "finished after this many wall seconds")

    plan = sub.add_parser(
        "plan", help="prioritized, budgeted pair plan (optional refresh run)"
    )
    plan.add_argument("--relays", type=int, default=60)
    plan.add_argument("--network-size", type=int, default=100)
    plan.add_argument("--budget", type=int, default=None,
                      help="max pairs to plan (default: every pair with a "
                           "positive score)")
    plan.add_argument("--input", type=Path, default=None,
                      help="existing campaign dataset to refresh "
                           "(JSON or .npz; format auto-detected)")
    plan.add_argument("--predict", action="store_true",
                      help="train a Vivaldi coordinate model on the dataset "
                           "and steer the plan toward predicted-vs-measured "
                           "disagreement")
    plan.add_argument("--top", type=int, default=10,
                      help="planned pairs to print")
    plan.add_argument("--json", type=Path, default=None, dest="json_out",
                      help="write the plan (summary + scored pair list) as "
                           "JSON")
    plan.add_argument("--run", action="store_true",
                      help="measure the planned pairs as a sharded campaign "
                           "and fold the results into the dataset")
    plan.add_argument("--samples", type=int, default=6)
    plan.add_argument("--workers", type=int, default=2,
                      help="worker processes for --run")
    plan.add_argument("--output", type=Path, default=None,
                      help="write the refreshed dataset here "
                           "(.npz suffix = binary format)")
    plan.add_argument("--quality", action="store_true",
                      help="score per-pair data quality from the dataset's "
                           "provenance (repro.obs.health) and refresh "
                           "low-quality estimates first")
    _add_policy_flag(plan)

    tail = sub.add_parser(
        "tail", help="render an --events JSONL stream as console lines"
    )
    tail.add_argument("events", type=Path,
                      help="events JSONL file — or a saved campaign dataset "
                           "(JSON or .npz, sniffed), whose provenance "
                           "history is replayed as events")
    tail.add_argument("--min-severity", choices=SEVERITY_CHOICES,
                      default="debug", help="hide events below this severity")
    tail.add_argument("--category", default=None,
                      help="only events in this category (e.g. campaign)")
    tail.add_argument("--kind", default=None,
                      help="only events of this kind (e.g. pair_measured)")
    tail.add_argument("--since", type=float, default=None,
                      help="only events at or after this sim-ms timestamp "
                           "(for dataset replays: the provenance row index)")
    tail.add_argument("--follow", "-f", action="store_true",
                      help="keep reading as the file grows (Ctrl-C to stop; "
                           "ignored for dataset inputs)")

    health = sub.add_parser(
        "health", help="data-quality scorecard + drift diff for a dataset"
    )
    health.add_argument("--input", type=Path, required=True,
                        help="campaign dataset to grade (JSON or .npz; "
                             "format auto-detected)")
    health.add_argument("--baseline", type=Path, default=None,
                        help="older dataset version: also emit the drift "
                             "diff (node churn, per-pair deltas, quality "
                             "regressions)")
    health.add_argument("--stale-after", type=int, default=None,
                        help="pair age in provenance rows past which it "
                             "counts as stale (default: one full sweep)")
    health.add_argument("--json", type=Path, default=None, dest="json_out",
                        help="write the scorecard (and drift diff) as JSON")
    health.add_argument("--check", action="store_true",
                        help="exit nonzero if any check grades FAIL "
                             "(the CI gate)")

    serve = sub.add_parser(
        "serve", help="answer latency queries against a saved dataset"
    )
    serve.add_argument("--input", type=Path, required=True,
                       help="campaign dataset to serve (JSON or .npz; "
                            "format auto-detected)")
    serve.add_argument("query", nargs="*", default=[],
                       help="one-shot query: point A B | knn A [K] | "
                            "percentile A Q | path A B C... | via A B [K] "
                            "| freshness")
    serve.add_argument("--batch", type=Path, default=None,
                       help="answer a JSONL file of query dicts "
                            "('-' = stdin); one JSON answer per line")
    serve.add_argument("--selftest", action="store_true",
                       help="verify the serve stack against brute-force "
                            "references plus mmap/fork invariance; exit "
                            "nonzero on any mismatch (the CI gate)")
    serve.add_argument("--workers", type=int, default=1,
                       help="forked query workers for --batch/--selftest")
    serve.add_argument("--mmap", action="store_true",
                       help="memory-map the npz matrix so workers share "
                            "one page-cache copy (no effect on JSON)")
    serve.add_argument("--stats", action="store_true",
                       help="record query telemetry and print a summary "
                            "(per-op latency quantiles, error taxonomy, "
                            "slow-query count) to stderr after answering")
    serve.add_argument("--slow-ms", type=float, default=1.0,
                       help="access-log threshold in ms: queries at or "
                            "above it ring as serve.slow_query events "
                            "(default 1.0)")
    serve.add_argument("--telemetry", type=Path, default=None,
                       help="write recorded telemetry here: a .prom suffix "
                            "gets Prometheus text exposition, anything "
                            "else JSONL (summary line, access-log events, "
                            "sampled spans)")
    serve.add_argument("--sample-every", type=int, default=100,
                       help="keep one latency span per N queries "
                            "(0 disables span sampling; default 100)")

    return parser


def cmd_validate(args: argparse.Namespace) -> int:
    """``validate``: Figure 3-style accuracy check vs ping."""
    status = _status(args)
    status(f"Building {args.relays}-relay ground-truth testbed (seed {args.seed}) ...")
    testbed = PlanetLabTestbed.build(seed=args.seed, n_relays=args.relays)
    measurer = TingMeasurer(
        testbed.measurement, policy=SamplePolicy(samples=args.samples)
    )
    estimates, pings = [], []
    pairs = testbed.relay_pairs()
    for index, (a, b) in enumerate(pairs):
        estimates.append(measurer.measure_pair(a, b).rtt_ms)
        pings.append(testbed.ping_ground_truth(a, b))
        status(f"  [{index + 1}/{len(pairs)}] {a.nickname}-{b.nickname}: "
               f"ting={estimates[-1]:.1f} ms ping={pings[-1]:.1f} ms")
    within = fraction_within(estimates, pings, 0.10)
    rho = spearman_rank_correlation(estimates, pings)
    print(f"within 10% of ping: {within:.1%} (paper: 91%)")
    print(f"Spearman rank correlation: {rho:.4f} (paper: 0.997)")
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    """``measure``: run an all-pairs Ting campaign."""
    status = _status(args)
    status(f"Building live-Tor-style network ({args.network_size} relays) ...")
    testbed = LiveTorTestbed.build(seed=args.seed, n_relays=args.network_size)
    rng = testbed.streams.get("cli.selection")
    relays = testbed.random_relays(args.relays, rng)
    measurer = TingMeasurer(
        testbed.measurement,
        policy=resolve_policy(args.policy, args.samples),
        cache_legs=True,
    )
    budget = (
        ProbeBudget(total=args.probe_budget)
        if args.probe_budget is not None
        else None
    )
    pairs = args.relays * (args.relays - 1) // 2
    jsonl = None
    if args.progress or args.events is not None:
        bus = testbed.measurement.enable_events()
        if args.events is not None:
            jsonl = JsonlSink(args.events)
            bus.add_sink(jsonl)
        if args.progress and not args.quiet:
            bus.add_sink(_progress_sink(ProgressTracker(pairs)))
    status(f"Measuring all {pairs} pairs ({args.policy} policy) ...")
    try:
        report = AllPairsCampaign(measurer, relays, rng=rng, budget=budget).run()
    finally:
        if args.progress and not args.quiet:
            print(file=sys.stderr)  # end the \r progress line
        if jsonl is not None:
            jsonl.close()
    matrix = report.matrix
    status(f"  measured {report.pairs_measured} pairs, "
           f"{len(report.failures)} failures, "
           f"mean RTT {matrix.mean_rtt_ms():.1f} ms, "
           f"{report.duration_ms / 60000:.1f} simulated minutes")
    if report.probes_saved:
        status(f"  probes sent {report.probes_sent}, "
               f"saved {report.probes_saved} by early stopping")
    if budget is not None:
        status(f"  probe budget: {budget.spent}/{budget.total} spent, "
               f"{budget.degraded_tasks} pair(s) degraded")
    if args.events is not None:
        status(f"  events written to {args.events}")
    if args.output is not None:
        matrix.save(args.output)
        status(f"  matrix written to {args.output}")
    return 0


def cmd_tiv(args: argparse.Namespace) -> int:
    """``tiv``: TIV analysis of a saved RTT matrix."""
    matrix = RttMatrix.load(args.matrix)
    summary = tiv_summary(matrix)
    print(f"nodes: {len(matrix)}  pairs: {int(summary['pairs'])}")
    print(f"pairs with a TIV: {summary['tiv_fraction']:.1%} (paper: 69%)")
    print(f"median detour saving: {summary['median_savings_fraction']:.1%} "
          "(paper: 7.5%)")
    print(f"top-decile saving: {summary['p90_savings_fraction']:.1%} "
          "(paper: >= 28%)")
    return 0


def cmd_deanon(args: argparse.Namespace) -> int:
    """``deanon``: replay the Section 5.1 strategies."""
    matrix = RttMatrix.load(args.matrix)
    simulator = DeanonymizationSimulator(matrix, np.random.default_rng(args.seed))
    results = simulator.evaluate_all(runs=args.runs)
    print(f"{args.runs} victim circuits over {len(matrix)} nodes:")
    for strategy in STRATEGIES:
        fractions = [r.fraction_tested for r in results[strategy]]
        print(f"  {strategy:<10} median fraction probed: "
              f"{float(np.median(fractions)):.1%}")
    unaware = np.median([r.fraction_tested for r in results["unaware"]])
    informed = np.median([r.fraction_tested for r in results["informed"]])
    print(f"speedup: {unaware / informed:.2f}x (paper: 1.5x)")
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    """``coverage``: Section 5.3 network-coverage statistics."""
    archive = synthesize_archive(
        np.random.default_rng(args.seed),
        n_days=args.days,
        initial_relays=args.relays,
    )
    days, totals, uniques = archive.series()
    classifier = ResidentialClassifier()
    residential = classifier.residential_fraction_of_named(archive.latest)
    print(f"{args.days}-day archive, ~{args.relays} relays:")
    print(f"  total relays: {min(totals)}-{max(totals)}")
    print(f"  unique /24s: {min(uniques)}-{max(uniques)} "
          "(paper window: 5426-6044)")
    print(f"  residential share of named relays: {residential:.1%} (paper: 61%)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``bench``: time the hot-path workloads, write/check the report."""
    from repro import bench as bench_mod

    status = _status(args)
    if args.check and not args.baseline.exists():
        # Fail before spending minutes on workloads nothing will judge.
        print(f"baseline {args.baseline} not found", file=sys.stderr)
        return 2
    status(f"Running bench workloads (relays={args.relays}, "
           f"samples={args.samples}, workers={args.workers}) ...")
    report = bench_mod.run_bench(
        seed=args.seed,
        relays=args.relays,
        samples=args.samples,
        workers=args.workers,
        progress=status,
    )
    if args.check:
        baseline = bench_mod.load_report(args.baseline)
        problems = bench_mod.check_regressions(report, baseline)
        problems += bench_mod.check_cross_workload(report)
        problems += bench_mod.check_pair_cost(report)
        problems += bench_mod.check_serve_qps(report)
        problems += bench_mod.check_serve_latency(report)
        if problems:
            print("\nperformance regressions detected:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        status(f"\nno regressions vs {args.baseline} "
               f"(threshold {bench_mod.REGRESSION_FACTOR:g}x; sharded >= "
               f"{bench_mod.CROSS_WORKLOAD_MARGIN:g}x parallel throughput)")
        return 0
    bench_mod.save_report(report, args.output)
    status(f"\nbench report written to {args.output}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``stats``: instrumented concurrent campaign + metrics report.

    With ``--workers N`` the same instrumented campaign runs through
    :class:`ShardedCampaign` and the *merged* registry is reported —
    deterministic counters (pairs attempted/measured, leg cache hits)
    match the single-process run exactly, which is the property the
    shard-invariance tests pin down.
    """
    status = _status(args)
    status(f"Building live-Tor-style network ({args.network_size} relays) ...")
    pairs = args.relays * (args.relays - 1) // 2
    policy = resolve_policy(args.policy, args.samples)
    if args.workers >= 1:
        if args.probe_budget is not None:
            # A shared mutable budget cannot cross process boundaries —
            # and splitting it would break shard invariance.
            print("--probe-budget requires an unsharded run (--workers 0)",
                  file=sys.stderr)
            return 2
        factory = functools.partial(
            LiveTorTestbed.build, seed=args.seed, n_relays=args.network_size
        )
        testbed = factory()
        rng = testbed.streams.get("cli.selection")
        relays = testbed.random_relays(args.relays, rng)
        status(f"Measuring all {pairs} pairs "
               f"({args.workers} workers, instrumented) ...")
        sharded = ShardedCampaign(
            factory,
            [d.fingerprint for d in relays],
            policy=policy,
            workers=args.workers,
            observe=True,
        ).run()
        registry = sharded.metrics
        trace = sharded.trace
        status(f"  measured {sharded.pairs_measured}/{sharded.pairs_attempted} "
               f"pairs, {len(sharded.failures)} failures, "
               f"merged from {len(sharded.shards)} shard(s)")
    else:
        testbed = LiveTorTestbed.build(seed=args.seed, n_relays=args.network_size)
        host = testbed.measurement
        registry = host.enable_observability()
        trace = host.trace
        rng = testbed.streams.get("cli.selection")
        relays = testbed.random_relays(args.relays, rng)
        status(f"Measuring all {pairs} pairs "
               f"(concurrency {args.concurrency}, instrumented) ...")
        budget = (
            ProbeBudget(total=args.probe_budget)
            if args.probe_budget is not None
            else None
        )
        report = ParallelCampaign(
            host,
            relays,
            policy=policy,
            concurrency=args.concurrency,
            budget=budget,
        ).run()
        status(f"  measured {report.pairs_measured}/{report.pairs_attempted} "
               f"pairs, {len(report.failures)} failures, "
               f"{report.makespan_ms / 60000:.1f} simulated minutes")
        if budget is not None:
            status(f"  probe budget: {budget.spent}/{budget.total} spent, "
                   f"{budget.degraded_tasks} task(s) degraded")

    snapshot = registry.snapshot()
    if args.format == "prom":
        from repro.obs.registry import prometheus_exposition

        print(prometheus_exposition(snapshot), end="")
        if args.output is not None:
            _write_json_artifact(
                args.output, json.dumps(snapshot, indent=2),
                "  metrics snapshot", status,
            )
        return 0
    counters = snapshot["counters"]
    print("\ncampaign metrics:")
    for name in (
        "tor.circuits_built",
        "tor.circuits_failed",
        "tor.streams_attached",
        "echo.probes_sent",
        "echo.probes_received",
        "echo.probes_lost",
        "echo.early_stops",
        "ting.probes_saved",
        "ting.leg_cache_lookups",
        "ting.leg_cache_hits",
        "ting.leg_cache_misses",
        "sim.heap_compactions",
    ):
        print(f"  {name:<24} {counters.get(name, 0)}")
    sent = counters.get("echo.probes_sent", 0)
    lost = counters.get("echo.probes_lost", 0)
    if sent:
        print(f"  {'probe loss rate':<24} {lost / sent:.2%}")
    rtt = registry.histogram("echo.rtt_ms")
    if rtt is not None and rtt.count:
        cuts = rtt.quantiles()
        print(f"  {'probe RTT mean':<24} {rtt.mean:.1f} ms "
              f"(p50~{cuts['p50']:.1f} ms, p95~{cuts['p95']:.1f} ms)")
    if snapshot["histograms"]:
        print("\nlatency quantiles (bucket-interpolated):")
        for name in sorted(snapshot["histograms"]):
            histogram = registry.histogram(name)
            if histogram is None or not histogram.count:
                continue
            cuts = histogram.quantiles()
            print(f"  {name:<24} p50={cuts['p50']:.2f}  p95={cuts['p95']:.2f}  "
                  f"p99={cuts['p99']:.2f} ms  (n={histogram.count})")
    gauges = snapshot["gauges"]
    for name in ("campaign.peak_concurrency", "sim.heap_peak",
                 "sim.events_processed"):
        if name in gauges:
            print(f"  {name:<24} {gauges[name]:g}")
    print(f"  {'trace events retained':<24} {len(trace)}")

    if args.output is not None:
        _write_json_artifact(
            args.output, json.dumps(snapshot, indent=2),
            "  metrics snapshot", status,
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``report``: run an instrumented campaign, emit the fused report.

    Default mode runs an observed :class:`ShardedCampaign` and fuses
    merged metrics + spans + provenance + shard balance + the
    simulator's oracle RTTs into one report. ``--input`` instead
    re-reports a saved :class:`CampaignDataset` (matrix + provenance
    only — spans and shard data do not persist in datasets).
    """
    from repro.obs.report import build_report

    status = _status(args)
    if args.input is not None:
        from repro.obs.health import health_report

        dataset = CampaignDataset.load(args.input)
        report = build_report(
            dataset.matrix,
            provenance=dataset.provenance,
            pairs_attempted=dataset.meta.get("pairs_attempted"),
            makespan_ms=dataset.meta.get("makespan_ms"),
            top_n=args.top,
            health=health_report(dataset, seed=args.seed),
        )
        print(report.render_text())
        if args.json_out is not None:
            _write_json_artifact(
                args.json_out, report.to_json(), "\nreport JSON", status
            )
        return 0

    status(f"Building live-Tor-style network ({args.network_size} relays) ...")
    factory = functools.partial(
        LiveTorTestbed.build, seed=args.seed, n_relays=args.network_size
    )
    testbed = factory()
    rng = testbed.streams.get("cli.selection")
    relays = testbed.random_relays(args.relays, rng)
    pairs = args.relays * (args.relays - 1) // 2
    status(f"Measuring all {pairs} pairs "
           f"({max(1, args.workers)} worker(s), instrumented) ...")
    telemetry = None
    jsonl = None
    if args.progress or args.events is not None:
        telemetry = CampaignTelemetry()
        if args.progress and not args.quiet:
            telemetry.on_progress = _render_heartbeat_progress()
        if args.events is not None:
            from repro.obs import EventBus

            jsonl = JsonlSink(args.events)
            telemetry.bus = EventBus(capacity=4096)
            telemetry.bus.add_sink(jsonl)
    try:
        sharded = ShardedCampaign(
            factory,
            [d.fingerprint for d in relays],
            policy=resolve_policy(args.policy, args.samples),
            workers=args.workers,
            observe=True,
            telemetry=telemetry,
            worker_timeout_s=args.worker_timeout,
        ).run()
    finally:
        if args.progress and not args.quiet:
            print(file=sys.stderr)  # end the \r progress line
        if jsonl is not None:
            jsonl.close()
    if args.events is not None:
        status(f"events written to {args.events}")

    ground_truth = None
    if not args.no_ground_truth:
        ground_truth = RttMatrix([d.fingerprint for d in relays])
        for i, a in enumerate(relays):
            for b in relays[i + 1:]:
                ground_truth.set(
                    a.fingerprint, b.fingerprint, testbed.oracle_rtt(a, b)
                )

    report = build_report(
        sharded.matrix,
        metrics=sharded.metrics,
        spans=sharded.spans,
        provenance=sharded.provenance,
        trace=sharded.trace,
        shards=sharded.shards,
        ground_truth=ground_truth,
        pairs_attempted=sharded.pairs_attempted,
        top_n=args.top,
    )
    print(report.render_text())
    if args.json_out is not None:
        _write_json_artifact(
            args.json_out, report.to_json(), "\nreport JSON", status
        )
    if args.spans is not None:
        sharded.spans.save(args.spans)
        status(f"span trace written to {args.spans} "
               "(open in ui.perfetto.dev)")
    if args.output is not None:
        CampaignDataset(
            matrix=sharded.matrix,
            provenance=sharded.provenance,
            meta={
                "seed": args.seed,
                "network_size": args.network_size,
                "relays": args.relays,
                "samples": args.samples,
                "workers": args.workers,
                "pairs_attempted": sharded.pairs_attempted,
                "geo": _geo_meta(testbed, relays),
            },
        ).save(args.output)
        status(f"campaign dataset written to {args.output}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """``plan``: score pairs, cut to a budget, optionally run the refresh.

    The planner reads an existing dataset (``--input``) as the standing
    measurement history: unmeasured pairs score as coverage, previously
    failed pairs as retries, old measurements by provenance age, and —
    with ``--predict`` — pairs where a Vivaldi coordinate model trained
    on the dataset disagrees most with the measured values. Without
    ``--input`` every pair is a cold-start coverage candidate. ``--run``
    measures the planned pairs with the sharded engine and folds matrix
    entries + provenance back into the dataset (``--output`` to save;
    ``.npz`` selects the binary format).
    """
    status = _status(args)
    status(f"Building live-Tor-style network ({args.network_size} relays) ...")
    factory = functools.partial(
        LiveTorTestbed.build, seed=args.seed, n_relays=args.network_size
    )
    testbed = factory()
    rng = testbed.streams.get("cli.selection")
    relays = testbed.random_relays(args.relays, rng)
    fingerprints = [d.fingerprint for d in relays]

    dataset = None
    if args.input is not None:
        dataset = CampaignDataset.load(args.input)
        status(f"loaded dataset: {dataset.matrix.num_measured} measured "
               f"pairs, {len(dataset.provenance)} provenance records")

    predicted = None
    if args.predict:
        if dataset is None or dataset.matrix.num_measured < 1:
            print("--predict needs --input with measured pairs",
                  file=sys.stderr)
            return 2
        from repro.apps.coordinates import VivaldiSystem

        samples = list(dataset.matrix.measured_pairs())
        system = VivaldiSystem(
            dataset.matrix.nodes, testbed.streams.get("cli.vivaldi")
        )
        system.train(samples, rounds=10)
        predicted = system.predict_matrix()
        status(f"Vivaldi model trained on {len(samples)} pairs "
               f"(mean error {system.mean_error():.3f})")

    quality = None
    if args.quality:
        if dataset is None:
            print("--quality needs --input with provenance history",
                  file=sys.stderr)
            return 2
        quality = dataset.quality()
        status(f"quality scored {quality.summary()['scored_pairs']} pairs "
               f"from provenance")

    planner = CampaignPlanner(
        fingerprints, dataset=dataset, predicted=predicted, seed=args.seed,
        quality=quality,
    )
    plan = planner.plan(budget_pairs=args.budget)
    summary = plan.summary()
    print(f"plan: {summary['planned']} of {summary['candidates']} candidate "
          f"pairs (budget {summary['budget'] or 'none'})")
    print(f"  unmeasured={summary['unmeasured']} failed={summary['failed']} "
          f"with_history={summary['with_history']} "
          f"with_predictions={summary['with_predictions']} "
          f"with_quality={summary['with_quality']}")
    for (a, b), score in list(zip(plan.pairs, plan.scores))[: args.top]:
        print(f"  {score:8.4f}  {a[:16]} - {b[:16]}")
    if args.json_out is not None:
        _write_json_artifact(
            args.json_out,
            json.dumps(
                {
                    "summary": summary,
                    "pairs": [
                        [a, b, round(float(s), 6)]
                        for (a, b), s in zip(plan.pairs, plan.scores)
                    ],
                },
                indent=2,
            ),
            "\nplan JSON",
            status,
        )

    if not args.run:
        return 0
    if not plan.pairs:
        print("nothing to refresh: every pair is fresh under the plan")
        return 0

    status(f"Measuring {len(plan.pairs)} planned pairs "
           f"({max(1, args.workers)} worker(s)) ...")
    sharded = ShardedCampaign(
        factory,
        fingerprints,
        policy=resolve_policy(args.policy, args.samples),
        workers=args.workers,
        pairs=plan.pairs,
        observe=True,
    ).run()
    if dataset is None:
        dataset = CampaignDataset(matrix=RttMatrix(fingerprints))
    updated = dataset.absorb(
        sharded.matrix,
        provenance=sharded.provenance,
        meta={
            "seed": args.seed,
            "network_size": args.network_size,
            "relays": args.relays,
            "samples": args.samples,
            "workers": args.workers,
            "planned_pairs": len(plan.pairs),
            "pairs_attempted": sharded.pairs_attempted,
            # Merge, not replace: a grown dataset may hold coordinates
            # for relays outside this refresh's target set.
            "geo": {**dataset.meta.get("geo", {}), **_geo_meta(testbed, relays)},
        },
    )
    print(f"refreshed {updated} pair entries "
          f"({sharded.pairs_measured} measured, "
          f"{len(sharded.failures)} failed); dataset now "
          f"{dataset.matrix.num_measured}/{dataset.matrix.num_measured + dataset.matrix.missing_count} measured")
    if args.output is not None:
        dataset.save(args.output)
        status(f"refreshed dataset written to {args.output}")
    return 0


def _sniff_dataset(path: Path) -> bool:
    """Is this file a saved :class:`CampaignDataset` rather than JSONL?

    The npz container starts with the zip magic; the JSON document
    starts with a ``ting-campaign`` format tag in its first bytes.
    Event JSONL lines are JSON objects too, but never carry that tag.
    """
    with path.open("rb") as fh:
        head = fh.read(256)
    if head[:4] == b"PK\x03\x04":
        return True
    return head.lstrip()[:1] == b"{" and b'"format": "ting-campaign' in head


def _dataset_events(dataset: CampaignDataset) -> "list[dict]":
    """A dataset's provenance history as synthetic event records.

    Insertion order is the only clock the log has, so each record is
    stamped ``sim_ms = provenance row index`` — ``--since N`` then means
    "rows N onward", which is exactly how an operator asks "what did the
    last refresh do?".
    """
    from repro.obs import INFO, WARNING

    records = []
    for row, record in enumerate(dataset.provenance.records()):
        measured = record.status == "measured"
        event: dict = {
            "wall_s": 0.0,
            "sim_ms": float(row),
            "severity": INFO if measured else WARNING,
            "category": "campaign",
            "kind": "pair_measured" if measured else "pair_failed",
            "shard": record.shard if record.shard is not None else 0,
            "seq": row,
            "x": record.x[:16],
            "y": record.y[:16],
        }
        if record.rtt_ms is not None:
            event["rtt_ms"] = round(record.rtt_ms, 3)
        if not measured and record.failure_category is not None:
            event["cause"] = record.failure_category
        if record.retries:
            event["retries"] = record.retries
        records.append(event)
    return records


def cmd_tail(args: argparse.Namespace) -> int:
    """``tail``: render an events JSONL stream as console lines.

    The after-the-fact (or, with ``--follow``, live) view of a
    ``--events`` file, formatted identically to the console sink so an
    operator sees the same lines either way. Pointed at a saved
    campaign dataset instead (JSON or ``.npz``, sniffed), it replays
    the provenance history as synthetic events. Output goes to stdout —
    it *is* the machine/pipeline output of this command.
    """
    if not args.events.exists():
        print(f"events file {args.events} not found", file=sys.stderr)
        return 2
    min_severity = severity_level(args.min_severity)

    def wanted(record: dict) -> bool:
        if int(record.get("severity", 0)) < min_severity:
            return False
        if args.category is not None and record.get("category") != args.category:
            return False
        if args.kind is not None and record.get("kind") != args.kind:
            return False
        if args.since is not None and float(record.get("sim_ms", 0.0)) < args.since:
            return False
        return True

    if _sniff_dataset(args.events):
        if args.follow:
            print("--follow is ignored for dataset inputs", file=sys.stderr)
        dataset = CampaignDataset.load(args.events)
        for record in _dataset_events(dataset):
            if wanted(record):
                print(format_event(record))
        return 0

    def emit(line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            print(f"skipping malformed line: {line[:60]}", file=sys.stderr)
            return
        if wanted(record):
            print(format_event(record))

    try:
        with args.events.open(encoding="utf-8") as fh:
            for line in fh:
                emit(line)
            if args.follow:
                try:
                    while True:
                        line = fh.readline()
                        if line:
                            emit(line)
                        else:
                            time.sleep(0.2)
                except KeyboardInterrupt:
                    pass
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe: a clean exit, not
        # an error. Point stdout at devnull so interpreter shutdown does
        # not trip over the dead descriptor.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """``health``: grade a saved dataset's data quality, gate CI on it.

    Loads the dataset (JSON or ``.npz``), computes per-pair quality
    scores from provenance, and prints the graded scorecard; with
    ``--baseline`` it also diffs the two dataset versions (node churn,
    per-pair deltas with provenance attribution, quality regressions).
    ``--check`` turns the grade into an exit code: any FAIL check —
    a physically impossible estimate, an asymmetric entry, stale pairs
    beyond the threshold — exits 1, which is the CI gate.
    """
    from repro.obs.health import HealthThresholds, diff_datasets, health_report

    status = _status(args)
    if not args.input.exists():
        print(f"dataset {args.input} not found", file=sys.stderr)
        return 2
    dataset = CampaignDataset.load(args.input)
    status(f"loaded dataset: {len(dataset.matrix.nodes)} relays, "
           f"{dataset.matrix.num_measured} measured pairs, "
           f"{len(dataset.provenance)} provenance records")
    thresholds = None
    if args.stale_after is not None:
        thresholds = HealthThresholds(stale_after_rows=args.stale_after)
    report = health_report(dataset, thresholds=thresholds, seed=args.seed)
    print(report.render_text())
    payload = {"health": report.to_dict()}

    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"baseline dataset {args.baseline} not found",
                  file=sys.stderr)
            return 2
        baseline = CampaignDataset.load(args.baseline)
        drift = diff_datasets(baseline, dataset)
        print()
        print(drift.render_text())
        payload["drift"] = drift.to_dict()

    if args.json_out is not None:
        _write_json_artifact(
            args.json_out, json.dumps(payload, indent=2),
            "\nhealth JSON", status,
        )
    if args.check and not report.ok:
        failing = [c["name"] for c in report.data["checks"]
                   if c["status"] == "fail"]
        print(f"health check FAILED: {', '.join(failing)}", file=sys.stderr)
        return 1
    return 0


def _parse_serve_query(tokens: list[str]) -> dict:
    """One-shot ``repro serve`` tokens → a query dict.

    The grammar mirrors the JSONL wire format one-to-one, so anything
    expressible on the command line can be replayed through ``--batch``
    verbatim.
    """
    if not tokens:
        raise ValueError("empty query")
    op, rest = tokens[0], tokens[1:]
    if op == "point" and len(rest) == 2:
        return {"op": "point", "x": rest[0], "y": rest[1]}
    if op == "knn" and len(rest) in (1, 2):
        query = {"op": "knn", "x": rest[0]}
        if len(rest) == 2:
            query["k"] = int(rest[1])
        return query
    if op == "percentile" and len(rest) == 2:
        return {"op": "percentile", "x": rest[0], "q": float(rest[1])}
    if op == "path" and len(rest) >= 2:
        return {"op": "path", "hops": rest}
    if op == "via" and len(rest) in (2, 3):
        query = {"op": "via", "x": rest[0], "y": rest[1]}
        if len(rest) == 3:
            query["k"] = int(rest[2])
        return query
    raise ValueError(
        f"bad query {' '.join(tokens)!r}; expected point A B | knn A [K] | "
        "percentile A Q | path A B C... | via A B [K] | freshness"
    )


def _emit_serve_telemetry(args: argparse.Namespace, telemetry,
                          status: Callable[..., None]) -> None:
    """Surface recorded serve telemetry: stderr summary and/or a file.

    ``--stats`` prints the human summary on the status channel (stderr,
    so answer pipelines stay clean); ``--telemetry PATH`` writes the
    machine view — Prometheus text for ``.prom`` paths, else JSONL with
    one ``summary`` record followed by the access-log events and the
    sampled spans.
    """
    if not telemetry.enabled:
        return
    summary = telemetry.summary()
    if args.stats:
        status("\nserve telemetry:")
        status(f"  queries {summary['queries']}, errors {summary['errors']}, "
               f"slow {summary['slow_queries']} "
               f"(>= {summary['slow_ms']:g} ms), "
               f"spans {summary['sampled_spans']}")
        for category, count in summary["errors_by_category"].items():
            status(f"    errors.{category:<14} {count}")
        for op, row in summary["per_op"].items():
            status(f"  {op:<11} n={row['count']:<7} "
                   f"p50={row['p50_ms'] * 1000:.1f}us "
                   f"p99={row['p99_ms'] * 1000:.1f}us "
                   f"max={row['max_ms'] * 1000:.1f}us")
    if args.telemetry is not None:
        if args.telemetry.suffix == ".prom":
            args.telemetry.write_text(telemetry.to_prometheus())
        else:
            lines = [json.dumps({"record": "summary", **summary})]
            for event in telemetry.access_log():
                lines.append(json.dumps({"record": "event", **event}))
            for span in telemetry.spans.records():
                lines.append(json.dumps({"record": "span", **span}))
            args.telemetry.write_text("\n".join(lines) + "\n")
        status(f"telemetry written to {args.telemetry}")


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: the read side — query a saved dataset at client rates.

    Loads the dataset (``--mmap`` memory-maps the npz matrix so forked
    workers share one page-cache copy), freezes it into a
    :class:`~repro.serve.index.MatrixIndex`, and answers: a one-shot
    positional query, a ``--batch`` JSONL stream (fanned out across
    ``--workers`` forked processes, answers in input order), or
    ``--selftest`` (exit 1 on any mismatch — the CI gate). Answers are
    JSON on stdout, one object per query. ``--stats`` / ``--telemetry``
    opt into query telemetry (merged across batch workers).
    """
    from repro.serve import (
        NULL_SERVE_TELEMETRY,
        MatrixIndex,
        QueryServer,
        ServeTelemetry,
        selftest,
    )

    status = _status(args)
    if not args.input.exists():
        print(f"dataset {args.input} not found", file=sys.stderr)
        return 2
    modes = sum((bool(args.query), args.batch is not None, args.selftest))
    if modes != 1:
        print("serve needs exactly one of: a query, --batch, --selftest",
              file=sys.stderr)
        return 2

    if args.selftest:
        report = selftest(
            path=args.input, workers=max(2, args.workers), progress=status
        )
        print(json.dumps(report, indent=2))
        if not report["ok"]:
            print("serve selftest FAILED:", file=sys.stderr)
            for problem in report["problems"]:
                print(f"  {problem}", file=sys.stderr)
            return 1
        status(f"selftest ok: {report['checks']} checks, "
               f"version {report['version']}")
        return 0

    dataset = CampaignDataset.load(args.input, mmap=args.mmap)
    start = time.perf_counter()
    index = MatrixIndex.build(dataset)
    status(f"index ready: {len(index)} nodes, {index.measured_pairs} "
           f"measured pairs, version {index.version} "
           f"({(time.perf_counter() - start) * 1000:.0f} ms)")
    telemetry = (
        ServeTelemetry(slow_ms=args.slow_ms, sample_every=args.sample_every)
        if (args.stats or args.telemetry is not None)
        else NULL_SERVE_TELEMETRY
    )
    server = QueryServer(
        index, workers=max(1, args.workers), telemetry=telemetry
    )

    if args.batch is not None:
        if str(args.batch) == "-":
            lines = sys.stdin.read().splitlines()
        elif not args.batch.exists():
            print(f"batch file {args.batch} not found", file=sys.stderr)
            return 2
        else:
            lines = args.batch.read_text(encoding="utf-8").splitlines()
        queries = []
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                queries.append(json.loads(line))
            except json.JSONDecodeError as exc:
                queries.append({"op": f"<line {number}>", "_parse": str(exc)})
        answers = server.batch(
            [q for q in queries if "_parse" not in q]
        )
        results = iter(answers)
        for query in queries:
            if "_parse" in query:
                print(json.dumps(
                    {"op": None, "error": f"bad JSONL {query['op']}: "
                                          f"{query['_parse']}"}
                ))
            else:
                print(json.dumps(next(results)))
        status(f"{len(queries)} queries answered")
        _emit_serve_telemetry(args, telemetry, status)
        return 0

    if args.query == ["freshness"]:
        print(json.dumps(index.freshness(), indent=2))
        return 0
    try:
        query = _parse_serve_query(args.query)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    answer = server.query(query)
    print(json.dumps(answer, indent=2))
    _emit_serve_telemetry(args, telemetry, status)
    return 0 if "error" not in answer else 1


_COMMANDS = {
    "validate": cmd_validate,
    "measure": cmd_measure,
    "tiv": cmd_tiv,
    "deanon": cmd_deanon,
    "coverage": cmd_coverage,
    "bench": cmd_bench,
    "stats": cmd_stats,
    "report": cmd_report,
    "plan": cmd_plan,
    "tail": cmd_tail,
    "health": cmd_health,
    "serve": cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
