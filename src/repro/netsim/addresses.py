"""IPv4 address allocation for simulated hosts.

The coverage application (Section 5.3 of the paper) counts unique /24
prefixes among Tor relays and groups hosting providers by address range,
so the simulator allocates addresses with a realistic prefix structure:
hosts are placed into /24 networks, /24s nest inside provider /16s, and
well-known hosting providers own recognizable ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError


def parse_ipv4(address: str) -> tuple[int, int, int, int]:
    """Parse a dotted-quad string, validating each octet."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {address!r}")
    octets = []
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"non-numeric octet in {address!r}")
        value = int(part)
        if not 0 <= value <= 255:
            raise ValueError(f"octet out of range in {address!r}")
        octets.append(value)
    return tuple(octets)  # type: ignore[return-value]


def prefix24(address: str) -> str:
    """The /24 prefix of ``address``, e.g. ``'198.51.100.7' -> '198.51.100'``."""
    a, b, c, _ = parse_ipv4(address)
    return f"{a}.{b}.{c}"


def prefix16(address: str) -> str:
    """The /16 prefix of ``address``, e.g. ``'198.51.100.7' -> '198.51'``."""
    a, b, _, _ = parse_ipv4(address)
    return f"{a}.{b}"


@dataclass(frozen=True)
class ProviderRange:
    """A named provider owning a set of /16s (used for hosting detection)."""

    name: str
    first_octet: int
    second_octets: tuple[int, ...]

    def contains(self, address: str) -> bool:
        """Whether ``address`` falls inside this provider's range."""
        a, b, _, _ = parse_ipv4(address)
        return a == self.first_octet and b in self.second_octets


#: Synthetic provider ranges, standing in for the real hosting providers the
#: paper identifies by address range (e.g. Digital Ocean).  Drawn from
#: otherwise-unused space so they never collide with random allocations.
HOSTING_PROVIDER_RANGES: tuple[ProviderRange, ...] = (
    ProviderRange(
        name="oceanic-compute",
        first_octet=104,
        second_octets=tuple(range(16, 32)),
    ),
    ProviderRange(
        name="stratus-cloud",
        first_octet=107,
        second_octets=tuple(range(160, 176)),
    ),
)


class AddressAllocator:
    """Hands out unique host addresses grouped into /24 networks.

    The allocator avoids private (RFC 1918), loopback, multicast, and
    documentation ranges, and never reuses an address. Call
    :meth:`new_network` to open a fresh /24, then :meth:`address_in` to
    draw hosts from it; or call :meth:`new_host` for a one-off host in its
    own /24.
    """

    _FORBIDDEN_FIRST_OCTETS = frozenset({0, 10, 127} | set(range(224, 256)))

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._used_networks: set[str] = set()
        self._used_addresses: set[str] = set()
        self._hosts_in_network: dict[str, int] = {}
        self._provider_counts: dict[str, int] = {}

    def new_network(self, provider: ProviderRange | None = None) -> str:
        """Allocate a fresh /24 prefix (optionally inside a provider range)."""
        if provider is not None:
            capacity = len(provider.second_octets) * 256
            if self._provider_counts.get(provider.name, 0) >= capacity:
                raise ConfigurationError(
                    f"provider range {provider.name} has no free /24s"
                )
        for _ in range(100_000):
            if provider is not None:
                a = provider.first_octet
                b = int(self._rng.choice(provider.second_octets))
            else:
                a = int(self._rng.integers(1, 224))
                if a in self._FORBIDDEN_FIRST_OCTETS or a == 172 or a == 192:
                    continue
                b = int(self._rng.integers(0, 256))
            c = int(self._rng.integers(0, 256))
            prefix = f"{a}.{b}.{c}"
            if prefix not in self._used_networks:
                self._used_networks.add(prefix)
                self._hosts_in_network[prefix] = 0
                if provider is not None:
                    self._provider_counts[provider.name] = (
                        self._provider_counts.get(provider.name, 0) + 1
                    )
                return prefix
        raise ConfigurationError("address space exhausted (could not find a free /24)")

    def address_in(self, network: str) -> str:
        """Allocate the next unused host address inside a /24 from
        :meth:`new_network`."""
        if network not in self._used_networks:
            raise ConfigurationError(f"unknown network {network!r}; allocate it first")
        count = self._hosts_in_network[network]
        if count >= 254:
            raise ConfigurationError(f"/24 {network} is full")
        self._hosts_in_network[network] = count + 1
        address = f"{network}.{count + 1}"
        self._used_addresses.add(address)
        return address

    def new_host(self, provider: ProviderRange | None = None) -> str:
        """Allocate one host in a brand-new /24 (the common case: each
        volunteer relay tends to sit in its own home or VPS network)."""
        return self.address_in(self.new_network(provider))

    @property
    def networks_allocated(self) -> int:
        """Number of /24s handed out so far."""
        return len(self._used_networks)

    @property
    def addresses_allocated(self) -> int:
        """Number of host addresses handed out so far."""
        return len(self._used_addresses)
