"""Discrete-event network simulator: the underlay Tor runs on.

This package provides the measurement substrate the paper took from the
real Internet: a PoP-level topology with great-circle propagation delays,
hop-count routing (the source of triangle-inequality violations), per-network
protocol policies that treat ICMP, TCP, and Tor traffic differently, and a
packet/stream transport driven by a deterministic event loop.
"""

from repro.netsim.engine import Simulator, EventHandle
from repro.netsim.geo import GeoPoint, great_circle_km, CITY_CATALOG
from repro.netsim.topology import Host, PoP, Topology, TopologyBuilder
from repro.netsim.policies import TrafficClass, ProtocolPolicy
from repro.netsim.latency import LatencyEngine, JitterModel, ExponentialJitter
from repro.netsim.transport import (
    NetworkFabric,
    Packet,
    StreamConnection,
    IcmpPinger,
    TcpConnectProber,
)

__all__ = [
    "Simulator",
    "EventHandle",
    "GeoPoint",
    "great_circle_km",
    "CITY_CATALOG",
    "Host",
    "PoP",
    "Topology",
    "TopologyBuilder",
    "TrafficClass",
    "ProtocolPolicy",
    "LatencyEngine",
    "JitterModel",
    "ExponentialJitter",
    "NetworkFabric",
    "Packet",
    "StreamConnection",
    "IcmpPinger",
    "TcpConnectProber",
]
