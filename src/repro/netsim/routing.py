"""Policy routing over the PoP backbone.

Real Internet routing picks paths by policy (AS relationships, hot-potato
exits), not purely by latency. We model that with Dijkstra over a *policy
weight*: each link costs its latency **plus a fixed per-hop penalty**
(transit/peering preference for fewer AS hops). Routed paths therefore
trade latency for hop count, and the latency of the routed path between
two PoPs frequently exceeds the latency of relaying through a third PoP
— the triangle inequality violations Section 5.2.1 exploits. The penalty
size controls TIV prevalence and magnitude: with ~15–25 ms per hop,
most node pairs see small detour savings and a minority see large ones,
matching the paper's Figure 14.

Routes are computed once per canonical (low, high) PoP pair — latency is
symmetric — then cached in both orientations, alongside a per-direction
path-latency cache, so repeat lookups are a single dict probe.
"""

from __future__ import annotations

import heapq

import networkx as nx

from repro.util.errors import SimulationError
from repro.util.units import Milliseconds


class Router:
    """Computes and caches policy-weighted shortest paths."""

    def __init__(self, graph: nx.Graph, hop_penalty_ms: float = 25.0) -> None:
        if graph.number_of_nodes() == 0:
            raise SimulationError("cannot route over an empty graph")
        if not nx.is_connected(graph):
            raise SimulationError("backbone graph must be connected")
        if hop_penalty_ms < 0:
            raise SimulationError("hop penalty must be non-negative")
        self._graph = graph
        self.hop_penalty_ms = hop_penalty_ms
        # Both orientations of every computed route are cached, so repeat
        # lookups never pay the ``[::-1]`` reversal copy; latencies are
        # cached per *directed* query so the summation order (and thus
        # the exact float) matches a cold computation bit-for-bit.
        self._path_cache: dict[tuple[int, int], tuple[int, ...]] = {}
        self._latency_cache: dict[tuple[int, int], Milliseconds] = {}
        self._trees: dict[int, dict[int, list[int]]] = {}

    def path(self, src_pop: int, dst_pop: int) -> tuple[int, ...]:
        """The routed PoP sequence from ``src_pop`` to ``dst_pop``.

        Paths are canonicalized so ``path(a, b)`` is the reverse of
        ``path(b, a)`` — routing in this model is symmetric.
        """
        if src_pop == dst_pop:
            return (src_pop,)
        route = self._path_cache.get((src_pop, dst_pop))
        if route is None:
            low, high = (
                (src_pop, dst_pop) if src_pop < dst_pop else (dst_pop, src_pop)
            )
            canonical = tuple(self._policy_path(low, high))
            self._path_cache[(low, high)] = canonical
            self._path_cache[(high, low)] = canonical[::-1]
            route = self._path_cache[(src_pop, dst_pop)]
        return route

    def _policy_path(self, src: int, dst: int) -> list[int]:
        if src not in self._trees:
            self._trees[src] = self._dijkstra(src)
        try:
            return self._trees[src][dst]
        except KeyError:
            raise SimulationError(f"no route from PoP {src} to PoP {dst}") from None

    def _dijkstra(self, src: int) -> dict[int, list[int]]:
        """Dijkstra over latency + per-hop penalty, deterministic ties."""
        dist: dict[int, float] = {src: 0.0}
        parent: dict[int, int | None] = {src: None}
        done: set[int] = set()
        heap: list[tuple[float, int]] = [(0.0, src)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            for neighbour in sorted(self._graph.neighbors(node)):
                if neighbour in done:
                    continue
                weight = (
                    self._graph.edges[node, neighbour]["latency_ms"]
                    + self.hop_penalty_ms
                )
                candidate = d + weight
                if candidate < dist.get(neighbour, float("inf")) - 1e-12:
                    dist[neighbour] = candidate
                    parent[neighbour] = node
                    heapq.heappush(heap, (candidate, neighbour))
        paths: dict[int, list[int]] = {}
        for node in parent:
            seq = [node]
            cursor = parent[node]
            while cursor is not None:
                seq.append(cursor)
                cursor = parent[cursor]
            paths[node] = seq[::-1]
        return paths

    def path_latency_ms(self, src_pop: int, dst_pop: int) -> Milliseconds:
        """One-way latency of the routed path between two PoPs."""
        key = (src_pop, dst_pop)
        total = self._latency_cache.get(key)
        if total is None:
            route = self.path(src_pop, dst_pop)
            edges = self._graph.edges
            total = 0.0
            for a, b in zip(route, route[1:]):
                total += edges[a, b]["latency_ms"]
            self._latency_cache[key] = total
        return total

    def hop_count(self, src_pop: int, dst_pop: int) -> int:
        """Number of backbone links on the routed path."""
        return len(self.path(src_pop, dst_pop)) - 1
