"""A minimal DNS substrate: authoritative and recursive name servers.

Built to host the King technique (Gummadi et al., IMW'02) — the paper's
direct ancestor. King estimated the latency between two arbitrary hosts
by bouncing a recursive query off a name server near the first host so
that it queried the authoritative server of the second.

The substrate models the two properties that decide King's fate:

* **Name-server placement**: each host's authoritative server sits in
  the same metro but on *hosting* infrastructure — name servers are
  generally better connected than the residential hosts they speak for,
  which is King's systematic underestimate (its ratio CDF is skewed
  left of 1; paper Section 4.2 cites King's Fig. 5).
* **Open recursion**: only a fraction of servers answer recursive
  queries from strangers — 72–79% in 2002, ~3% by 2015 (paper
  Section 5.3) — which decides King's *coverage*.

Queries ride the datagram fabric as TCP-class packets with random
labels (so caching, which real King had to dodge, never helps).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.netsim.engine import Simulator
from repro.netsim.policies import TrafficClass
from repro.netsim.topology import Host, Topology, TopologyBuilder
from repro.netsim.transport import NetworkFabric, Packet
from repro.util.errors import ConfigurationError, MeasurementError

#: Well-known DNS port.
DNS_PORT = 53

#: Server-side processing time per query (lookup + response build).
SERVER_PROCESSING_MS = 0.3


@dataclass(frozen=True)
class NameServer:
    """One authoritative server and its recursion policy."""

    host: Host
    zone: str  # the DNS zone this server is authoritative for
    supports_recursion: bool


class DnsInfrastructure:
    """Deploys name servers for a host population and answers queries."""

    def __init__(
        self,
        sim: Simulator,
        fabric: NetworkFabric,
        topology: Topology,
        builder: TopologyBuilder,
        rng: np.random.Generator,
        open_recursion_fraction: float = 0.03,
    ) -> None:
        if not 0.0 <= open_recursion_fraction <= 1.0:
            raise ConfigurationError("open_recursion_fraction must be in [0, 1]")
        self.sim = sim
        self.fabric = fabric
        self.topology = topology
        self.builder = builder
        self._rng = rng
        self.open_recursion_fraction = open_recursion_fraction
        self._servers_by_zone: dict[str, NameServer] = {}
        self._servers_by_host_id: dict[int, NameServer] = {}
        self._query_ids = itertools.count(1)
        self._pending: dict[int, Callable[[bool], None]] = {}
        self._recursing: dict[int, tuple[Packet, int]] = {}

    # ------------------------------------------------------------------
    # Deployment

    def zone_of(self, host: Host) -> str:
        """The DNS zone a host's name lives in (its /24, as a stand-in)."""
        return f"{host.prefix24.replace('.', '-')}.example."

    def deploy_for(self, host: Host) -> NameServer:
        """Create (or return) the authoritative server for ``host``'s zone.

        The server lands at the same PoP but on hosting-grade access —
        the placement gap King could not correct for.
        """
        zone = self.zone_of(host)
        existing = self._servers_by_zone.get(zone)
        if existing is not None:
            return existing
        ns_host = self.builder.attach_random_host(
            self.topology,
            f"ns-{zone.rstrip('.')}",
            host.pop_id,
            host_type="hosting",
        )
        server = NameServer(
            host=ns_host,
            zone=zone,
            supports_recursion=bool(
                self._rng.random() < self.open_recursion_fraction
            ),
        )
        self._servers_by_zone[zone] = server
        self._servers_by_host_id[ns_host.host_id] = server
        self.fabric.bind(ns_host, DNS_PORT, self._query_arrived)
        return server

    def server_for(self, host: Host) -> NameServer:
        """The authoritative server responsible for ``host``."""
        try:
            return self._servers_by_zone[self.zone_of(host)]
        except KeyError:
            raise MeasurementError(
                f"no name server deployed for {host.name}'s zone"
            ) from None

    # ------------------------------------------------------------------
    # Client side

    def query(
        self,
        client: Host,
        server: NameServer,
        qname: str,
        recursive: bool,
        on_reply: Callable[[bool], None],
    ) -> None:
        """Send one query; ``on_reply(ok)`` fires when the answer lands.

        ``ok`` is False for a REFUSED (recursion requested but not
        offered) — which still measures a round trip, as King noted.
        """
        query_id = next(self._query_ids)
        self._pending[query_id] = on_reply
        packet = Packet(
            src=client,
            dst=server.host,
            sport=40_000 + (query_id % 20_000),
            dport=DNS_PORT,
            traffic_class=TrafficClass.TCP,
            payload=("query", query_id, qname, recursive, client),
            size_bytes=80,
        )
        self._ensure_reply_handler(client)
        self.fabric.send(packet)

    _REPLY_PORT = 5353

    def _ensure_reply_handler(self, client: Host) -> None:
        if not self.fabric.is_bound(client, self._REPLY_PORT):
            self.fabric.bind(client, self._REPLY_PORT, self._reply_arrived)

    def _reply_arrived(self, packet: Packet) -> None:
        kind, query_id, ok = packet.payload
        callback = self._pending.pop(query_id, None)
        if callback is not None:
            callback(ok)

    # ------------------------------------------------------------------
    # Server side

    def _query_arrived(self, packet: Packet) -> None:
        self.sim.schedule(SERVER_PROCESSING_MS, self._process_query, packet)

    def _process_query(self, packet: Packet) -> None:
        kind = packet.payload[0]
        if kind == "upstream":
            self._answer_upstream(packet)
            return
        if kind == "upstream-reply":
            self._upstream_reply_arrived(packet)
            return
        server = self._servers_by_host_id.get(packet.dst.host_id)
        if server is None:
            return
        _, query_id, qname, recursive, client = packet.payload
        if not recursive or qname.endswith(server.zone):
            # Authoritative (or iterative) answer straight back.
            self._reply(server.host, client, query_id, ok=True)
            return
        if not server.supports_recursion:
            self._reply(server.host, client, query_id, ok=False)
            return
        # Recurse: find the authoritative server for the target zone and
        # forward; answer the client when its reply arrives.
        target = next(
            (
                candidate
                for zone, candidate in self._servers_by_zone.items()
                if qname.endswith(zone)
            ),
            None,
        )
        if target is None:
            self._reply(server.host, client, query_id, ok=False)
            return
        upstream_id = next(self._query_ids)
        self._recursing[upstream_id] = (packet, query_id)
        self.fabric.send(
            Packet(
                src=server.host,
                dst=target.host,
                sport=DNS_PORT,
                dport=DNS_PORT,
                traffic_class=TrafficClass.TCP,
                payload=("upstream", upstream_id, qname, server.host),
                size_bytes=80,
            )
        )

    def _answer_upstream(self, packet: Packet) -> None:
        """Authoritative answer to another server's recursion leg."""
        _, upstream_id, _qname, _asker = packet.payload
        self.fabric.send(
            Packet(
                src=packet.dst,
                dst=packet.src,
                sport=DNS_PORT,
                dport=DNS_PORT,
                traffic_class=TrafficClass.TCP,
                payload=("upstream-reply", upstream_id),
                size_bytes=120,
            )
        )

    def _upstream_reply_arrived(self, packet: Packet) -> None:
        """Complete a recursion: relay the answer to the waiting client."""
        _, upstream_id = packet.payload
        waiting = self._recursing.pop(upstream_id, None)
        if waiting is None:
            return
        original_packet, client_query_id = waiting
        _, _, _, _, client = original_packet.payload
        self._reply(original_packet.dst, client, client_query_id, ok=True)

    def _reply(self, src: Host, client: Host, query_id: int, ok: bool) -> None:
        self.fabric.send(
            Packet(
                src=src,
                dst=client,
                sport=DNS_PORT,
                dport=self._REPLY_PORT,
                traffic_class=TrafficClass.TCP,
                payload=("reply", query_id, ok),
                size_bytes=120,
            )
        )
