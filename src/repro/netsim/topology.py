"""Underlay topology: a PoP backbone plus access-attached hosts.

The backbone is a graph of points of presence (PoPs), one or more per
catalogue city, whose edge latencies are great-circle propagation delays
inflated by a sampled "route circuitousness" factor (real fiber does not
follow geodesics). Packets are routed over this graph by *hop count*, not
latency (see :mod:`repro.netsim.routing`) — this mirrors BGP's
policy-driven path choice and is what gives the overlay its
triangle-inequality violations.

Hosts attach to a PoP through an access link with a type-dependent delay:
residential cable/DSL tails are slower than hosting-center cross-connects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.netsim.addresses import AddressAllocator, ProviderRange, prefix16, prefix24
from repro.netsim.geo import CITY_CATALOG, City, GeoPoint, great_circle_km
from repro.netsim.policies import NEUTRAL_POLICY, PolicyModel, ProtocolPolicy
from repro.util.errors import ConfigurationError
from repro.util.units import Milliseconds, propagation_delay_ms


@dataclass(frozen=True)
class PoP:
    """A backbone point of presence located in a city."""

    pop_id: int
    city: City

    @property
    def point(self) -> GeoPoint:
        """The PoP's city coordinates."""
        return self.city.point


#: Host access profiles: (min, max) one-way access delay in ms, plus
#: access bandwidth used for serialization delay.
ACCESS_PROFILES: dict[str, dict[str, float]] = {
    "residential": {"delay_lo": 2.0, "delay_hi": 9.0, "bandwidth_mbps": 40.0},
    "hosting": {"delay_lo": 0.05, "delay_hi": 0.5, "bandwidth_mbps": 1000.0},
    "university": {"delay_lo": 0.3, "delay_hi": 1.5, "bandwidth_mbps": 400.0},
}


@dataclass
class Host:
    """An end host attached to the underlay."""

    host_id: int
    name: str
    address: str
    point: GeoPoint
    pop_id: int
    access_delay_ms: Milliseconds
    bandwidth_mbps: float
    policy: ProtocolPolicy = NEUTRAL_POLICY
    host_type: str = "hosting"
    rdns: str | None = None

    def __post_init__(self) -> None:
        if self.access_delay_ms < 0:
            raise ConfigurationError("access delay must be non-negative")
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.host_type not in ACCESS_PROFILES:
            raise ConfigurationError(
                f"unknown host type {self.host_type!r}; "
                f"expected one of {sorted(ACCESS_PROFILES)}"
            )

    @property
    def prefix24(self) -> str:
        """The host's /24 prefix (network allocation granularity)."""
        return prefix24(self.address)

    @property
    def prefix16(self) -> str:
        """The host's /16 prefix (Tor's same-network circuit constraint)."""
        return prefix16(self.address)

    def serialization_delay_ms(self, size_bytes: int) -> Milliseconds:
        """Time to push ``size_bytes`` onto the host's access link."""
        bits = size_bytes * 8.0
        return bits / (self.bandwidth_mbps * 1e6) * 1000.0


class Topology:
    """The assembled underlay: PoP graph plus attached hosts."""

    def __init__(self, graph: nx.Graph, pops: dict[int, PoP]) -> None:
        self.graph = graph
        self.pops = pops
        self.hosts: dict[int, Host] = {}
        self._by_address: dict[str, Host] = {}
        self._host_ids = itertools.count()

    def attach_host(
        self,
        name: str,
        address: str,
        pop_id: int,
        access_delay_ms: Milliseconds,
        bandwidth_mbps: float,
        policy: ProtocolPolicy = NEUTRAL_POLICY,
        host_type: str = "hosting",
        rdns: str | None = None,
        point: GeoPoint | None = None,
    ) -> Host:
        """Attach a host to PoP ``pop_id`` and register it.

        ``point`` defaults to the PoP's city coordinates; pass an explicit
        point to place the host away from the PoP (metro-area spread).
        """
        if pop_id not in self.pops:
            raise ConfigurationError(f"unknown PoP id {pop_id}")
        host = Host(
            host_id=next(self._host_ids),
            name=name,
            address=address,
            point=point if point is not None else self.pops[pop_id].point,
            pop_id=pop_id,
            access_delay_ms=access_delay_ms,
            bandwidth_mbps=bandwidth_mbps,
            policy=policy,
            host_type=host_type,
            rdns=rdns,
        )
        if address in self._by_address:
            raise ConfigurationError(f"duplicate host address {address}")
        self.hosts[host.host_id] = host
        self._by_address[address] = host
        return host

    def host_by_address(self, address: str) -> Host:
        """Find a host by its IPv4 address."""
        try:
            return self._by_address[address]
        except KeyError:
            raise KeyError(f"no host with address {address!r}") from None

    def host_by_name(self, name: str) -> Host:
        """Find a host by its unique name."""
        for host in self.hosts.values():
            if host.name == name:
                return host
        raise KeyError(f"no host named {name!r}")

    @property
    def num_pops(self) -> int:
        """Number of backbone PoPs."""
        return len(self.pops)

    @property
    def num_hosts(self) -> int:
        """Number of attached hosts."""
        return len(self.hosts)


class TopologyBuilder:
    """Constructs the PoP backbone and provides host-attachment helpers.

    Backbone construction:

    1. One PoP per catalogue city (optionally several for big hubs).
    2. Each PoP links to its ``k_nearest`` geographic neighbours, giving a
       connected regional mesh.
    3. A set of long-haul links joins major hubs across continents
       (transatlantic, transpacific, etc.).
    4. Every edge's latency is its great-circle propagation delay times an
       inflation factor drawn from ``inflation_range`` — route
       circuitousness — plus a fixed per-edge router transit cost.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        cities: tuple[City, ...] = CITY_CATALOG,
        k_nearest: int = 4,
        inflation_range: tuple[float, float] = (1.05, 2.5),
        router_transit_ms: float = 0.15,
        policy_model: PolicyModel | None = None,
    ) -> None:
        if k_nearest < 1:
            raise ConfigurationError("k_nearest must be >= 1")
        lo, hi = inflation_range
        if lo < 1.0 or hi < lo:
            raise ConfigurationError(
                f"inflation_range must satisfy 1.0 <= lo <= hi, got {inflation_range}"
            )
        self._rng = rng
        self._cities = cities
        self._k_nearest = k_nearest
        self._inflation_range = inflation_range
        self._router_transit_ms = router_transit_ms
        self.policy_model = policy_model or PolicyModel()
        self.allocator = AddressAllocator(rng)

    # --- backbone -----------------------------------------------------

    #: City pairs that get dedicated long-haul links if both are present.
    LONG_HAUL_PAIRS: tuple[tuple[str, str], ...] = (
        ("New York", "London"),
        ("New York", "Paris"),
        ("Boston", "London"),
        ("Miami", "Sao Paulo"),
        ("Los Angeles", "Tokyo"),
        ("Seattle", "Tokyo"),
        ("San Francisco", "Sydney"),
        ("Singapore", "Sydney"),
        ("Tokyo", "Singapore"),
        ("Frankfurt", "Tel Aviv"),
        ("Frankfurt", "Dubai"),
        ("London", "Hong Kong"),
        ("Madrid", "Buenos Aires"),
        ("Amsterdam", "New York"),
        ("Singapore", "Dubai"),
        ("Hong Kong", "Seoul"),
    )

    def build(self) -> Topology:
        """Build and return the backbone topology (no hosts attached yet)."""
        pops = {i: PoP(pop_id=i, city=city) for i, city in enumerate(self._cities)}
        graph = nx.Graph()
        graph.add_nodes_from(pops)

        # k-nearest regional mesh.
        for pop in pops.values():
            neighbours = sorted(
                (other for other in pops.values() if other.pop_id != pop.pop_id),
                key=lambda other: great_circle_km(pop.point, other.point),
            )[: self._k_nearest]
            for other in neighbours:
                self._add_edge(graph, pop, other)

        # Long-haul hub links.
        by_name = {pop.city.name: pop for pop in pops.values()}
        for name_a, name_b in self.LONG_HAUL_PAIRS:
            if name_a in by_name and name_b in by_name:
                self._add_edge(graph, by_name[name_a], by_name[name_b])

        # Guarantee connectivity: bridge any stray components to the
        # largest one via their geographically closest pair.
        components = sorted(nx.connected_components(graph), key=len, reverse=True)
        main = components[0]
        for component in components[1:]:
            best = min(
                (
                    (great_circle_km(pops[u].point, pops[v].point), u, v)
                    for u in component
                    for v in main
                ),
            )
            _, u, v = best
            self._add_edge(graph, pops[u], pops[v])

        return Topology(graph=graph, pops=pops)

    def _add_edge(self, graph: nx.Graph, a: PoP, b: PoP) -> None:
        if graph.has_edge(a.pop_id, b.pop_id):
            return
        distance = great_circle_km(a.point, b.point)
        inflation = float(self._rng.uniform(*self._inflation_range))
        latency = propagation_delay_ms(distance) * inflation + self._router_transit_ms
        graph.add_edge(a.pop_id, b.pop_id, latency_ms=latency, distance_km=distance)

    # --- host attachment ----------------------------------------------

    def attach_random_host(
        self,
        topology: Topology,
        name: str,
        pop_id: int,
        host_type: str = "hosting",
        provider: ProviderRange | None = None,
        network: str | None = None,
        rdns: str | None = None,
    ) -> Host:
        """Attach a host of ``host_type`` to ``pop_id`` with sampled
        access delay, bandwidth, protocol policy, and a fresh address.

        Pass ``network`` to co-locate several hosts in one /24 (e.g. the
        Ting measurement host's four processes).
        """
        profile = ACCESS_PROFILES.get(host_type)
        if profile is None:
            raise ConfigurationError(f"unknown host type {host_type!r}")
        address = (
            self.allocator.address_in(network)
            if network is not None
            else self.allocator.new_host(provider)
        )
        return topology.attach_host(
            name=name,
            address=address,
            pop_id=pop_id,
            access_delay_ms=float(
                self._rng.uniform(profile["delay_lo"], profile["delay_hi"])
            ),
            bandwidth_mbps=profile["bandwidth_mbps"],
            policy=self.policy_model.sample(self._rng),
            host_type=host_type,
            rdns=rdns,
        )
