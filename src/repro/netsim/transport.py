"""Packet and stream transport over the event engine.

Three layers, bottom-up:

* :class:`NetworkFabric` — delivers :class:`Packet` objects between hosts
  after a sampled one-way delay (latency engine) plus serialization on the
  sender's access link. Hosts bind handlers to ports. Every host answers
  ICMP echoes natively, so :class:`IcmpPinger` works against any host.
* :class:`StreamConnection` — a minimal TCP abstraction: three-way-ish
  handshake (one RTT to establish), ordered message delivery, close. Tor's
  inter-relay links and the echo service ride on these.
* Probers — :class:`IcmpPinger` and :class:`TcpConnectProber` reproduce the
  paper's `ping` and `tcptraceroute` ground-truth instruments, including
  their exposure to per-network protocol policies.

Everything is callback-driven; experiment code schedules work and then
runs the simulator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.netsim.engine import Simulator
from repro.netsim.latency import LatencyEngine
from repro.netsim.policies import TrafficClass
from repro.netsim.topology import Host
from repro.util.errors import SimulationError
from repro.util.units import Milliseconds

#: Port 0 is reserved for the fabric's built-in ICMP echo responder.
ICMP_PORT = 0

#: Default payload size (bytes) for bare packets; Tor cells override this.
DEFAULT_PACKET_BYTES = 64


@dataclass
class Packet:
    """A datagram in flight between two hosts."""

    src: Host
    dst: Host
    sport: int
    dport: int
    traffic_class: TrafficClass
    payload: Any
    size_bytes: int = DEFAULT_PACKET_BYTES
    sent_at: Milliseconds = 0.0


class NetworkFabric:
    """Moves packets between hosts and multiplexes ports and streams."""

    def __init__(self, sim: Simulator, latency: LatencyEngine) -> None:
        self.sim = sim
        self.latency = latency
        self._port_handlers: dict[tuple[int, int], Callable[[Packet], None]] = {}
        self._listeners: dict[tuple[int, int], Callable[["StreamConnection"], None]] = {}
        self._connections: dict[int, "StreamConnection"] = {}
        self._conn_ids = itertools.count(1)
        self._ephemeral = itertools.count(49152)

    # --- datagram layer -------------------------------------------------

    def bind(self, host: Host, port: int, handler: Callable[[Packet], None]) -> None:
        """Register ``handler`` for packets to ``host:port``."""
        if port == ICMP_PORT:
            raise SimulationError("port 0 is reserved for ICMP")
        key = (host.host_id, port)
        if key in self._port_handlers:
            raise SimulationError(f"port {port} already bound on {host.name}")
        self._port_handlers[key] = handler

    def unbind(self, host: Host, port: int) -> None:
        """Remove the handler for ``host:port`` (no-op if absent)."""
        self._port_handlers.pop((host.host_id, port), None)

    def is_bound(self, host: Host, port: int) -> bool:
        """Whether a datagram handler is registered for ``host:port``."""
        return (host.host_id, port) in self._port_handlers

    def send(self, packet: Packet) -> None:
        """Schedule delivery of ``packet`` after transit delay."""
        packet.sent_at = self.sim.now
        delay = self.latency.sample_one_way_ms(
            packet.src, packet.dst, packet.traffic_class
        ) + packet.src.serialization_delay_ms(packet.size_bytes)
        self.sim.schedule(delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        if packet.dport == ICMP_PORT:
            self._handle_icmp(packet)
            return
        handler = self._port_handlers.get((packet.dst.host_id, packet.dport))
        if handler is not None:
            handler(packet)
        # Unbound ports drop silently, as real networks do.

    def _handle_icmp(self, packet: Packet) -> None:
        kind, seq, echo_payload = packet.payload
        if kind == "echo-request":
            reply = Packet(
                src=packet.dst,
                dst=packet.src,
                sport=ICMP_PORT,
                dport=ICMP_PORT,
                traffic_class=TrafficClass.ICMP,
                payload=("echo-reply", seq, echo_payload),
                size_bytes=packet.size_bytes,
            )
            self.send(reply)
        elif kind == "echo-reply":
            handler = self._port_handlers.get((packet.dst.host_id, -1))
            if handler is not None:
                handler(packet)

    def bind_icmp_listener(
        self, host: Host, handler: Callable[[Packet], None]
    ) -> None:
        """Register a handler for ICMP echo replies arriving at ``host``."""
        self._port_handlers[(host.host_id, -1)] = handler

    def unbind_icmp_listener(self, host: Host) -> None:
        """Remove a host's ICMP echo-reply handler."""
        self._port_handlers.pop((host.host_id, -1), None)

    # --- stream layer -----------------------------------------------------

    def listen(
        self,
        host: Host,
        port: int,
        on_connection: Callable[["StreamConnection"], None],
    ) -> None:
        """Accept stream connections to ``host:port``."""
        key = (host.host_id, port)
        if key in self._listeners:
            raise SimulationError(f"already listening on {host.name}:{port}")
        self._listeners[key] = on_connection

    def stop_listening(self, host: Host, port: int) -> None:
        """Stop accepting stream connections on ``host:port``."""
        self._listeners.pop((host.host_id, port), None)

    def connect(
        self,
        src: Host,
        dst: Host,
        dport: int,
        traffic_class: TrafficClass,
        on_established: Callable[["StreamConnection"], None],
        on_failure: Callable[[str], None] | None = None,
    ) -> "StreamConnection":
        """Open a stream from ``src`` to ``dst:dport``.

        ``on_established`` fires one RTT later (SYN out, SYN-ACK back) if
        a listener exists; otherwise ``on_failure`` fires after the same
        round trip (connection refused).
        """
        conn_id = next(self._conn_ids)
        sport = next(self._ephemeral)
        client = StreamConnection(
            fabric=self,
            conn_id=conn_id,
            local=src,
            remote=dst,
            local_port=sport,
            remote_port=dport,
            traffic_class=traffic_class,
            is_client=True,
        )
        self._connections[conn_id] = client
        syn = Packet(
            src=src,
            dst=dst,
            sport=sport,
            dport=dport,
            traffic_class=traffic_class,
            payload=("syn", conn_id, sport),
            size_bytes=60,
        )
        client._on_established = on_established
        client._on_failure = on_failure
        self.sim.schedule(0.0, self._send_syn, syn, client)
        return client

    def _send_syn(self, syn: Packet, client: "StreamConnection") -> None:
        listener = self._listeners.get((syn.dst.host_id, syn.dport))
        delay_out = self.latency.sample_one_way_ms(
            syn.src, syn.dst, syn.traffic_class
        ) + syn.src.serialization_delay_ms(syn.size_bytes)
        if listener is None:
            # RST comes back after the full round trip.
            delay_back = self.latency.sample_one_way_ms(
                syn.dst, syn.src, syn.traffic_class
            )
            self.sim.schedule(delay_out + delay_back, client._refused)
            return
        self.sim.schedule(delay_out, self._accept, syn, client, listener)

    def _accept(
        self,
        syn: Packet,
        client: "StreamConnection",
        listener: Callable[["StreamConnection"], None],
    ) -> None:
        _, conn_id, sport = syn.payload
        server = StreamConnection(
            fabric=self,
            conn_id=conn_id,
            local=syn.dst,
            remote=syn.src,
            local_port=syn.dport,
            remote_port=sport,
            traffic_class=syn.traffic_class,
            is_client=False,
        )
        server.established = True
        client._peer = server
        server._peer = client
        listener(server)
        delay_back = self.latency.sample_one_way_ms(
            syn.dst, syn.src, syn.traffic_class
        ) + syn.dst.serialization_delay_ms(60)
        self.sim.schedule(delay_back, client._establish)

    def _transmit(
        self, conn: "StreamConnection", payload: Any, size_bytes: int
    ) -> None:
        peer = conn._peer
        if peer is None:
            raise SimulationError("stream has no peer (not established?)")
        delay = self.latency.sample_one_way_ms(
            conn.local, conn.remote, conn.traffic_class
        ) + conn.local.serialization_delay_ms(size_bytes)
        # TCP delivers in order: never let a later segment overtake an
        # earlier one just because its sampled jitter was smaller.
        arrival = max(self.sim.now + delay, conn._last_arrival + 1e-6)
        conn._last_arrival = arrival
        self.sim.schedule_at(arrival, peer._receive, payload)


class StreamConnection:
    """One endpoint of an established (or establishing) stream."""

    def __init__(
        self,
        fabric: NetworkFabric,
        conn_id: int,
        local: Host,
        remote: Host,
        local_port: int,
        remote_port: int,
        traffic_class: TrafficClass,
        is_client: bool,
    ) -> None:
        self.fabric = fabric
        self.conn_id = conn_id
        self.local = local
        self.remote = remote
        self.local_port = local_port
        self.remote_port = remote_port
        self.traffic_class = traffic_class
        self.is_client = is_client
        self.established = False
        self.closed = False
        self.on_data: Callable[[Any], None] | None = None
        self.on_close: Callable[[], None] | None = None
        self._last_arrival: Milliseconds = 0.0
        self._peer: StreamConnection | None = None
        self._on_established: Callable[["StreamConnection"], None] | None = None
        self._on_failure: Callable[[str], None] | None = None

    def send(self, payload: Any, size_bytes: int = 512) -> None:
        """Deliver ``payload`` to the peer's ``on_data`` after transit."""
        if not self.established or self.closed:
            raise SimulationError("cannot send on a non-established stream")
        self.fabric._transmit(self, payload, size_bytes)

    def close(self) -> None:
        """Close both endpoints (peer's ``on_close`` fires after transit)."""
        if self.closed:
            return
        self.closed = True
        peer = self._peer
        if peer is not None and not peer.closed:
            delay = self.fabric.latency.sample_one_way_ms(
                self.local, self.remote, self.traffic_class
            )
            self.fabric.sim.schedule(delay, peer._peer_closed)

    # --- internal callbacks -----------------------------------------------

    def _establish(self) -> None:
        self.established = True
        if self._on_established is not None:
            self._on_established(self)

    def _refused(self) -> None:
        self.closed = True
        if self._on_failure is not None:
            self._on_failure("connection refused")

    def _receive(self, payload: Any) -> None:
        if self.closed:
            return
        if self.on_data is not None:
            self.on_data(payload)

    def _peer_closed(self) -> None:
        self.closed = True
        if self.on_close is not None:
            self.on_close()

    def __repr__(self) -> str:
        state = "established" if self.established else "connecting"
        if self.closed:
            state = "closed"
        return (
            f"StreamConnection({self.local.name}:{self.local_port} -> "
            f"{self.remote.name}:{self.remote_port}, {state})"
        )


class IcmpPinger:
    """Sends ICMP echo requests and reports RTTs (the paper's ``ping``)."""

    def __init__(self, fabric: NetworkFabric, src: Host) -> None:
        self.fabric = fabric
        self.src = src
        self._pending: dict[int, Milliseconds] = {}
        self._seq = itertools.count()
        self._rtts: list[Milliseconds] = []
        self._want = 0
        self._on_done: Callable[[list[Milliseconds]], None] | None = None
        fabric.bind_icmp_listener(src, self._on_reply)

    def ping(
        self,
        dst: Host,
        count: int,
        interval_ms: Milliseconds = 20.0,
        on_done: Callable[[list[Milliseconds]], None] | None = None,
    ) -> None:
        """Send ``count`` echoes, ``interval_ms`` apart; collect RTTs."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self._rtts = []
        self._want = count
        self._on_done = on_done
        for i in range(count):
            self.fabric.sim.schedule(i * interval_ms, self._send_one, dst)

    def _send_one(self, dst: Host) -> None:
        seq = next(self._seq)
        self._pending[seq] = self.fabric.sim.now
        packet = Packet(
            src=self.src,
            dst=dst,
            sport=ICMP_PORT,
            dport=ICMP_PORT,
            traffic_class=TrafficClass.ICMP,
            payload=("echo-request", seq, None),
            size_bytes=64,
        )
        self.fabric.send(packet)

    def _on_reply(self, packet: Packet) -> None:
        _, seq, _ = packet.payload
        sent_at = self._pending.pop(seq, None)
        if sent_at is None:
            return
        self._rtts.append(self.fabric.sim.now - sent_at)
        if len(self._rtts) >= self._want and self._on_done is not None:
            done, self._on_done = self._on_done, None
            done(list(self._rtts))

    def measure_min_rtt(self, dst: Host, count: int = 100) -> Milliseconds:
        """Synchronous helper: run the simulator and return the min RTT."""
        result: list[Milliseconds] = []
        self.ping(dst, count, on_done=result.extend)
        self.fabric.sim.run_until_idle()
        if len(result) < count:
            raise SimulationError("ping replies lost")
        return min(result)


class TcpConnectProber:
    """Measures RTT via TCP handshakes (the paper's ``tcptraceroute``)."""

    #: Listener port probes target; testbed hosts bind a discard service here.
    PROBE_PORT = 9

    def __init__(self, fabric: NetworkFabric, src: Host) -> None:
        self.fabric = fabric
        self.src = src

    def probe(
        self,
        dst: Host,
        count: int,
        interval_ms: Milliseconds = 20.0,
        on_done: Callable[[list[Milliseconds]], None] | None = None,
    ) -> None:
        """Run ``count`` handshake probes and report the RTT list."""
        rtts: list[Milliseconds] = []

        def launch_one() -> None:
            started = self.fabric.sim.now

            def established(conn: StreamConnection) -> None:
                rtts.append(self.fabric.sim.now - started)
                conn.close()
                if len(rtts) >= count and on_done is not None:
                    on_done(list(rtts))

            def failed(reason: str) -> None:
                # Refused still measures a full round trip (RST-based probe).
                rtts.append(self.fabric.sim.now - started)
                if len(rtts) >= count and on_done is not None:
                    on_done(list(rtts))

            self.fabric.connect(
                self.src, dst, self.PROBE_PORT, TrafficClass.TCP, established, failed
            )

        for i in range(count):
            self.fabric.sim.schedule(i * interval_ms, launch_one)

    def measure_min_rtt(self, dst: Host, count: int = 100) -> Milliseconds:
        """Synchronous helper: run the simulator and return the min RTT."""
        result: list[Milliseconds] = []
        self.probe(dst, count, on_done=result.extend)
        self.fabric.sim.run_until_idle()
        if not result:
            raise SimulationError("no TCP probe completed")
        return min(result)
