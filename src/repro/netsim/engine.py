"""Deterministic discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock (milliseconds) and a binary heap
of pending events. Events scheduled for the same instant fire in the order
they were scheduled (a monotonically increasing sequence number breaks
ties), which makes every run bit-for-bit reproducible.

The engine is intentionally minimal: callbacks, timers, and a blocking
``run``. Higher layers (transport, Tor relays, the Ting measurer) build
request/response patterns out of callbacks; nothing in the library uses
threads or wall-clock time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.errors import SimulationError
from repro.util.units import Milliseconds


@dataclass(order=True)
class _Event:
    time: Milliseconds
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> Milliseconds:
        """The simulated time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this handle."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        self._event.cancelled = True


class Simulator:
    """A deterministic event loop over a virtual millisecond clock."""

    def __init__(self) -> None:
        self._now: Milliseconds = 0.0
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> Milliseconds:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(
        self,
        delay: Milliseconds,
        callback: Callable[..., None],
        *args: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self,
        time: Milliseconds,
        callback: Callable[..., None],
        *args: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: time={time} < now={self._now}"
            )
        event = _Event(time=time, seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def run(
        self,
        until: Milliseconds | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Process events in timestamp order.

        Stops when the queue is empty, when the next event lies beyond
        ``until`` (the clock is then advanced *to* ``until``), after
        ``max_events`` events, or as soon as ``stop_when()`` returns true
        (checked after every event) — whichever comes first.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            processed = 0
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.callback(*event.args)
                self._events_processed += 1
                processed += 1
                if stop_when is not None and stop_when():
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Run until no events remain; guard against runaway loops."""
        self.run(max_events=max_events)
        if self._heap and not all(e.cancelled for e in self._heap):
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.3f}ms, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )
