"""Deterministic discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock (milliseconds) and a binary heap
of pending events. Events scheduled for the same instant fire in the order
they were scheduled (a monotonically increasing sequence number breaks
ties), which makes every run bit-for-bit reproducible.

The engine is intentionally minimal: callbacks, timers, and a blocking
``run``. Higher layers (transport, Tor relays, the Ting measurer) build
request/response patterns out of callbacks; nothing in the library uses
threads or wall-clock time.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable

from repro.obs import HEAP_COMPACTION, NULL_EVENTS, NULL_METRICS, NULL_TRACE
from repro.util.errors import SimulationError
from repro.util.units import Milliseconds


class _Event:
    """One heap entry. Slotted and hand-compared: campaigns push tens of
    millions of these, so per-event dict storage and tuple-building
    dataclass comparisons are a dominant cost of the event loop."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "done")

    def __init__(
        self,
        time: Milliseconds,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Set once the event has left the heap (fired or purged); a cancel
        # after that must not perturb the simulator's cancelled-count.
        self.done = False

    def __lt__(self, other: "_Event") -> bool:
        # Total order on (time, seq) — identical to the dataclass
        # comparison it replaces, without building tuples per heap op.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> Milliseconds:
        """The simulated time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this handle."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        event = self._event
        if event.cancelled or event.done:
            return
        event.cancelled = True
        self._sim._note_cancelled()


class Simulator:
    """A deterministic event loop over a virtual millisecond clock.

    Cancelled events are not left to rot until their (possibly
    far-future) timestamps: the simulator counts live cancellations and
    compacts the heap whenever they outnumber the live entries. Event
    ordering is total — ``(time, seq)`` — so a compaction (filter +
    re-heapify) cannot change the firing order; runs remain bit-for-bit
    reproducible.
    """

    #: Compaction trigger floor: below this many pending cancellations
    #: the heap is left alone (re-heapifying tiny heaps buys nothing).
    COMPACTION_MIN_CANCELLED = 64

    #: Events processed between batch-bookkeeping ticks. A tick reads
    #: the wall clock once (stall detection) and pumps ``on_batch``
    #: (worker heartbeats), so the hot loop pays one integer decrement
    #: per event rather than a syscall.
    BATCH_EVENTS = 4096

    #: Wall seconds one batch may take before an ``engine`` /
    #: ``event_loop_stall`` warning event fires.
    STALL_THRESHOLD_S = 1.0

    def __init__(self) -> None:
        self._now: Milliseconds = 0.0
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._cancelled_pending = 0
        self._events_cancelled = 0
        self._heap_compactions = 0
        self._compaction_purged = 0
        self._heap_peak = 0
        self.compaction_min_cancelled = self.COMPACTION_MIN_CANCELLED
        #: Observability sinks; no-ops unless a live registry is wired in
        #: (see ``MeasurementHost.enable_observability``).
        self.metrics = NULL_METRICS
        self.trace = NULL_TRACE
        self.events = NULL_EVENTS
        #: Called every :data:`BATCH_EVENTS` processed events while the
        #: loop runs — how shard workers pump heartbeats from *inside*
        #: a long simulation, not just between tasks.
        self.on_batch: Callable[[], None] | None = None
        self.stall_threshold_s = self.STALL_THRESHOLD_S
        self._batch_left = self.BATCH_EVENTS
        self._batch_wall: float | None = None

    @property
    def now(self) -> Milliseconds:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled_pending

    @property
    def events_cancelled(self) -> int:
        """Total cancellations over the simulator's lifetime."""
        return self._events_cancelled

    @property
    def heap_compactions(self) -> int:
        """How many times the heap was compacted to purge cancellations."""
        return self._heap_compactions

    @property
    def heap_peak(self) -> int:
        """The largest heap size observed so far."""
        return self._heap_peak

    def schedule(
        self,
        delay: Milliseconds,
        callback: Callable[..., None],
        *args: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self,
        time: Milliseconds,
        callback: Callable[..., None],
        *args: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: time={time} < now={self._now}"
            )
        event = _Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        if len(self._heap) > self._heap_peak:
            self._heap_peak = len(self._heap)
        return EventHandle(event, self)

    def _note_cancelled(self) -> None:
        """Bookkeeping for one live cancellation; compacts when due.

        Every echo run schedules a far-future deadline and cancels it on
        success, so long campaigns would otherwise accumulate hundreds of
        thousands of dead heap entries. Compaction keeps the heap sized
        to its live events.
        """
        self._cancelled_pending += 1
        self._events_cancelled += 1
        if (
            self._cancelled_pending >= self.compaction_min_cancelled
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Ordering is total on ``(time, seq)``, so rebuilding the heap from
        the surviving events pops in exactly the same order as before.
        """
        purged = self._cancelled_pending
        for event in self._heap:
            if event.cancelled:
                event.done = True
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self._compaction_purged += purged
        self._heap_compactions += 1
        self.metrics.inc("sim.heap_compactions")
        self.metrics.inc("sim.heap_compaction_purged", purged)
        if self.trace.enabled:
            self.trace.record(
                self._now, HEAP_COMPACTION, purged=purged, live=len(self._heap)
            )
        if self.events.enabled:
            self.events.info(
                "engine", "heap_compaction", purged=purged, live=len(self._heap)
            )

    def _batch_tick(self) -> None:
        """Per-batch bookkeeping: stall detection plus the batch hook.

        Compares one wall-clock read per :data:`BATCH_EVENTS` events
        against the previous tick; a batch that took longer than
        ``stall_threshold_s`` means the *host* is struggling (swap, CPU
        starvation, a pathological callback) even though simulated time
        is marching — exactly the situation a silent worker hides.
        """
        self._batch_left = self.BATCH_EVENTS
        now_wall = time.perf_counter()
        last_wall = self._batch_wall
        self._batch_wall = now_wall
        if last_wall is not None and self.events.enabled:
            elapsed = now_wall - last_wall
            if elapsed > self.stall_threshold_s:
                self.events.warning(
                    "engine",
                    "event_loop_stall",
                    batch_wall_s=round(elapsed, 3),
                    batch_events=self.BATCH_EVENTS,
                    pending=len(self._heap),
                )
        if self.on_batch is not None:
            self.on_batch()

    def run(
        self,
        until: Milliseconds | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Process events in timestamp order.

        Stops when the queue is empty, when the next event lies beyond
        ``until`` (the clock is then advanced *to* ``until``), after
        ``max_events`` events, or as soon as ``stop_when()`` returns true
        (checked after every event) — whichever comes first.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        # Wall time spent *between* run() calls must not read as a
        # stall; the first batch tick of each run just baselines.
        self._batch_wall = None
        try:
            processed = 0
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    event.done = True
                    self._cancelled_pending -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                event.done = True
                self._now = event.time
                event.callback(*event.args)
                self._events_processed += 1
                processed += 1
                self._batch_left -= 1
                if not self._batch_left:
                    self._batch_tick()
                if stop_when is not None and stop_when():
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            metrics = self.metrics
            if metrics.enabled:
                metrics.set_gauge("sim.events_processed", self._events_processed)
                metrics.set_gauge("sim.events_cancelled", self._events_cancelled)
                metrics.set_gauge("sim.heap_pending", len(self._heap))
                metrics.max_gauge("sim.heap_peak", self._heap_peak)
                metrics.set_gauge(
                    "sim.cancelled_ratio",
                    self._cancelled_pending / len(self._heap) if self._heap else 0.0,
                )

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Run until no events remain; guard against runaway loops."""
        self.run(max_events=max_events)
        if self._heap and not all(e.cancelled for e in self._heap):
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.3f}ms, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )
