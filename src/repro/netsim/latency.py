"""The latency engine: one-way delays per packet, per traffic class.

One-way delay between two hosts decomposes as::

    base (deterministic)            sampled (stochastic)
    ----------------------------    --------------------
    routed backbone path latency    queueing jitter
    + src & dst access delays
    + per-class policy extras

The *base* component is the deterministic floor: the minimum any packet of
that class can achieve. The jitter component models queueing along the
path — mostly small, occasionally heavy-tailed — and is what Ting's
min-of-N filter strips away. :meth:`LatencyEngine.true_rtt_ms` exposes the
floor directly; it plays the role the paper's `ping` ground truth played
on PlanetLab (but without ping's protocol-policy confounds, since the
simulator can report the *Tor-class* floor exactly).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.netsim.policies import TrafficClass
from repro.netsim.routing import Router
from repro.netsim.topology import Host, Topology
from repro.util.rng import RandomStreams
from repro.util.units import Milliseconds


class JitterModel(abc.ABC):
    """Samples non-negative queueing jitter added to each packet's delay."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Milliseconds:
        """Draw one jitter value in milliseconds (>= 0)."""

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` jitter values; subclasses may vectorize."""
        return np.array([self.sample(rng) for _ in range(n)])


class ExponentialJitter(JitterModel):
    """Exponential body with an occasional heavy-tailed burst.

    Matches the queueing behaviour the paper observed (Section 4.4 /
    Figure 6): most samples sit close to the floor, but a minority land
    far above it, so reaching the *true* minimum takes many samples while
    getting within 1 ms takes ~25x fewer.
    """

    def __init__(
        self,
        scale_ms: float = 0.15,
        burst_probability: float = 0.02,
        burst_scale_ms: float = 12.0,
    ) -> None:
        if scale_ms < 0 or burst_scale_ms < 0:
            raise ValueError("jitter scales must be non-negative")
        if not 0.0 <= burst_probability <= 1.0:
            raise ValueError("burst_probability must be in [0, 1]")
        self.scale_ms = scale_ms
        self.burst_probability = burst_probability
        self.burst_scale_ms = burst_scale_ms

    def sample(self, rng: np.random.Generator) -> Milliseconds:
        jitter = float(rng.exponential(self.scale_ms))
        if rng.random() < self.burst_probability:
            jitter += float(rng.exponential(self.burst_scale_ms))
        return jitter

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        jitter = rng.exponential(self.scale_ms, size=n)
        bursts = rng.random(n) < self.burst_probability
        jitter[bursts] += rng.exponential(self.burst_scale_ms, size=int(bursts.sum()))
        return jitter


class NoJitter(JitterModel):
    """Zero jitter; useful in unit tests that need exact delays."""

    def sample(self, rng: np.random.Generator) -> Milliseconds:
        return 0.0

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.zeros(n)


class LatencyEngine:
    """Answers delay queries for the transport layer.

    ``loopback_rtt_ms`` is the round-trip between two processes on the
    same host (or two hosts in the same /24 on one machine) — small but
    non-zero, as the paper's Equation (1) retains via its R(h, h) terms.
    """

    def __init__(
        self,
        topology: Topology,
        router: Router,
        streams: RandomStreams,
        jitter: JitterModel | None = None,
        loopback_rtt_ms: Milliseconds = 0.08,
    ) -> None:
        self.topology = topology
        self.router = router
        self.jitter = jitter if jitter is not None else ExponentialJitter()
        self._rng = streams.get("netsim.latency.jitter")
        self.loopback_rtt_ms = loopback_rtt_ms
        self._base_cache: dict[tuple[int, int, TrafficClass], Milliseconds] = {}

    # --- deterministic floor -------------------------------------------

    def base_one_way_ms(
        self, src: Host, dst: Host, traffic_class: TrafficClass
    ) -> Milliseconds:
        """The deterministic minimum one-way delay for this class."""
        if src.host_id == dst.host_id or self._colocated(src, dst):
            return self.loopback_rtt_ms / 2.0
        key = (
            min(src.host_id, dst.host_id),
            max(src.host_id, dst.host_id),
            traffic_class,
        )
        base = self._base_cache.get(key)
        if base is None:
            low = self.topology.hosts[key[0]]
            high = self.topology.hosts[key[1]]
            backbone = self.router.path_latency_ms(low.pop_id, high.pop_id)
            base = (
                backbone
                + low.access_delay_ms
                + high.access_delay_ms
                + low.policy.extra_ms(traffic_class)
                + high.policy.extra_ms(traffic_class)
            )
            self._base_cache[key] = base
        return base

    def true_rtt_ms(
        self,
        src: Host,
        dst: Host,
        traffic_class: TrafficClass = TrafficClass.TOR,
    ) -> Milliseconds:
        """Ground-truth minimum RTT between two hosts for a class.

        This is the oracle the validation experiments compare Ting
        against (the paper's role for all-pairs ping on PlanetLab).
        """
        return 2.0 * self.base_one_way_ms(src, dst, traffic_class)

    # --- per-packet samples ---------------------------------------------

    def sample_one_way_ms(
        self, src: Host, dst: Host, traffic_class: TrafficClass
    ) -> Milliseconds:
        """One packet's one-way delay: floor plus sampled jitter."""
        base = self.base_one_way_ms(src, dst, traffic_class)
        if src.host_id == dst.host_id or self._colocated(src, dst):
            # Loopback jitter is scheduling noise only: tiny.
            return base + float(self._rng.exponential(0.01))
        return base + self.jitter.sample(self._rng)

    def sample_rtts_ms(
        self,
        src: Host,
        dst: Host,
        traffic_class: TrafficClass,
        n: int,
    ) -> np.ndarray:
        """Vectorized: ``n`` independent RTT samples for a host pair.

        Used by the fast analytic path for large campaigns; equivalent in
        distribution to 2x one-way samples through the event engine, minus
        relay forwarding delays (which the Tor layer adds itself).
        """
        base = 2.0 * self.base_one_way_ms(src, dst, traffic_class)
        jitter = self.jitter.sample_many(self._rng, n) + self.jitter.sample_many(
            self._rng, n
        )
        return base + jitter

    @staticmethod
    def _colocated(src: Host, dst: Host) -> bool:
        """Hosts in the same /24 are treated as on one machine/subnet."""
        return src.prefix24 == dst.prefix24
