"""Per-network protocol policies: why ping and Tor disagree.

Section 3.2 of the paper observes that "not all packets are treated
equally": some networks delay ICMP relative to TCP, some deprioritize or
inspect Tor traffic specifically, and the direction of the difference is
unpredictable. Section 4.3 quantifies it — roughly 35% of the PlanetLab
hosts' networks showed anomalous (sometimes *negative*) forwarding-delay
estimates when ping was used as ground truth.

:class:`ProtocolPolicy` models the per-traffic-class extra one-way delay a
host's access network imposes, and :class:`PolicyModel` samples policies
with the paper's observed mix of well-behaved and differential networks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.util.units import Milliseconds


class TrafficClass(enum.Enum):
    """The transport classes networks are observed to discriminate among."""

    ICMP = "icmp"
    TCP = "tcp"
    TOR = "tor"  # TCP carrying Tor cells; distinguishable by port/DPI


@dataclass(frozen=True)
class ProtocolPolicy:
    """Extra one-way delay (ms) a network adds per traffic class.

    A policy with all zeros is a well-behaved network. A *differential*
    policy breaks the assumption that a ping RTT is a sub-path of a Tor
    RTT — exactly the failure mode that sinks the paper's strawman.
    """

    icmp_extra_ms: Milliseconds = 0.0
    tcp_extra_ms: Milliseconds = 0.0
    tor_extra_ms: Milliseconds = 0.0

    def __post_init__(self) -> None:
        for name in ("icmp_extra_ms", "tcp_extra_ms", "tor_extra_ms"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def extra_ms(self, traffic_class: TrafficClass) -> Milliseconds:
        """One-way extra delay for ``traffic_class`` through this network."""
        if traffic_class is TrafficClass.ICMP:
            return self.icmp_extra_ms
        if traffic_class is TrafficClass.TCP:
            return self.tcp_extra_ms
        return self.tor_extra_ms

    @property
    def is_differential(self) -> bool:
        """True if any two traffic classes see different delays."""
        return not (
            self.icmp_extra_ms == self.tcp_extra_ms == self.tor_extra_ms
        )


#: A policy that treats every class identically with zero overhead.
NEUTRAL_POLICY = ProtocolPolicy()


class PolicyModel:
    """Samples per-network protocol policies.

    With probability ``differential_fraction`` (default 0.35, matching the
    anomalous share in Figure 5), the sampled network discriminates among
    classes using one of the patterns the paper describes:

    * ``icmp-deprioritized`` — ICMP answered slowly (slow-path/ratelimited
      on the router CPU); ping looks *worse* than Tor, so a ping-based
      forwarding-delay estimate goes negative.
    * ``tor-throttled`` — Tor traffic inspected or shaped; Tor looks worse
      than ping.
    * ``icmp-and-tor`` — both non-plain-TCP classes penalized differently.
    """

    PATTERNS = ("icmp-deprioritized", "tor-throttled", "icmp-and-tor")

    def __init__(
        self,
        differential_fraction: float = 0.35,
        mild_penalty_range: tuple[float, float] = (0.2, 1.5),
        severe_penalty_range: tuple[float, float] = (8.0, 30.0),
        severe_fraction: float = 0.15,
    ) -> None:
        if not 0.0 <= differential_fraction <= 1.0:
            raise ValueError(
                f"differential_fraction must be in [0, 1], got {differential_fraction}"
            )
        if not 0.0 <= severe_fraction <= 1.0:
            raise ValueError(f"severe_fraction must be in [0, 1], got {severe_fraction}")
        self.differential_fraction = differential_fraction
        self.mild_penalty_range = mild_penalty_range
        self.severe_penalty_range = severe_penalty_range
        self.severe_fraction = severe_fraction

    def _penalty(self, rng: np.random.Generator, allow_severe: bool) -> float:
        """Penalties are bimodal: most differential networks only nudge a
        class by a few ms (slow-path handling); a minority punish ICMP
        hard, producing the tens-of-ms anomalies of Figure 5. Severe
        penalties apply to ICMP only — routers deprioritize echo
        processing wholesale, whereas Tor-class shaping (DPI/port-based)
        is subtler."""
        if allow_severe and rng.random() < self.severe_fraction:
            return float(rng.uniform(*self.severe_penalty_range))
        return float(rng.uniform(*self.mild_penalty_range))

    def sample(self, rng: np.random.Generator) -> ProtocolPolicy:
        """Draw one network's policy."""
        if rng.random() >= self.differential_fraction:
            return NEUTRAL_POLICY
        pattern = self.PATTERNS[rng.integers(0, len(self.PATTERNS))]
        if pattern == "icmp-deprioritized":
            return ProtocolPolicy(icmp_extra_ms=self._penalty(rng, allow_severe=True))
        if pattern == "tor-throttled":
            return ProtocolPolicy(tor_extra_ms=self._penalty(rng, allow_severe=False))
        return ProtocolPolicy(
            icmp_extra_ms=self._penalty(rng, allow_severe=True),
            tor_extra_ms=self._penalty(rng, allow_severe=False),
        )
