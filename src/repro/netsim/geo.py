"""Geography: coordinates, great-circle distances, and a city catalogue.

The paper's testbeds are geographically diverse (PlanetLab hosts across 6
European countries, 9 U.S. states, Asia, South America, Australia, and the
Middle East; the live Tor network concentrated in the U.S. and Europe).
The catalogue below provides real city coordinates with region tags so the
testbed builders can reproduce those distributions, and Figure 8 can plot
latency against true great-circle distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import Kilometers

#: Mean Earth radius in kilometers (IUGG).
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class GeoPoint:
    """A WGS-84 latitude/longitude pair in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")


def great_circle_km(a: GeoPoint, b: GeoPoint) -> Kilometers:
    """Great-circle distance between two points via the haversine formula.

    Accurate to ~0.5% (spherical Earth), which is far below the latency
    noise the simulator models; this matches how the paper computed
    distances from geolocated coordinates.
    """
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


@dataclass(frozen=True)
class City:
    """A catalogue entry: name, country, region tag, and coordinates."""

    name: str
    country: str
    region: str  # "us", "europe", "asia", "south-america", "oceania", "middle-east"
    point: GeoPoint


def _city(name: str, country: str, region: str, lat: float, lon: float) -> City:
    return City(name=name, country=country, region=region, point=GeoPoint(lat, lon))


#: Cities the topology and testbed builders draw from.  The U.S. entries
#: cover more than nine states and the European entries more than six
#: countries, matching the PlanetLab testbed requirements in Section 4.1.
CITY_CATALOG: tuple[City, ...] = (
    # --- United States (14 states) ---
    _city("Seattle", "US", "us", 47.6062, -122.3321),
    _city("Portland", "US", "us", 45.5152, -122.6784),
    _city("San Francisco", "US", "us", 37.7749, -122.4194),
    _city("Los Angeles", "US", "us", 34.0522, -118.2437),
    _city("Salt Lake City", "US", "us", 40.7608, -111.8910),
    _city("Denver", "US", "us", 39.7392, -104.9903),
    _city("Dallas", "US", "us", 32.7767, -96.7970),
    _city("Chicago", "US", "us", 41.8781, -87.6298),
    _city("Minneapolis", "US", "us", 44.9778, -93.2650),
    _city("Atlanta", "US", "us", 33.7490, -84.3880),
    _city("Miami", "US", "us", 25.7617, -80.1918),
    _city("New York", "US", "us", 40.7128, -74.0060),
    _city("Boston", "US", "us", 42.3601, -71.0589),
    _city("College Park", "US", "us", 38.9897, -76.9378),
    # --- Europe (10 countries) ---
    _city("London", "GB", "europe", 51.5074, -0.1278),
    _city("Cambridge", "GB", "europe", 52.2053, 0.1218),
    _city("Paris", "FR", "europe", 48.8566, 2.3522),
    _city("Amsterdam", "NL", "europe", 52.3676, 4.9041),
    _city("Frankfurt", "DE", "europe", 50.1109, 8.6821),
    _city("Berlin", "DE", "europe", 52.5200, 13.4050),
    _city("Zurich", "CH", "europe", 47.3769, 8.5417),
    _city("Milan", "IT", "europe", 45.4642, 9.1900),
    _city("Madrid", "ES", "europe", 40.4168, -3.7038),
    _city("Stockholm", "SE", "europe", 59.3293, 18.0686),
    _city("Warsaw", "PL", "europe", 52.2297, 21.0122),
    _city("Vienna", "AT", "europe", 48.2082, 16.3738),
    _city("Prague", "CZ", "europe", 50.0755, 14.4378),
    # --- Asia ---
    _city("Tokyo", "JP", "asia", 35.6762, 139.6503),
    _city("Seoul", "KR", "asia", 37.5665, 126.9780),
    _city("Singapore", "SG", "asia", 1.3521, 103.8198),
    _city("Hong Kong", "HK", "asia", 22.3193, 114.1694),
    # --- South America ---
    _city("Sao Paulo", "BR", "south-america", -23.5505, -46.6333),
    _city("Buenos Aires", "AR", "south-america", -34.6037, -58.3816),
    # --- Oceania ---
    _city("Sydney", "AU", "oceania", -33.8688, 151.2093),
    _city("Melbourne", "AU", "oceania", -37.8136, 144.9631),
    # --- Middle East ---
    _city("Tel Aviv", "IL", "middle-east", 32.0853, 34.7818),
    _city("Dubai", "AE", "middle-east", 25.2048, 55.2708),
)


def cities_in_region(region: str) -> tuple[City, ...]:
    """All catalogue cities tagged with ``region``."""
    matches = tuple(c for c in CITY_CATALOG if c.region == region)
    if not matches:
        known = sorted({c.region for c in CITY_CATALOG})
        raise ValueError(f"unknown region {region!r}; known regions: {known}")
    return matches


#: Relay-population weights per region, shaped like the live Tor network:
#: heavy in Europe and the U.S., sparse elsewhere (Section 4.1).
TOR_REGION_WEIGHTS: dict[str, float] = {
    "europe": 0.55,
    "us": 0.33,
    "asia": 0.06,
    "south-america": 0.02,
    "oceania": 0.02,
    "middle-east": 0.02,
}
