"""All-pairs RTT datasets, with per-pair measurement provenance.

:class:`RttMatrix` is the product Ting exists to create: a symmetric
matrix of minimum RTTs between every pair in a relay set. Every
application in Section 5 (deanonymization speedup, TIV hunting, long
low-latency circuits) consumes one of these. Matrices serialize to JSON
so that expensive campaigns can be cached, which Section 4.6 justifies:
Ting's measurements are stable over at least a week.

A bare matrix cannot say *why* an entry is what it is, so instrumented
campaigns also emit one :class:`PairProvenance` record per pair — how
many probe samples were taken and survived, which legs came from cache,
how many retries it took, the residual ``½R_Cx + ½R_Cy`` terms Eq. 4
subtracted, and (on failure) the categorized reason.

At full-network scale (1,000+ relays, ~500k pairs per campaign) a list
of per-pair Python objects is the dominant memory and serialization
cost, so :class:`ProvenanceLog` stores records column-wise: flat numpy
arrays per field, with node identifiers and category strings interned
into small side tables. :class:`PairProvenance` / :class:`LegProvenance`
stay as plain value objects — the log materializes them on demand — so
the public API is unchanged while merges become array concatenation and
the fork-boundary snapshot becomes a handful of buffers.

:class:`CampaignDataset` persists matrix + provenance + run metadata as
one document: JSON for small/debug datasets, or a deterministic ``.npz``
container (matrix + provenance columns + a meta JSON sidecar entry) for
large ones, with format auto-detection on load.
"""

from __future__ import annotations

import hashlib
import io
import json
import math
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.util.errors import MeasurementError
from repro.util.units import Milliseconds


class RttMatrix:
    """A symmetric all-pairs RTT matrix keyed by node identifier."""

    def __init__(self, nodes: list[str]) -> None:
        if len(nodes) != len(set(nodes)):
            raise MeasurementError("node identifiers must be unique")
        self.nodes = list(nodes)
        self._index = {node: i for i, node in enumerate(self.nodes)}
        n = len(nodes)
        self._matrix = np.full((n, n), np.nan)
        np.fill_diagonal(self._matrix, 0.0)
        self._num_measured = 0
        self._readonly = False
        self._view = self._matrix.view()
        self._view.flags.writeable = False

    @classmethod
    def from_array(
        cls, nodes: list[str], values: np.ndarray, copy: bool = True
    ) -> "RttMatrix":
        """Adopt an ``n×n`` float array (NaN where unmeasured).

        ``copy=False`` adopts ``values`` as the backing store without
        writing to it — the zero-copy path for memory-mapped datasets,
        where the array is a read-only ``np.memmap`` shared by every
        forked reader through the page cache. A read-only backing flips
        the matrix into copy-on-write mode: the first mutation
        (:meth:`set`, or an :meth:`~CampaignDataset.absorb` into it)
        silently materializes a private writable copy first.
        """
        n = len(nodes)
        if not (isinstance(values, np.ndarray) and values.dtype == np.float64):
            values = np.asarray(values, dtype=float)
        if values.shape != (n, n):
            raise MeasurementError(
                f"matrix shape {values.shape} does not match {n} nodes"
            )
        if copy:
            matrix = cls(nodes)
            matrix._matrix[:, :] = values
            np.fill_diagonal(matrix._matrix, 0.0)
            matrix._recount()
            return matrix
        if np.any(np.diagonal(values) != 0.0):
            raise MeasurementError("adopted matrix must have a zero diagonal")
        matrix = cls.__new__(cls)
        matrix.nodes = list(nodes)
        if len(matrix.nodes) != len(set(matrix.nodes)):
            raise MeasurementError("node identifiers must be unique")
        matrix._index = {node: i for i, node in enumerate(matrix.nodes)}
        matrix._matrix = values
        matrix._readonly = not values.flags.writeable
        matrix._view = values.view()
        matrix._view.flags.writeable = False
        matrix._recount()
        return matrix

    def _materialize(self) -> None:
        """Copy-on-write: replace a read-only backing (a mmapped npz
        entry) with a private writable copy. No-op on owned matrices."""
        if not self._readonly:
            return
        self._matrix = np.array(self._matrix)
        self._readonly = False
        self._view = self._matrix.view()
        self._view.flags.writeable = False

    @property
    def is_readonly(self) -> bool:
        """Whether the backing store is read-only (mmapped). The first
        mutation transparently copies it out (copy-on-write)."""
        return self._readonly

    def _recount(self) -> None:
        n = len(self.nodes)
        missing = int(np.isnan(self._matrix).sum()) // 2
        self._num_measured = n * (n - 1) // 2 - missing

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._index

    def index_of(self, node: str) -> int:
        """Row/column index of a node identifier."""
        try:
            return self._index[node]
        except KeyError:
            raise MeasurementError(f"unknown node {node!r}") from None

    def set(self, a: str, b: str, rtt_ms: Milliseconds) -> None:
        """Record R(a, b); the matrix stays symmetric."""
        if rtt_ms < 0:
            raise MeasurementError(f"negative RTT {rtt_ms} for ({a}, {b})")
        i, j = self.index_of(a), self.index_of(b)
        if i == j:
            raise MeasurementError("diagonal entries are fixed at zero")
        if self._readonly:
            self._materialize()
        if math.isnan(self._matrix[i, j]):
            self._num_measured += 1
        self._matrix[i, j] = rtt_ms
        self._matrix[j, i] = rtt_ms

    def get(self, a: str, b: str) -> Milliseconds:
        """R(a, b); raises if the pair was never measured."""
        value = self._matrix[self.index_of(a), self.index_of(b)]
        if math.isnan(value):
            raise MeasurementError(f"pair ({a}, {b}) has not been measured")
        return float(value)

    def has(self, a: str, b: str) -> bool:
        """Whether the pair has been measured."""
        return not math.isnan(self._matrix[self.index_of(a), self.index_of(b)])

    # ------------------------------------------------------------------

    def pairs(self) -> Iterator[tuple[str, str]]:
        """All unordered node pairs (measured or not)."""
        for i, a in enumerate(self.nodes):
            for b in self.nodes[i + 1 :]:
                yield (a, b)

    def measured_pairs(self) -> Iterator[tuple[str, str, Milliseconds]]:
        """All measured unordered pairs with their RTTs."""
        n = len(self.nodes)
        iu, ju = np.triu_indices(n, k=1)
        values = self._matrix[iu, ju]
        keep = ~np.isnan(values)
        for i, j, value in zip(iu[keep], ju[keep], values[keep]):
            yield (self.nodes[i], self.nodes[j], float(value))

    @property
    def is_complete(self) -> bool:
        """Whether every off-diagonal pair has been measured. O(1)."""
        return self._num_measured == len(self.nodes) * (len(self.nodes) - 1) // 2

    @property
    def num_measured(self) -> int:
        """Count of measured (off-diagonal) pairs. O(1) — maintained
        incrementally by :meth:`set` instead of re-scanning for NaNs."""
        return self._num_measured

    @property
    def missing_count(self) -> int:
        """Count of unmeasured (off-diagonal) pairs. O(1)."""
        n = len(self.nodes)
        return n * (n - 1) // 2 - self._num_measured

    def mean_rtt_ms(self) -> Milliseconds:
        """μ — the population mean RTT Algorithm 1 uses to approximate
        the unknown source-to-entry leg."""
        values = self.values()
        if values.size == 0:
            raise MeasurementError("matrix has no measurements")
        return float(np.mean(values))

    def values(self) -> np.ndarray:
        """All measured RTTs as a flat array (one entry per pair)."""
        n = len(self.nodes)
        iu, ju = np.triu_indices(n, k=1)
        upper = self._matrix[iu, ju]
        return upper[~np.isnan(upper)]

    @property
    def matrix(self) -> np.ndarray:
        """A **read-only view** of the underlying ``n×n`` array (NaN
        where unmeasured). No copy — safe for hot readers; callers that
        want to mutate must use :meth:`copy_matrix`."""
        return self._view

    def copy_matrix(self) -> np.ndarray:
        """A mutable copy of the underlying matrix."""
        return self._matrix.copy()

    def as_array(self) -> np.ndarray:
        """A copy of the underlying matrix (NaN where unmeasured)."""
        return self._matrix.copy()

    def submatrix(self, nodes: list[str]) -> "RttMatrix":
        """Restrict to a node subset, keeping measured values."""
        sub = RttMatrix(nodes)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                if self.has(a, b):
                    sub.set(a, b, self.get(a, b))
        return sub

    def content_hash(self) -> str:
        """SHA-256 over nodes + values rounded to the serialization
        precision (6 decimals), so JSON and npz round-trips of the same
        matrix hash identically."""
        digest = hashlib.sha256()
        for node in self.nodes:
            digest.update(node.encode("utf-8"))
            digest.update(b"\x00")
        rounded = np.round(self._matrix, 6)
        # Normalize NaN payloads so the hash only sees "missing".
        rounded = np.nan_to_num(rounded, nan=-1.0)
        digest.update(np.ascontiguousarray(rounded).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Serialization

    def to_json(self) -> str:
        """Serialize the matrix (nodes + values) to a JSON string."""
        payload = {
            "nodes": self.nodes,
            "rtts_ms": [
                [None if math.isnan(v) else round(float(v), 6) for v in row]
                for row in self._matrix
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "RttMatrix":
        """Rebuild a matrix from :meth:`to_json` output."""
        payload = json.loads(text)
        matrix = cls(payload["nodes"])
        rows = payload["rtts_ms"]
        n = len(matrix.nodes)
        if len(rows) != n or any(len(row) != n for row in rows):
            raise MeasurementError("malformed RTT matrix JSON")
        values = np.array(
            [[np.nan if v is None else float(v) for v in row] for row in rows],
            dtype=float,
        ).reshape(n, n)
        matrix._matrix[:, :] = values
        np.fill_diagonal(matrix._matrix, 0.0)
        matrix._recount()
        return matrix

    def save(self, path: str | Path) -> None:
        """Write the matrix as JSON to ``path``."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "RttMatrix":
        """Read a matrix previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    def __repr__(self) -> str:
        return (
            f"RttMatrix(nodes={len(self.nodes)}, "
            f"measured={self.num_measured}/{len(self.nodes) * (len(self.nodes) - 1) // 2})"
        )


# ----------------------------------------------------------------------
# Per-pair measurement provenance


@dataclass(slots=True)
class PairProvenance:
    """Why one matrix entry is what it is (or why it is missing).

    One record per attempted pair. ``samples_requested``/``samples_kept``
    expose the min-filter's input and survivors; ``leg_cache_hits`` says
    how many of the two ``R_Cx``/``R_Cy`` legs were reused from an
    earlier pair (Section 4.3's dominant cost saver); ``retries`` counts
    extra attempts beyond the first; ``leg_x_ms``/``leg_y_ms`` are the
    residual one-way-circuit RTTs Eq. 4 subtracts (``residual_ms`` is the
    ``½R_Cx + ½R_Cy`` term itself). Failed pairs carry the categorized
    reason instead of an estimate.

    Value object only: :class:`ProvenanceLog` stores these column-wise
    and materializes records on demand, so mutating a returned record
    does not write back into the log.
    """

    x: str
    y: str
    status: str = "measured"  # "measured" | "failed"
    rtt_ms: float | None = None
    cxy_ms: float | None = None
    leg_x_ms: float | None = None
    leg_y_ms: float | None = None
    samples_requested: int = 0
    samples_kept: int = 0
    #: Probes the cap allowed but an adaptive early stop never sent.
    samples_saved: int = 0
    #: Why the probe round ended short of the cap ("converged",
    #: "deadline", "stream_death"); ``None`` for a full fixed run.
    stop_reason: str | None = None
    leg_cache_hits: int = 0
    retries: int = 0
    failure_category: str | None = None
    reason: str | None = None
    duration_ms: float = 0.0
    shard: int | None = None

    @property
    def residual_ms(self) -> float | None:
        """The ``½R_Cx + ½R_Cy`` term Eq. 4 subtracts from ``R_Cxy``."""
        if self.leg_x_ms is None or self.leg_y_ms is None:
            return None
        return (self.leg_x_ms + self.leg_y_ms) / 2.0

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready view; ``None`` fields are omitted for compactness."""
        record: dict[str, Any] = {
            "x": self.x,
            "y": self.y,
            "status": self.status,
            "samples_requested": self.samples_requested,
            "samples_kept": self.samples_kept,
            "leg_cache_hits": self.leg_cache_hits,
            "retries": self.retries,
            "duration_ms": round(self.duration_ms, 6),
        }
        for name in ("rtt_ms", "cxy_ms", "leg_x_ms", "leg_y_ms"):
            value = getattr(self, name)
            if value is not None:
                record[name] = round(float(value), 6)
        if self.residual_ms is not None:
            record["residual_ms"] = round(self.residual_ms, 6)
        # Adaptive-only fields stay out of fixed-policy records so the
        # historical provenance schema is byte-stable by default.
        if self.samples_saved:
            record["samples_saved"] = self.samples_saved
        if self.stop_reason is not None:
            record["stop_reason"] = self.stop_reason
        if self.failure_category is not None:
            record["failure_category"] = self.failure_category
        if self.reason is not None:
            record["reason"] = self.reason
        if self.shard is not None:
            record["shard"] = self.shard
        return record

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PairProvenance":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            x=data["x"],
            y=data["y"],
            status=data.get("status", "measured"),
            rtt_ms=data.get("rtt_ms"),
            cxy_ms=data.get("cxy_ms"),
            leg_x_ms=data.get("leg_x_ms"),
            leg_y_ms=data.get("leg_y_ms"),
            samples_requested=int(data.get("samples_requested", 0)),
            samples_kept=int(data.get("samples_kept", 0)),
            samples_saved=int(data.get("samples_saved", 0)),
            stop_reason=data.get("stop_reason"),
            leg_cache_hits=int(data.get("leg_cache_hits", 0)),
            retries=int(data.get("retries", 0)),
            failure_category=data.get("failure_category"),
            reason=data.get("reason"),
            duration_ms=float(data.get("duration_ms", 0.0)),
            shard=data.get("shard"),
        )


@dataclass(slots=True)
class LegProvenance:
    """Why one relay's shared leg estimate ``R_Cx`` is what it is.

    One record per leg circuit actually built. ``shard`` is ``None``
    when the leg was measured by the campaign-wide leg phase (the
    normal case for shard engine v2: legs belong to the campaign, not
    to any worker); it carries a worker index only when a worker had to
    measure a leg itself.
    """

    relay: str
    rtt_ms: float | None = None
    samples_requested: int = 0
    samples_kept: int = 0
    samples_saved: int = 0
    stop_reason: str | None = None
    duration_ms: float = 0.0
    shard: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready view; ``None`` fields are omitted for compactness."""
        record: dict[str, Any] = {
            "relay": self.relay,
            "samples_requested": self.samples_requested,
            "samples_kept": self.samples_kept,
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.rtt_ms is not None:
            record["rtt_ms"] = round(float(self.rtt_ms), 6)
        if self.samples_saved:
            record["samples_saved"] = self.samples_saved
        if self.stop_reason is not None:
            record["stop_reason"] = self.stop_reason
        if self.shard is not None:
            record["shard"] = self.shard
        return record

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LegProvenance":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            relay=data["relay"],
            rtt_ms=data.get("rtt_ms"),
            samples_requested=int(data.get("samples_requested", 0)),
            samples_kept=int(data.get("samples_kept", 0)),
            samples_saved=int(data.get("samples_saved", 0)),
            stop_reason=data.get("stop_reason"),
            duration_ms=float(data.get("duration_ms", 0.0)),
            shard=data.get("shard"),
        )


# ----------------------------------------------------------------------
# Columnar storage


#: ``shard`` column sentinel for "no shard recorded". ``-1`` is a real
#: shard value (the leg-phase sentinel), so the int32 minimum is used.
_NO_SHARD = int(np.iinfo(np.int32).min)

#: Intern-table sentinel for "category is None".
_NO_CAT = -1

_PAIR_SPEC: tuple[tuple[str, type], ...] = (
    ("x", np.int32),
    ("y", np.int32),
    ("status", np.int16),
    ("rtt_ms", np.float64),
    ("cxy_ms", np.float64),
    ("leg_x_ms", np.float64),
    ("leg_y_ms", np.float64),
    ("samples_requested", np.int32),
    ("samples_kept", np.int32),
    ("samples_saved", np.int32),
    ("stop_reason", np.int16),
    ("leg_cache_hits", np.int32),
    ("retries", np.int32),
    ("failure_category", np.int16),
    ("duration_ms", np.float64),
    ("shard", np.int32),
)

_LEG_SPEC: tuple[tuple[str, type], ...] = (
    ("relay", np.int32),
    ("rtt_ms", np.float64),
    ("samples_requested", np.int32),
    ("samples_kept", np.int32),
    ("samples_saved", np.int32),
    ("stop_reason", np.int16),
    ("duration_ms", np.float64),
    ("shard", np.int32),
)


class _ColumnBlock:
    """Capacity-doubling struct-of-arrays storage for one record kind."""

    __slots__ = ("_spec", "_cols", "_n")

    def __init__(self, spec: tuple[tuple[str, type], ...], capacity: int = 16) -> None:
        self._spec = spec
        self._n = 0
        self._cols = {name: np.empty(capacity, dtype=dt) for name, dt in spec}

    def __len__(self) -> int:
        return self._n

    def _reserve(self, extra: int) -> None:
        capacity = self._cols[self._spec[0][0]].shape[0]
        if self._n + extra <= capacity:
            return
        new_capacity = max(capacity * 2, self._n + extra)
        for name, arr in self._cols.items():
            grown = np.empty(new_capacity, dtype=arr.dtype)
            grown[: self._n] = arr[: self._n]
            self._cols[name] = grown

    def append(self, values: dict[str, Any]) -> int:
        """Append one row; returns its index."""
        self._reserve(1)
        i = self._n
        for name, value in values.items():
            self._cols[name][i] = value
        self._n += 1
        return i

    def extend(self, cols: dict[str, np.ndarray]) -> None:
        """Bulk-append trimmed column arrays (all the same length)."""
        count = int(cols[self._spec[0][0]].shape[0])
        if count == 0:
            return
        self._reserve(count)
        for name, _ in self._spec:
            self._cols[name][self._n : self._n + count] = cols[name][:count]
        self._n += count

    def column(self, name: str) -> np.ndarray:
        """Trimmed read view of one column (do not mutate)."""
        return self._cols[name][: self._n]

    def snapshot(self) -> dict[str, np.ndarray]:
        """Trimmed copies of every column — a picklable flat payload."""
        return {name: self._cols[name][: self._n].copy() for name, _ in self._spec}


def _f(value: float | None) -> float:
    return math.nan if value is None else float(value)


def _opt_float(value: float) -> float | None:
    return None if math.isnan(value) else float(value)


class ProvenanceLog:
    """An append-only collection of :class:`PairProvenance` records,
    plus the campaign's :class:`LegProvenance` records.

    Storage is struct-of-arrays: one flat numpy column per field, with
    node identifiers and category strings (status / stop reason /
    failure category) interned into shared side tables, and free-text
    failure reasons kept in a sparse ``{row: text}`` dict. ``records()``
    / iteration / ``get`` materialize lightweight value objects on
    demand; a 500k-pair campaign is a handful of arrays, not 500k dicts.

    Shard workers each build one; the parent folds them together with
    :meth:`merge` (array concatenation + intern remap), retagging
    adopted records with the worker index so a fused log still says
    which process measured what. Leg records are kept separately from
    pair records — ``len(log)`` and iteration stay pair-only, so the
    historical per-pair schema is unchanged.
    """

    __slots__ = (
        "_names",
        "_name_ids",
        "_cats",
        "_cat_ids",
        "_pairs",
        "_legs",
        "_reasons",
        "_row_cache",
    )

    def __init__(self) -> None:
        self._names: list[str] = []
        self._name_ids: dict[str, int] = {}
        self._cats: list[str] = []
        self._cat_ids: dict[str, int] = {}
        self._pairs = _ColumnBlock(_PAIR_SPEC)
        self._legs = _ColumnBlock(_LEG_SPEC)
        self._reasons: dict[int, str] = {}
        #: Memoized materialized rows, so repeated ``get``/``records``
        #: calls hand back the *same* value object for the same row.
        self._row_cache: dict[int, PairProvenance] = {}

    # -- interning ------------------------------------------------------

    def _intern_name(self, name: str) -> int:
        code = self._name_ids.get(name)
        if code is None:
            code = len(self._names)
            self._names.append(name)
            self._name_ids[name] = code
        return code

    def _intern_cat(self, category: str | None) -> int:
        if category is None:
            return _NO_CAT
        code = self._cat_ids.get(category)
        if code is None:
            code = len(self._cats)
            self._cats.append(category)
            self._cat_ids[category] = code
        return code

    def _cat_at(self, code: int) -> str | None:
        return None if code < 0 else self._cats[code]

    # -- appends --------------------------------------------------------

    def add(self, record: PairProvenance) -> None:
        """Append one pair's provenance."""
        row = self._pairs.append(
            {
                "x": self._intern_name(record.x),
                "y": self._intern_name(record.y),
                "status": self._intern_cat(record.status),
                "rtt_ms": _f(record.rtt_ms),
                "cxy_ms": _f(record.cxy_ms),
                "leg_x_ms": _f(record.leg_x_ms),
                "leg_y_ms": _f(record.leg_y_ms),
                "samples_requested": record.samples_requested,
                "samples_kept": record.samples_kept,
                "samples_saved": record.samples_saved,
                "stop_reason": self._intern_cat(record.stop_reason),
                "leg_cache_hits": record.leg_cache_hits,
                "retries": record.retries,
                "failure_category": self._intern_cat(record.failure_category),
                "duration_ms": float(record.duration_ms),
                "shard": _NO_SHARD if record.shard is None else record.shard,
            }
        )
        if record.reason is not None:
            self._reasons[row] = record.reason

    def add_leg(self, record: LegProvenance) -> None:
        """Append one leg circuit's provenance."""
        self._legs.append(
            {
                "relay": self._intern_name(record.relay),
                "rtt_ms": _f(record.rtt_ms),
                "samples_requested": record.samples_requested,
                "samples_kept": record.samples_kept,
                "samples_saved": record.samples_saved,
                "stop_reason": self._intern_cat(record.stop_reason),
                "duration_ms": float(record.duration_ms),
                "shard": _NO_SHARD if record.shard is None else record.shard,
            }
        )

    # -- materialization ------------------------------------------------

    def _pair_at(self, row: int) -> PairProvenance:
        cached = self._row_cache.get(row)
        if cached is None:
            cached = self._row_cache[row] = self._materialize_pair(row)
        return cached

    def _materialize_pair(self, row: int) -> PairProvenance:
        cols = self._pairs._cols
        shard = int(cols["shard"][row])
        return PairProvenance(
            x=self._names[cols["x"][row]],
            y=self._names[cols["y"][row]],
            status=self._cats[cols["status"][row]],
            rtt_ms=_opt_float(cols["rtt_ms"][row]),
            cxy_ms=_opt_float(cols["cxy_ms"][row]),
            leg_x_ms=_opt_float(cols["leg_x_ms"][row]),
            leg_y_ms=_opt_float(cols["leg_y_ms"][row]),
            samples_requested=int(cols["samples_requested"][row]),
            samples_kept=int(cols["samples_kept"][row]),
            samples_saved=int(cols["samples_saved"][row]),
            stop_reason=self._cat_at(int(cols["stop_reason"][row])),
            leg_cache_hits=int(cols["leg_cache_hits"][row]),
            retries=int(cols["retries"][row]),
            failure_category=self._cat_at(int(cols["failure_category"][row])),
            reason=self._reasons.get(row),
            duration_ms=float(cols["duration_ms"][row]),
            shard=None if shard == _NO_SHARD else shard,
        )

    def _leg_at(self, row: int) -> LegProvenance:
        cols = self._legs._cols
        shard = int(cols["shard"][row])
        return LegProvenance(
            relay=self._names[cols["relay"][row]],
            rtt_ms=_opt_float(cols["rtt_ms"][row]),
            samples_requested=int(cols["samples_requested"][row]),
            samples_kept=int(cols["samples_kept"][row]),
            samples_saved=int(cols["samples_saved"][row]),
            stop_reason=self._cat_at(int(cols["stop_reason"][row])),
            duration_ms=float(cols["duration_ms"][row]),
            shard=None if shard == _NO_SHARD else shard,
        )

    def legs(self) -> list[LegProvenance]:
        """All leg records, in insertion order."""
        return [self._leg_at(i) for i in range(len(self._legs))]

    def leg_for(self, relay: str) -> LegProvenance | None:
        """The leg record for one relay, or ``None``."""
        code = self._name_ids.get(relay)
        if code is None:
            return None
        matches = np.flatnonzero(self._legs.column("relay") == code)
        if matches.size == 0:
            return None
        return self._leg_at(int(matches[0]))

    def records(self) -> list[PairProvenance]:
        """All records, in insertion order (materialized on demand)."""
        return [self._pair_at(i) for i in range(len(self._pairs))]

    def get(self, x: str, y: str) -> PairProvenance | None:
        """The record for an unordered pair, or ``None``."""
        cx = self._name_ids.get(x)
        cy = self._name_ids.get(y)
        if cx is None or cy is None:
            return None
        xs = self._pairs.column("x")
        ys = self._pairs.column("y")
        mask = ((xs == cx) & (ys == cy)) | ((xs == cy) & (ys == cx))
        matches = np.flatnonzero(mask)
        if matches.size == 0:
            return None
        return self._pair_at(int(matches[0]))

    # -- merge / snapshot ----------------------------------------------

    def merge(
        self,
        other: "ProvenanceLog | list[dict[str, Any]]",
        shard: int | None = None,
    ) -> "ProvenanceLog":
        """Adopt another log's (or a raw dict list's) records. Returns self.

        ``shard`` retags the adopted records with the worker that
        produced them; records that already carry a shard keep it.
        Leg records from another :class:`ProvenanceLog` are adopted too,
        but keep their own shard field untouched — a ``None`` there
        means "measured by the campaign-wide leg phase", which is an
        attribution, not a gap to fill.
        """
        if isinstance(other, ProvenanceLog):
            self.merge_snapshot(other.snapshot(), shard=shard, leg_shard=None)
        else:
            for entry in other:
                record = PairProvenance.from_dict(entry)
                if shard is not None and record.shard is None:
                    record.shard = shard
                self.add(record)
        return self

    def merge_legs(
        self,
        legs: "list[dict[str, Any]]",
        shard: int | None = None,
    ) -> "ProvenanceLog":
        """Adopt serialized leg records. Returns self.

        ``shard`` retags legs a *worker* had to measure itself; leg-phase
        records pass ``shard=None`` and keep their phase attribution.
        """
        for entry in legs:
            record = LegProvenance.from_dict(entry)
            if shard is not None and record.shard is None:
                record.shard = shard
            self.add_leg(record)
        return self

    def snapshot(self) -> dict[str, Any]:
        """The whole log as a handful of flat buffers.

        This is what crosses the fork boundary: intern tables, the pair
        and leg column arrays, and the sparse reason texts. Rebuild with
        :meth:`merge_snapshot` (into an existing log) or
        :meth:`from_snapshot` (fresh).
        """
        return {
            "names": list(self._names),
            "cats": list(self._cats),
            "pairs": self._pairs.snapshot(),
            "legs": self._legs.snapshot(),
            "reasons": dict(self._reasons),
        }

    def merge_snapshot(
        self,
        snap: dict[str, Any],
        shard: int | None = None,
        leg_shard: int | None = None,
    ) -> "ProvenanceLog":
        """Adopt a :meth:`snapshot` payload by array concatenation.

        ``shard`` retags adopted *pair* rows whose shard is unset;
        ``leg_shard`` does the same for leg rows (normally ``None``:
        leg-phase attribution is kept). Returns self.
        """
        name_map = np.array(
            [self._intern_name(n) for n in snap["names"]], dtype=np.int32
        )
        cat_map = np.array(
            [self._intern_cat(c) for c in snap["cats"]], dtype=np.int16
        )

        def remap_cat(col: np.ndarray) -> np.ndarray:
            if cat_map.size == 0:
                return col.copy()
            return np.where(
                col >= 0, cat_map[np.maximum(col, 0)], np.int16(_NO_CAT)
            ).astype(np.int16)

        def retag(col: np.ndarray, tag: int | None) -> np.ndarray:
            if tag is None:
                return col
            return np.where(col == _NO_SHARD, np.int32(tag), col).astype(np.int32)

        pair_cols = dict(snap["pairs"])
        if name_map.size:
            pair_cols["x"] = name_map[pair_cols["x"]]
            pair_cols["y"] = name_map[pair_cols["y"]]
        for cat_col in ("status", "stop_reason", "failure_category"):
            pair_cols[cat_col] = remap_cat(pair_cols[cat_col])
        pair_cols["shard"] = retag(pair_cols["shard"], shard)
        base_row = len(self._pairs)
        self._pairs.extend(pair_cols)
        for row, text in snap.get("reasons", {}).items():
            self._reasons[base_row + int(row)] = text

        leg_cols = dict(snap["legs"])
        if name_map.size and leg_cols["relay"].shape[0]:
            leg_cols["relay"] = name_map[leg_cols["relay"]]
        leg_cols["stop_reason"] = remap_cat(leg_cols["stop_reason"])
        leg_cols["shard"] = retag(leg_cols["shard"], leg_shard)
        self._legs.extend(leg_cols)
        return self

    @classmethod
    def from_snapshot(cls, snap: dict[str, Any]) -> "ProvenanceLog":
        """Rebuild a log from :meth:`snapshot` output."""
        return cls().merge_snapshot(snap)

    # -- serialization --------------------------------------------------

    def to_list(self) -> list[dict[str, Any]]:
        """JSON-ready list of every pair record."""
        # Bypass the row cache: bulk serialization of a 500k-row log
        # should not pin 500k value objects in memory afterwards.
        return [self._materialize_pair(i).to_dict() for i in range(len(self._pairs))]

    def legs_to_list(self) -> list[dict[str, Any]]:
        """JSON-ready list of every leg record."""
        return [self._leg_at(i).to_dict() for i in range(len(self._legs))]

    @classmethod
    def from_list(
        cls,
        data: list[dict[str, Any]],
        legs: list[dict[str, Any]] | None = None,
    ) -> "ProvenanceLog":
        """Rebuild a log from :meth:`to_list` (+ :meth:`legs_to_list`) output."""
        log = cls()
        for entry in data:
            log.add(PairProvenance.from_dict(entry))
        for entry in legs or []:
            log.add_leg(LegProvenance.from_dict(entry))
        return log

    # -- queries --------------------------------------------------------

    def by_status(self, status: str) -> list[PairProvenance]:
        """Records with the given status (``measured``/``failed``)."""
        code = self._cat_ids.get(status)
        if code is None:
            return []
        rows = np.flatnonzero(self._pairs.column("status") == code)
        return [self._pair_at(int(i)) for i in rows]

    def failure_breakdown(self) -> dict[str, int]:
        """Failed-pair counts keyed by failure category."""
        failed_code = self._cat_ids.get("failed")
        if failed_code is None:
            return {}
        status = self._pairs.column("status")
        category = self._pairs.column("failure_category")
        breakdown: dict[str, int] = {}
        # Preserve first-encounter key order among failed records.
        for code in category[status == failed_code]:
            name = self._cat_at(int(code)) or "other"
            breakdown[name] = breakdown.get(name, 0) + 1
        return breakdown

    def last_row_for_pairs(self) -> dict[tuple[int, int], int]:
        """Latest log row per unordered pair, keyed by *name-table*
        index pairs (smaller code first). Insertion order is the only
        clock the log has, so the planner uses these row numbers as a
        staleness proxy: lower row → older measurement."""
        xs = self._pairs.column("x")
        ys = self._pairs.column("y")
        lo = np.minimum(xs, ys)
        hi = np.maximum(xs, ys)
        latest: dict[tuple[int, int], int] = {}
        for row, (a, b) in enumerate(zip(lo.tolist(), hi.tolist())):
            latest[(a, b)] = row
        return latest

    def name_table(self) -> list[str]:
        """The interned node-identifier table (index = column code)."""
        return list(self._names)

    def status_codes(self) -> tuple[np.ndarray, dict[str, int]]:
        """The raw status column plus the category→code mapping, for
        vectorized consumers (planner scoring)."""
        return self._pairs.column("status"), dict(self._cat_ids)

    def pair_columns(self, *names: str) -> tuple[np.ndarray, ...]:
        """Trimmed read views of raw pair columns, in request order.

        The vectorized consumer's door into the columnar store (quality
        scoring reads six columns at once instead of materializing
        records). Category-typed columns (``status``, ``stop_reason``,
        ``failure_category``) hold intern codes — decode them with
        :meth:`status_codes`'s mapping. Do not mutate the views.
        """
        return tuple(self._pairs.column(name) for name in names)

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[PairProvenance]:
        for i in range(len(self._pairs)):
            yield self._pair_at(i)

    def __repr__(self) -> str:
        failed_code = self._cat_ids.get("failed")
        failed = (
            0
            if failed_code is None
            else int((self._pairs.column("status") == failed_code).sum())
        )
        return f"ProvenanceLog({len(self._pairs)} records, {failed} failed)"


# ----------------------------------------------------------------------
# Matrix + provenance + metadata, as one auditable document


DATASET_FORMAT = "ting-campaign/1"
DATASET_NPZ_FORMAT = "ting-campaign-npz/1"

#: Every zip archive (hence every npz) starts with a local-file header.
_NPZ_MAGIC = b"PK\x03\x04"


def _str_array(values: list[str]) -> np.ndarray:
    if not values:
        return np.empty(0, dtype="<U1")
    return np.array(values, dtype=np.str_)


def _npz_entry_memmap(path: Path, name: str) -> np.ndarray | None:
    """Memory-map one array entry of a :func:`_write_npz` container.

    ``np.load(mmap_mode=...)`` cannot map arrays inside a zip archive,
    but this repo's npz files are deliberately ``ZIP_STORED``: the npy
    payload sits uncompressed at a knowable byte offset. This locates
    the entry's local header, parses the npy header for dtype/shape,
    and hands back a read-only ``np.memmap`` over the raw data bytes —
    zero copies, and every forked process that inherits (or re-opens)
    the mapping shares one page-cache copy of the matrix.

    Returns ``None`` when the entry is absent, compressed, or not a
    plain little-endian npy v1/v2 array — callers fall back to the
    eager load path.
    """
    try:
        with zipfile.ZipFile(path) as archive:
            try:
                info = archive.getinfo(name + ".npy")
            except KeyError:
                return None
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            header_offset = info.header_offset
    except zipfile.BadZipFile:
        return None
    with open(path, "rb") as handle:
        handle.seek(header_offset)
        local = handle.read(30)
        if len(local) < 30 or local[:4] != _NPZ_MAGIC:
            return None
        # Local file header: name and extra lengths live at bytes 26/28.
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        handle.seek(header_offset + 30 + name_len + extra_len)
        try:
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
        except ValueError:
            return None
        if dtype.hasobject:
            return None
        data_offset = handle.tell()
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=data_offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def _write_npz(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """A deterministic ``np.savez``: identical input arrays produce
    byte-identical files. ``np.savez`` itself stamps each zip entry with
    the current time, so two saves of the same dataset differ; here every
    entry gets the zip epoch (1980-01-01) and no compression, and entry
    order is the caller's dict order. Still readable by ``np.load``."""
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for name, arr in arrays.items():
            buffer = io.BytesIO()
            np.lib.format.write_array(
                buffer, np.ascontiguousarray(arr), allow_pickle=False
            )
            info = zipfile.ZipInfo(name + ".npy", date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_STORED
            archive.writestr(info, buffer.getvalue())


@dataclass(slots=True)
class CampaignDataset:
    """A campaign's full output: matrix, per-pair provenance, metadata.

    The matrix alone answers "what is R(x, y)?"; the dataset also
    answers "how do you know?" — which downstream consumers of
    all-pairs latency data (overlay routing, latency-aware circuit
    construction) need before they build on it.

    Two on-disk formats: the historical JSON document (kept for small /
    debug datasets and external tooling), and a binary ``.npz`` container
    holding the float64 matrix, the provenance columns, and the metadata
    as an embedded JSON entry — no O(n²) Python-float round-trip.
    :meth:`load` auto-detects which one it is reading.
    """

    matrix: RttMatrix
    provenance: ProvenanceLog = field(default_factory=ProvenanceLog)
    meta: dict[str, Any] = field(default_factory=dict)
    _quality_cache: Any = field(default=None, repr=False, compare=False)

    def to_json(self, indent: int | None = None) -> str:
        """One JSON document: format tag, metadata, matrix, provenance."""
        payload = {
            "format": DATASET_FORMAT,
            "meta": self.meta,
            "matrix": json.loads(self.matrix.to_json()),
            "provenance": self.provenance.to_list(),
        }
        # Leg provenance is additive: datasets without it (pre-v2
        # campaigns) serialize byte-identically to the historical schema.
        legs = self.provenance.legs_to_list()
        if legs:
            payload["legs"] = legs
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignDataset":
        """Rebuild a dataset from :meth:`to_json` output."""
        payload = json.loads(text)
        if payload.get("format") != DATASET_FORMAT:
            raise MeasurementError(
                f"unknown dataset format {payload.get('format')!r}"
            )
        matrix = RttMatrix.from_json(json.dumps(payload["matrix"]))
        provenance = ProvenanceLog.from_list(
            payload.get("provenance", []), legs=payload.get("legs")
        )
        return cls(matrix=matrix, provenance=provenance, meta=payload.get("meta", {}))

    # -- binary format --------------------------------------------------

    def _to_arrays(self) -> dict[str, np.ndarray]:
        header = json.dumps({"format": DATASET_NPZ_FORMAT, "meta": self.meta})
        prov = self.provenance
        reasons = prov._reasons
        arrays: dict[str, np.ndarray] = {
            "header": np.frombuffer(header.encode("utf-8"), dtype=np.uint8),
            "nodes": _str_array(self.matrix.nodes),
            "matrix": self.matrix.copy_matrix(),
            "prov_names": _str_array(prov._names),
            "prov_cats": _str_array(prov._cats),
        }
        for name, _ in _PAIR_SPEC:
            arrays[f"pair_{name}"] = prov._pairs.column(name).copy()
        for name, _ in _LEG_SPEC:
            arrays[f"leg_{name}"] = prov._legs.column(name).copy()
        arrays["reason_rows"] = np.array(sorted(reasons), dtype=np.int64)
        arrays["reason_text"] = _str_array([reasons[k] for k in sorted(reasons)])
        return arrays

    @classmethod
    def _from_arrays(
        cls, data: Any, matrix_values: np.ndarray | None = None
    ) -> "CampaignDataset":
        header = json.loads(bytes(np.asarray(data["header"]).tobytes()).decode("utf-8"))
        if header.get("format") != DATASET_NPZ_FORMAT:
            raise MeasurementError(
                f"unknown dataset format {header.get('format')!r}"
            )
        nodes = [str(n) for n in data["nodes"]]
        if matrix_values is not None:
            # Zero-copy adoption of a memory-mapped matrix entry.
            matrix = RttMatrix.from_array(nodes, matrix_values, copy=False)
        else:
            matrix = RttMatrix.from_array(nodes, data["matrix"])
        snap = {
            "names": [str(n) for n in data["prov_names"]],
            "cats": [str(c) for c in data["prov_cats"]],
            "pairs": {name: data[f"pair_{name}"] for name, _ in _PAIR_SPEC},
            "legs": {name: data[f"leg_{name}"] for name, _ in _LEG_SPEC},
            "reasons": {
                int(row): str(text)
                for row, text in zip(data["reason_rows"], data["reason_text"])
            },
        }
        return cls(
            matrix=matrix,
            provenance=ProvenanceLog.from_snapshot(snap),
            meta=header.get("meta", {}),
        )

    # -- persistence ----------------------------------------------------

    def save(self, path: str | Path, format: str = "auto") -> None:
        """Write the dataset to ``path``.

        ``format`` is ``"json"``, ``"npz"``, or ``"auto"`` (npz when the
        suffix is ``.npz``, JSON otherwise — preserving the historical
        default for every pre-existing call site).
        """
        path = Path(path)
        if format == "auto":
            format = "npz" if path.suffix == ".npz" else "json"
        if format == "json":
            path.write_text(self.to_json())
        elif format == "npz":
            _write_npz(path, self._to_arrays())
        else:
            raise MeasurementError(f"unknown dataset save format {format!r}")

    @classmethod
    def load(cls, path: str | Path, mmap: bool = False) -> "CampaignDataset":
        """Read a dataset previously written by :meth:`save`, sniffing
        the on-disk format (JSON document vs npz container).

        ``mmap=True`` memory-maps the O(n²) matrix entry of an npz
        container instead of copying it into anonymous memory: the
        returned matrix is backed by a **read-only** ``np.memmap``, so N
        forked query workers share one page-cache copy of the file —
        the zero-copy multiprocess serving model ``repro.serve`` is
        built on. The memmap object itself keeps the file mapping alive
        for as long as the matrix is referenced; there is no separate
        handle to manage. Mutations are copy-on-write: :meth:`absorb`
        (and ``RttMatrix.set``) materialize a private writable copy
        before the first write, detaching the dataset from the file.
        Provenance columns and metadata are always loaded eagerly (they
        are small), and JSON documents — which have no binary layout to
        map — ignore the flag.
        """
        path = Path(path)
        with open(path, "rb") as handle:
            magic = handle.read(4)
        if magic == _NPZ_MAGIC:
            matrix_values = _npz_entry_memmap(path, "matrix") if mmap else None
            with np.load(path, allow_pickle=False) as data:
                return cls._from_arrays(data, matrix_values=matrix_values)
        return cls.from_json(path.read_text())

    # -- incremental refresh -------------------------------------------

    def absorb(
        self,
        matrix: RttMatrix,
        provenance: ProvenanceLog | None = None,
        meta: dict[str, Any] | None = None,
    ) -> int:
        """Fold a refresh campaign's results into this dataset.

        Measured entries in ``matrix`` overwrite (or fill) the dataset's
        entries; new nodes grow the dataset matrix; ``provenance``
        records are appended (shard attribution kept), so the log stays
        the dataset's full measurement history in insertion order —
        which is exactly what planner staleness scoring reads. Returns
        the number of pair entries written.

        On a memory-mapped dataset (``load(..., mmap=True)``) the
        matrix backing is read-only, so absorb copies it out of the
        mapping first (copy-on-write) and then writes into the private
        copy — the on-disk file is never mutated, and the dataset is
        detached from the page-cache sharing from that point on.
        """
        # Copy-on-write before any write path below touches the array.
        self.matrix._materialize()
        new_nodes = [n for n in matrix.nodes if n not in self.matrix._index]
        if new_nodes:
            grown = RttMatrix(self.matrix.nodes + new_nodes)
            old_n = len(self.matrix.nodes)
            grown._matrix[:old_n, :old_n] = self.matrix._matrix
            grown._recount()
            self.matrix = grown

        incoming = matrix._matrix
        n = len(matrix.nodes)
        target = self.matrix._matrix
        if matrix.nodes == self.matrix.nodes:
            # Aligned node sets: one vectorized overwrite.
            mask = ~np.isnan(incoming)
            np.fill_diagonal(mask, False)
            target[mask] = incoming[mask]
            self.matrix._recount()
            updated = int(mask.sum()) // 2
        else:
            iu, ju = np.triu_indices(n, k=1)
            values = incoming[iu, ju]
            keep = ~np.isnan(values)
            rows = np.array([self.matrix._index[node] for node in matrix.nodes])
            updated = 0
            for i, j, value in zip(rows[iu[keep]], rows[ju[keep]], values[keep]):
                if math.isnan(target[i, j]):
                    self.matrix._num_measured += 1
                target[i, j] = value
                target[j, i] = value
                updated += 1
        if provenance is not None:
            self.provenance.merge(provenance)
        if meta:
            self.meta.update(meta)
        # Absorbed results change both values and provenance history, so
        # any previously computed quality scores are no longer valid.
        self._quality_cache = None
        return updated

    # -- data quality ---------------------------------------------------

    def quality(self, refresh: bool = False) -> Any:
        """Per-pair quality scores for this dataset (cached).

        Computed lazily by :func:`repro.obs.health.pair_quality` and
        cached until :meth:`absorb` invalidates it. ``refresh=True``
        forces recomputation (e.g. after out-of-band mutation).
        """
        if refresh or self._quality_cache is None:
            from repro.obs.health import pair_quality

            self._quality_cache = pair_quality(self)
        return self._quality_cache

    def __repr__(self) -> str:
        return (
            f"CampaignDataset(matrix={self.matrix!r}, "
            f"provenance={len(self.provenance)} records)"
        )
