"""All-pairs RTT datasets, with per-pair measurement provenance.

:class:`RttMatrix` is the product Ting exists to create: a symmetric
matrix of minimum RTTs between every pair in a relay set. Every
application in Section 5 (deanonymization speedup, TIV hunting, long
low-latency circuits) consumes one of these. Matrices serialize to JSON
so that expensive campaigns can be cached, which Section 4.6 justifies:
Ting's measurements are stable over at least a week.

A bare matrix cannot say *why* an entry is what it is, so instrumented
campaigns also emit one :class:`PairProvenance` record per pair — how
many probe samples were taken and survived, which legs came from cache,
how many retries it took, the residual ``½R_Cx + ½R_Cy`` terms Eq. 4
subtracted, and (on failure) the categorized reason.
:class:`CampaignDataset` persists matrix + provenance + run metadata as
one JSON document, which downstream consumers of all-pairs Tor latency
data (multi-hop overlay routing, latency-graph circuit construction)
need to audit what they are building on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.util.errors import MeasurementError
from repro.util.units import Milliseconds


class RttMatrix:
    """A symmetric all-pairs RTT matrix keyed by node identifier."""

    def __init__(self, nodes: list[str]) -> None:
        if len(nodes) != len(set(nodes)):
            raise MeasurementError("node identifiers must be unique")
        self.nodes = list(nodes)
        self._index = {node: i for i, node in enumerate(self.nodes)}
        n = len(nodes)
        self._matrix = np.full((n, n), np.nan)
        np.fill_diagonal(self._matrix, 0.0)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._index

    def index_of(self, node: str) -> int:
        """Row/column index of a node identifier."""
        try:
            return self._index[node]
        except KeyError:
            raise MeasurementError(f"unknown node {node!r}") from None

    def set(self, a: str, b: str, rtt_ms: Milliseconds) -> None:
        """Record R(a, b); the matrix stays symmetric."""
        if rtt_ms < 0:
            raise MeasurementError(f"negative RTT {rtt_ms} for ({a}, {b})")
        i, j = self.index_of(a), self.index_of(b)
        if i == j:
            raise MeasurementError("diagonal entries are fixed at zero")
        self._matrix[i, j] = rtt_ms
        self._matrix[j, i] = rtt_ms

    def get(self, a: str, b: str) -> Milliseconds:
        """R(a, b); raises if the pair was never measured."""
        value = self._matrix[self.index_of(a), self.index_of(b)]
        if math.isnan(value):
            raise MeasurementError(f"pair ({a}, {b}) has not been measured")
        return float(value)

    def has(self, a: str, b: str) -> bool:
        """Whether the pair has been measured."""
        return not math.isnan(self._matrix[self.index_of(a), self.index_of(b)])

    # ------------------------------------------------------------------

    def pairs(self) -> Iterator[tuple[str, str]]:
        """All unordered node pairs (measured or not)."""
        for i, a in enumerate(self.nodes):
            for b in self.nodes[i + 1 :]:
                yield (a, b)

    def measured_pairs(self) -> Iterator[tuple[str, str, Milliseconds]]:
        """All measured unordered pairs with their RTTs."""
        for a, b in self.pairs():
            i, j = self._index[a], self._index[b]
            value = self._matrix[i, j]
            if not math.isnan(value):
                yield (a, b, float(value))

    @property
    def is_complete(self) -> bool:
        """Whether every off-diagonal pair has been measured."""
        return not np.isnan(self._matrix).any()

    @property
    def num_measured(self) -> int:
        """Count of measured (off-diagonal) pairs."""
        n = len(self.nodes)
        missing = int(np.isnan(self._matrix).sum()) // 2
        return n * (n - 1) // 2 - missing

    def mean_rtt_ms(self) -> Milliseconds:
        """μ — the population mean RTT Algorithm 1 uses to approximate
        the unknown source-to-entry leg."""
        values = [rtt for _, _, rtt in self.measured_pairs()]
        if not values:
            raise MeasurementError("matrix has no measurements")
        return float(np.mean(values))

    def values(self) -> np.ndarray:
        """All measured RTTs as a flat array (one entry per pair)."""
        return np.array([rtt for _, _, rtt in self.measured_pairs()])

    def as_array(self) -> np.ndarray:
        """A copy of the underlying matrix (NaN where unmeasured)."""
        return self._matrix.copy()

    def submatrix(self, nodes: list[str]) -> "RttMatrix":
        """Restrict to a node subset, keeping measured values."""
        sub = RttMatrix(nodes)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                if self.has(a, b):
                    sub.set(a, b, self.get(a, b))
        return sub

    # ------------------------------------------------------------------
    # Serialization

    def to_json(self) -> str:
        """Serialize the matrix (nodes + values) to a JSON string."""
        payload = {
            "nodes": self.nodes,
            "rtts_ms": [
                [None if math.isnan(v) else round(float(v), 6) for v in row]
                for row in self._matrix
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "RttMatrix":
        """Rebuild a matrix from :meth:`to_json` output."""
        payload = json.loads(text)
        matrix = cls(payload["nodes"])
        rows = payload["rtts_ms"]
        n = len(matrix.nodes)
        if len(rows) != n or any(len(row) != n for row in rows):
            raise MeasurementError("malformed RTT matrix JSON")
        for i in range(n):
            for j in range(n):
                value = rows[i][j]
                matrix._matrix[i, j] = np.nan if value is None else float(value)
        np.fill_diagonal(matrix._matrix, 0.0)
        return matrix

    def save(self, path: str | Path) -> None:
        """Write the matrix as JSON to ``path``."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "RttMatrix":
        """Read a matrix previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    def __repr__(self) -> str:
        return (
            f"RttMatrix(nodes={len(self.nodes)}, "
            f"measured={self.num_measured}/{len(self.nodes) * (len(self.nodes) - 1) // 2})"
        )


# ----------------------------------------------------------------------
# Per-pair measurement provenance


@dataclass(slots=True)
class PairProvenance:
    """Why one matrix entry is what it is (or why it is missing).

    One record per attempted pair. ``samples_requested``/``samples_kept``
    expose the min-filter's input and survivors; ``leg_cache_hits`` says
    how many of the two ``R_Cx``/``R_Cy`` legs were reused from an
    earlier pair (Section 4.3's dominant cost saver); ``retries`` counts
    extra attempts beyond the first; ``leg_x_ms``/``leg_y_ms`` are the
    residual one-way-circuit RTTs Eq. 4 subtracts (``residual_ms`` is the
    ``½R_Cx + ½R_Cy`` term itself). Failed pairs carry the categorized
    reason instead of an estimate.
    """

    x: str
    y: str
    status: str = "measured"  # "measured" | "failed"
    rtt_ms: float | None = None
    cxy_ms: float | None = None
    leg_x_ms: float | None = None
    leg_y_ms: float | None = None
    samples_requested: int = 0
    samples_kept: int = 0
    #: Probes the cap allowed but an adaptive early stop never sent.
    samples_saved: int = 0
    #: Why the probe round ended short of the cap ("converged",
    #: "deadline", "stream_death"); ``None`` for a full fixed run.
    stop_reason: str | None = None
    leg_cache_hits: int = 0
    retries: int = 0
    failure_category: str | None = None
    reason: str | None = None
    duration_ms: float = 0.0
    shard: int | None = None

    @property
    def residual_ms(self) -> float | None:
        """The ``½R_Cx + ½R_Cy`` term Eq. 4 subtracts from ``R_Cxy``."""
        if self.leg_x_ms is None or self.leg_y_ms is None:
            return None
        return (self.leg_x_ms + self.leg_y_ms) / 2.0

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready view; ``None`` fields are omitted for compactness."""
        record: dict[str, Any] = {
            "x": self.x,
            "y": self.y,
            "status": self.status,
            "samples_requested": self.samples_requested,
            "samples_kept": self.samples_kept,
            "leg_cache_hits": self.leg_cache_hits,
            "retries": self.retries,
            "duration_ms": round(self.duration_ms, 6),
        }
        for name in ("rtt_ms", "cxy_ms", "leg_x_ms", "leg_y_ms"):
            value = getattr(self, name)
            if value is not None:
                record[name] = round(float(value), 6)
        if self.residual_ms is not None:
            record["residual_ms"] = round(self.residual_ms, 6)
        # Adaptive-only fields stay out of fixed-policy records so the
        # historical provenance schema is byte-stable by default.
        if self.samples_saved:
            record["samples_saved"] = self.samples_saved
        if self.stop_reason is not None:
            record["stop_reason"] = self.stop_reason
        if self.failure_category is not None:
            record["failure_category"] = self.failure_category
        if self.reason is not None:
            record["reason"] = self.reason
        if self.shard is not None:
            record["shard"] = self.shard
        return record

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PairProvenance":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            x=data["x"],
            y=data["y"],
            status=data.get("status", "measured"),
            rtt_ms=data.get("rtt_ms"),
            cxy_ms=data.get("cxy_ms"),
            leg_x_ms=data.get("leg_x_ms"),
            leg_y_ms=data.get("leg_y_ms"),
            samples_requested=int(data.get("samples_requested", 0)),
            samples_kept=int(data.get("samples_kept", 0)),
            samples_saved=int(data.get("samples_saved", 0)),
            stop_reason=data.get("stop_reason"),
            leg_cache_hits=int(data.get("leg_cache_hits", 0)),
            retries=int(data.get("retries", 0)),
            failure_category=data.get("failure_category"),
            reason=data.get("reason"),
            duration_ms=float(data.get("duration_ms", 0.0)),
            shard=data.get("shard"),
        )


@dataclass(slots=True)
class LegProvenance:
    """Why one relay's shared leg estimate ``R_Cx`` is what it is.

    One record per leg circuit actually built. ``shard`` is ``None``
    when the leg was measured by the campaign-wide leg phase (the
    normal case for shard engine v2: legs belong to the campaign, not
    to any worker); it carries a worker index only when a worker had to
    measure a leg itself.
    """

    relay: str
    rtt_ms: float | None = None
    samples_requested: int = 0
    samples_kept: int = 0
    samples_saved: int = 0
    stop_reason: str | None = None
    duration_ms: float = 0.0
    shard: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready view; ``None`` fields are omitted for compactness."""
        record: dict[str, Any] = {
            "relay": self.relay,
            "samples_requested": self.samples_requested,
            "samples_kept": self.samples_kept,
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.rtt_ms is not None:
            record["rtt_ms"] = round(float(self.rtt_ms), 6)
        if self.samples_saved:
            record["samples_saved"] = self.samples_saved
        if self.stop_reason is not None:
            record["stop_reason"] = self.stop_reason
        if self.shard is not None:
            record["shard"] = self.shard
        return record

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LegProvenance":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            relay=data["relay"],
            rtt_ms=data.get("rtt_ms"),
            samples_requested=int(data.get("samples_requested", 0)),
            samples_kept=int(data.get("samples_kept", 0)),
            samples_saved=int(data.get("samples_saved", 0)),
            stop_reason=data.get("stop_reason"),
            duration_ms=float(data.get("duration_ms", 0.0)),
            shard=data.get("shard"),
        )


class ProvenanceLog:
    """An append-only collection of :class:`PairProvenance` records,
    plus the campaign's :class:`LegProvenance` records.

    Shard workers each build one; the parent folds them together with
    :meth:`merge`, retagging adopted records with the worker index so a
    fused log still says which process measured what. Leg records are
    kept separately from pair records — ``len(log)`` and iteration stay
    pair-only, so the historical per-pair schema is unchanged.
    """

    __slots__ = ("_records", "_legs")

    def __init__(self) -> None:
        self._records: list[PairProvenance] = []
        self._legs: list[LegProvenance] = []

    def add(self, record: PairProvenance) -> None:
        """Append one pair's provenance."""
        self._records.append(record)

    def add_leg(self, record: LegProvenance) -> None:
        """Append one leg circuit's provenance."""
        self._legs.append(record)

    def legs(self) -> list[LegProvenance]:
        """All leg records, in insertion order."""
        return list(self._legs)

    def leg_for(self, relay: str) -> LegProvenance | None:
        """The leg record for one relay, or ``None``."""
        for record in self._legs:
            if record.relay == relay:
                return record
        return None

    def records(self) -> list[PairProvenance]:
        """All records, in insertion order."""
        return list(self._records)

    def get(self, x: str, y: str) -> PairProvenance | None:
        """The record for an unordered pair, or ``None``."""
        for record in self._records:
            if {record.x, record.y} == {x, y}:
                return record
        return None

    def merge(
        self,
        other: "ProvenanceLog | list[dict[str, Any]]",
        shard: int | None = None,
    ) -> "ProvenanceLog":
        """Adopt another log's (or a raw dict list's) records. Returns self.

        ``shard`` retags the adopted records with the worker that
        produced them; records that already carry a shard keep it.
        Leg records from another :class:`ProvenanceLog` are adopted too,
        but keep their own shard field untouched — a ``None`` there
        means "measured by the campaign-wide leg phase", which is an
        attribution, not a gap to fill.
        """
        if isinstance(other, ProvenanceLog):
            adopted = [PairProvenance.from_dict(r.to_dict()) for r in other._records]
            self.merge_legs(other.legs_to_list())
        else:
            adopted = [PairProvenance.from_dict(r) for r in other]
        for record in adopted:
            if shard is not None and record.shard is None:
                record.shard = shard
            self._records.append(record)
        return self

    def merge_legs(
        self,
        legs: "list[dict[str, Any]]",
        shard: int | None = None,
    ) -> "ProvenanceLog":
        """Adopt serialized leg records. Returns self.

        ``shard`` retags legs a *worker* had to measure itself; leg-phase
        records pass ``shard=None`` and keep their phase attribution.
        """
        for entry in legs:
            record = LegProvenance.from_dict(entry)
            if shard is not None and record.shard is None:
                record.shard = shard
            self._legs.append(record)
        return self

    def to_list(self) -> list[dict[str, Any]]:
        """JSON-ready list of every pair record."""
        return [record.to_dict() for record in self._records]

    def legs_to_list(self) -> list[dict[str, Any]]:
        """JSON-ready list of every leg record."""
        return [record.to_dict() for record in self._legs]

    @classmethod
    def from_list(
        cls,
        data: list[dict[str, Any]],
        legs: list[dict[str, Any]] | None = None,
    ) -> "ProvenanceLog":
        """Rebuild a log from :meth:`to_list` (+ :meth:`legs_to_list`) output."""
        log = cls()
        for entry in data:
            log._records.append(PairProvenance.from_dict(entry))
        for entry in legs or []:
            log._legs.append(LegProvenance.from_dict(entry))
        return log

    def by_status(self, status: str) -> list[PairProvenance]:
        """Records with the given status (``measured``/``failed``)."""
        return [record for record in self._records if record.status == status]

    def failure_breakdown(self) -> dict[str, int]:
        """Failed-pair counts keyed by failure category."""
        breakdown: dict[str, int] = {}
        for record in self._records:
            if record.status == "failed":
                category = record.failure_category or "other"
                breakdown[category] = breakdown.get(category, 0) + 1
        return breakdown

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PairProvenance]:
        return iter(self._records)

    def __repr__(self) -> str:
        failed = len(self.by_status("failed"))
        return f"ProvenanceLog({len(self._records)} records, {failed} failed)"


# ----------------------------------------------------------------------
# Matrix + provenance + metadata, as one auditable document


DATASET_FORMAT = "ting-campaign/1"


@dataclass(slots=True)
class CampaignDataset:
    """A campaign's full output: matrix, per-pair provenance, metadata.

    The matrix alone answers "what is R(x, y)?"; the dataset also
    answers "how do you know?" — which downstream consumers of
    all-pairs latency data (overlay routing, latency-aware circuit
    construction) need before they build on it.
    """

    matrix: RttMatrix
    provenance: ProvenanceLog = field(default_factory=ProvenanceLog)
    meta: dict[str, Any] = field(default_factory=dict)

    def to_json(self, indent: int | None = None) -> str:
        """One JSON document: format tag, metadata, matrix, provenance."""
        payload = {
            "format": DATASET_FORMAT,
            "meta": self.meta,
            "matrix": json.loads(self.matrix.to_json()),
            "provenance": self.provenance.to_list(),
        }
        # Leg provenance is additive: datasets without it (pre-v2
        # campaigns) serialize byte-identically to the historical schema.
        legs = self.provenance.legs_to_list()
        if legs:
            payload["legs"] = legs
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignDataset":
        """Rebuild a dataset from :meth:`to_json` output."""
        payload = json.loads(text)
        if payload.get("format") != DATASET_FORMAT:
            raise MeasurementError(
                f"unknown dataset format {payload.get('format')!r}"
            )
        matrix = RttMatrix.from_json(json.dumps(payload["matrix"]))
        provenance = ProvenanceLog.from_list(
            payload.get("provenance", []), legs=payload.get("legs")
        )
        return cls(matrix=matrix, provenance=provenance, meta=payload.get("meta", {}))

    def save(self, path: str | Path) -> None:
        """Write the dataset as JSON to ``path``."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "CampaignDataset":
        """Read a dataset previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    def __repr__(self) -> str:
        return (
            f"CampaignDataset(matrix={self.matrix!r}, "
            f"provenance={len(self.provenance)} records)"
        )
