"""All-pairs RTT datasets.

:class:`RttMatrix` is the product Ting exists to create: a symmetric
matrix of minimum RTTs between every pair in a relay set. Every
application in Section 5 (deanonymization speedup, TIV hunting, long
low-latency circuits) consumes one of these. Matrices serialize to JSON
so that expensive campaigns can be cached, which Section 4.6 justifies:
Ting's measurements are stable over at least a week.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.util.errors import MeasurementError
from repro.util.units import Milliseconds


class RttMatrix:
    """A symmetric all-pairs RTT matrix keyed by node identifier."""

    def __init__(self, nodes: list[str]) -> None:
        if len(nodes) != len(set(nodes)):
            raise MeasurementError("node identifiers must be unique")
        self.nodes = list(nodes)
        self._index = {node: i for i, node in enumerate(self.nodes)}
        n = len(nodes)
        self._matrix = np.full((n, n), np.nan)
        np.fill_diagonal(self._matrix, 0.0)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._index

    def index_of(self, node: str) -> int:
        """Row/column index of a node identifier."""
        try:
            return self._index[node]
        except KeyError:
            raise MeasurementError(f"unknown node {node!r}") from None

    def set(self, a: str, b: str, rtt_ms: Milliseconds) -> None:
        """Record R(a, b); the matrix stays symmetric."""
        if rtt_ms < 0:
            raise MeasurementError(f"negative RTT {rtt_ms} for ({a}, {b})")
        i, j = self.index_of(a), self.index_of(b)
        if i == j:
            raise MeasurementError("diagonal entries are fixed at zero")
        self._matrix[i, j] = rtt_ms
        self._matrix[j, i] = rtt_ms

    def get(self, a: str, b: str) -> Milliseconds:
        """R(a, b); raises if the pair was never measured."""
        value = self._matrix[self.index_of(a), self.index_of(b)]
        if math.isnan(value):
            raise MeasurementError(f"pair ({a}, {b}) has not been measured")
        return float(value)

    def has(self, a: str, b: str) -> bool:
        """Whether the pair has been measured."""
        return not math.isnan(self._matrix[self.index_of(a), self.index_of(b)])

    # ------------------------------------------------------------------

    def pairs(self) -> Iterator[tuple[str, str]]:
        """All unordered node pairs (measured or not)."""
        for i, a in enumerate(self.nodes):
            for b in self.nodes[i + 1 :]:
                yield (a, b)

    def measured_pairs(self) -> Iterator[tuple[str, str, Milliseconds]]:
        """All measured unordered pairs with their RTTs."""
        for a, b in self.pairs():
            i, j = self._index[a], self._index[b]
            value = self._matrix[i, j]
            if not math.isnan(value):
                yield (a, b, float(value))

    @property
    def is_complete(self) -> bool:
        """Whether every off-diagonal pair has been measured."""
        return not np.isnan(self._matrix).any()

    @property
    def num_measured(self) -> int:
        """Count of measured (off-diagonal) pairs."""
        n = len(self.nodes)
        missing = int(np.isnan(self._matrix).sum()) // 2
        return n * (n - 1) // 2 - missing

    def mean_rtt_ms(self) -> Milliseconds:
        """μ — the population mean RTT Algorithm 1 uses to approximate
        the unknown source-to-entry leg."""
        values = [rtt for _, _, rtt in self.measured_pairs()]
        if not values:
            raise MeasurementError("matrix has no measurements")
        return float(np.mean(values))

    def values(self) -> np.ndarray:
        """All measured RTTs as a flat array (one entry per pair)."""
        return np.array([rtt for _, _, rtt in self.measured_pairs()])

    def as_array(self) -> np.ndarray:
        """A copy of the underlying matrix (NaN where unmeasured)."""
        return self._matrix.copy()

    def submatrix(self, nodes: list[str]) -> "RttMatrix":
        """Restrict to a node subset, keeping measured values."""
        sub = RttMatrix(nodes)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                if self.has(a, b):
                    sub.set(a, b, self.get(a, b))
        return sub

    # ------------------------------------------------------------------
    # Serialization

    def to_json(self) -> str:
        """Serialize the matrix (nodes + values) to a JSON string."""
        payload = {
            "nodes": self.nodes,
            "rtts_ms": [
                [None if math.isnan(v) else round(float(v), 6) for v in row]
                for row in self._matrix
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "RttMatrix":
        """Rebuild a matrix from :meth:`to_json` output."""
        payload = json.loads(text)
        matrix = cls(payload["nodes"])
        rows = payload["rtts_ms"]
        n = len(matrix.nodes)
        if len(rows) != n or any(len(row) != n for row in rows):
            raise MeasurementError("malformed RTT matrix JSON")
        for i in range(n):
            for j in range(n):
                value = rows[i][j]
                matrix._matrix[i, j] = np.nan if value is None else float(value)
        np.fill_diagonal(matrix._matrix, 0.0)
        return matrix

    def save(self, path: str | Path) -> None:
        """Write the matrix as JSON to ``path``."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "RttMatrix":
        """Read a matrix previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    def __repr__(self) -> str:
        return (
            f"RttMatrix(nodes={len(self.nodes)}, "
            f"measured={self.num_measured}/{len(self.nodes) * (len(self.nodes) - 1) // 2})"
        )
