"""Per-relay forwarding-delay estimation (Section 4.3).

The seven-step procedure from the paper, which deliberately mixes Tor
and non-Tor probes so that networks with differential protocol treatment
stand out (Figure 5's anomalous, sometimes negative estimates):

1. Run s, d, w, z as usual.
2. Circuit ``C1 = (w, z)``; its echo RTT is
   ``R(s,w) + F_w + R(w,z) + F_z + R(z,d)``.
3. Ping (ICMP) or TCP-probe w from s — with everything co-located this
   is the loopback RTT.
4. ``F_w = F_z = (R_C1 − R̃(s,w) − R̃(z,d)) / 2``.
5. Circuit ``C2 = (w, x, z)``; its echo RTT adds x's legs and delay.
6. Probe x from w's host to estimate ``R̃(w,x) = R̃(x,z)``.
7. ``F_x = R_C2 − F_w − F_z − 2·R̃(w,x) − 2·R̃(s,w)``.

Because step 6 uses ICMP (or plain TCP) while steps 2 and 5 ride Tor,
``F_x`` inherits any difference in how x's network treats those classes
— negative values flag exactly the networks whose pings cannot be
trusted, which is the paper's argument for keeping Ting Tor-only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.measurement_host import MeasurementHost
from repro.core.sampling import SamplePolicy, min_estimate
from repro.netsim.transport import IcmpPinger, TcpConnectProber
from repro.tor.directory import RelayDescriptor
from repro.util.errors import CircuitError, MeasurementError, StreamError
from repro.util.units import Milliseconds


@dataclass
class ForwardingDelayReport:
    """One relay's estimated forwarding delay via one probe protocol."""

    fingerprint: str
    probe_kind: str  # "icmp" | "tcp"
    forwarding_delay_ms: Milliseconds
    circuit_rtt_ms: Milliseconds
    probe_rtt_ms: Milliseconds
    local_delay_ms: Milliseconds  # F_w (= F_z) at measurement time

    @property
    def is_anomalous(self) -> bool:
        """Negative forwarding delay: the network treats the probe
        protocol and Tor traffic differently (Section 4.3)."""
        return self.forwarding_delay_ms < 0.0


class ForwardingDelayEstimator:
    """Implements the Section 4.3 method against live relays."""

    def __init__(
        self,
        host: MeasurementHost,
        policy: SamplePolicy | None = None,
        probe_count: int = 100,
    ) -> None:
        self.host = host
        self.policy = policy or SamplePolicy.high_accuracy()
        self.probe_count = probe_count
        self._icmp_from_s = IcmpPinger(host.fabric, host.echo_client_host)
        self._icmp_from_w = IcmpPinger(host.fabric, host.relay_w.host)
        self._tcp_from_w = TcpConnectProber(host.fabric, host.relay_w.host)
        self._local_delay_ms: Milliseconds | None = None

    # ------------------------------------------------------------------

    def calibrate_local(self) -> Milliseconds:
        """Steps 2–4: estimate F_w (= F_z) from the (w, z) circuit."""
        circuit_rtt = self._measure_circuit(
            (self.host.relay_w.fingerprint, self.host.relay_z.fingerprint)
        )
        # R̃(s,w) and R̃(z,d) are both loopback round trips here.
        loopback = self._icmp_from_s.measure_min_rtt(
            self.host.relay_w.host, count=self.probe_count
        )
        local = (circuit_rtt - 2.0 * loopback) / 2.0
        self._local_delay_ms = local
        return local

    def estimate(
        self, x: RelayDescriptor | str, probe_kind: str = "icmp"
    ) -> ForwardingDelayReport:
        """Steps 5–7: estimate F_x using ICMP or TCP probes."""
        if probe_kind not in ("icmp", "tcp"):
            raise MeasurementError(f"unknown probe kind {probe_kind!r}")
        consensus = self.host.proxy.consensus
        descriptor = x if isinstance(x, RelayDescriptor) else consensus.get(x)
        if self._local_delay_ms is None:
            self.calibrate_local()
        local = self._local_delay_ms
        assert local is not None

        circuit_rtt = self._measure_circuit(
            (
                self.host.relay_w.fingerprint,
                descriptor.fingerprint,
                self.host.relay_z.fingerprint,
            )
        )
        target = self.host.topology.host_by_address(descriptor.address)
        if probe_kind == "icmp":
            probe_rtt = self._icmp_from_w.measure_min_rtt(
                target, count=self.probe_count
            )
        else:
            probe_rtt = self._tcp_from_w.measure_min_rtt(
                target, count=self.probe_count
            )
        loopback = self._icmp_from_s.measure_min_rtt(
            self.host.relay_w.host, count=self.probe_count
        )
        # The bracket below is 2·F_x plus twice any protocol differential
        # at x's network; halve it to report the per-direction delay
        # (the 0–3 ms scale of the paper's Figure 5).
        forwarding = (
            circuit_rtt - 2.0 * local - 2.0 * probe_rtt - 2.0 * loopback
        ) / 2.0
        return ForwardingDelayReport(
            fingerprint=descriptor.fingerprint,
            probe_kind=probe_kind,
            forwarding_delay_ms=forwarding,
            circuit_rtt_ms=circuit_rtt,
            probe_rtt_ms=probe_rtt,
            local_delay_ms=local,
        )

    # ------------------------------------------------------------------

    def _measure_circuit(self, path: tuple[str, ...]) -> Milliseconds:
        controller = self.host.controller
        try:
            circuit = controller.build_circuit(list(path))
        except CircuitError as exc:
            raise MeasurementError(f"delay-probe circuit failed: {exc}") from exc
        try:
            try:
                stream = controller.open_stream(
                    circuit, self.host.echo_address, self.host.echo_port
                )
            except StreamError as exc:
                raise MeasurementError(f"delay-probe stream failed: {exc}") from exc
            result = self.host.echo_client.probe(
                stream,
                samples=self.policy.samples,
                interval_ms=self.policy.interval_ms,
                timeout_ms=self.policy.timeout_ms,
            )
            stream.close()
        finally:
            controller.close_circuit(circuit)
        return min_estimate(result.rtts_ms)
