"""Concurrent all-pairs campaigns: many Ting measurements in flight.

Section 4.6 notes that "an all-pairs matrix can be time-consuming to
calculate". Sequential measurement of n relays costs
``C(n,2) + n`` circuit-measurements end to end; but the measurements are
independent, so a client can keep several circuits open and probe them
concurrently, dividing the campaign's *makespan* by (almost) the
concurrency level. Relay load from the extra simultaneous circuits is
negligible next to ambient traffic (each probe stream is a few cells per
second).

:class:`ParallelCampaign` is the fully event-driven counterpart of
:class:`~repro.core.campaign.AllPairsCampaign`: it schedules pair tasks
through a bounded worker pool, deduplicates leg measurements across
pairs (each relay's ``C_x`` is measured exactly once and shared), and
assembles the same :class:`~repro.core.dataset.RttMatrix`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.dataset import RttMatrix
from repro.core.measurement_host import MeasurementHost
from repro.core.sampling import SamplePolicy, min_estimate
from repro.obs import PAIR_FAILED, PAIR_MEASURED, categorize_failure
from repro.tor.client import Circuit
from repro.tor.directory import RelayDescriptor
from repro.util.errors import CircuitError, MeasurementError, StreamError
from repro.util.units import Milliseconds


@dataclass
class ParallelReport:
    """Outcome of one concurrent campaign."""

    matrix: RttMatrix
    pairs_attempted: int = 0
    pairs_measured: int = 0
    failures: list[tuple[str, str, str]] = field(default_factory=list)
    makespan_ms: Milliseconds = 0.0
    peak_concurrency: int = 0


class _CircuitProbe:
    """One async circuit measurement: build, attach, probe, close."""

    def __init__(
        self,
        host: MeasurementHost,
        path: list[str],
        policy: SamplePolicy,
        on_done: Callable[[list[float]], None],
        on_error: Callable[[str], None],
    ) -> None:
        self.host = host
        self.policy = policy
        self.on_done = on_done
        self.on_error = on_error
        self.circuit: Circuit | None = None
        try:
            host.proxy.create_circuit(path, self._built, self._build_failed)
        except CircuitError as exc:
            # Synchronous validation failure (bad path).
            host.sim.schedule(0.0, on_error, str(exc))

    def _built(self, circuit: Circuit) -> None:
        self.circuit = circuit
        try:
            self.host.proxy.open_stream(
                circuit,
                self.host.echo_address,
                self.host.echo_port,
                self._attached,
                self._stream_failed,
            )
        except StreamError as exc:
            self._finish_error(str(exc))

    def _build_failed(self, circuit: Circuit, reason: str) -> None:
        self.on_error(f"circuit build failed: {reason}")

    def _stream_failed(self, reason: str) -> None:
        self._finish_error(f"stream attach failed: {reason}")

    def _attached(self, stream) -> None:
        self.host.echo_client.probe_async(
            stream,
            samples=self.policy.samples,
            on_done=lambda result: self._probed(stream, result),
            on_error=self._finish_error,
            interval_ms=self.policy.interval_ms,
            timeout_ms=self.policy.timeout_ms,
        )

    def _probed(self, stream, result) -> None:
        stream.close()
        self._close_circuit()
        self.on_done(result.rtts_ms)

    def _finish_error(self, reason: str) -> None:
        self._close_circuit()
        self.on_error(reason)

    def _close_circuit(self) -> None:
        if self.circuit is not None:
            self.host.proxy.close_circuit(self.circuit)
            self.circuit = None


class ParallelCampaign:
    """Measures all pairs with up to ``concurrency`` circuits in flight."""

    def __init__(
        self,
        host: MeasurementHost,
        relays: list[RelayDescriptor],
        policy: SamplePolicy | None = None,
        concurrency: int = 8,
    ) -> None:
        if len(relays) < 2:
            raise MeasurementError("need at least two relays for a campaign")
        fingerprints = [r.fingerprint for r in relays]
        if len(set(fingerprints)) != len(fingerprints):
            raise MeasurementError("duplicate relays in campaign set")
        if concurrency < 1:
            raise MeasurementError("concurrency must be >= 1")
        self.host = host
        self.relays = list(relays)
        self.policy = policy or SamplePolicy.high_accuracy()
        self.concurrency = concurrency

        self._w = host.relay_w.fingerprint
        self._z = host.relay_z.fingerprint
        # Leg results shared across pairs: fingerprint -> min RTT.
        self._legs: dict[str, float] = {}
        self._leg_waiters: dict[str, list[Callable[[], None]]] = {}
        self._leg_failures: dict[str, str] = {}

    # ------------------------------------------------------------------

    def run(self) -> ParallelReport:
        """Execute the campaign; drives the simulator until completion."""
        matrix = RttMatrix([r.fingerprint for r in self.relays])
        report = ParallelReport(matrix=matrix)
        started = self.host.sim.now

        tasks: list[tuple[str, str]] = [
            (a.fingerprint, b.fingerprint)
            for i, a in enumerate(self.relays)
            for b in self.relays[i + 1 :]
        ]
        # Leg tasks first (each exactly once), then pair tasks. A deque:
        # the C(n,2)+n task list is drained one task per completion, and
        # a list.pop(0) here is O(n^2) over the campaign — minutes of
        # pure queue-shuffling at a few hundred relays.
        queue: deque[tuple[str, ...]] = deque(
            [("leg", r.fingerprint) for r in self.relays]
            + [("pair", a, b) for a, b in tasks]
        )
        state = {"running": 0, "done": 0, "total": len(queue)}

        def launch_next() -> None:
            while state["running"] < self.concurrency and queue:
                task = queue.popleft()
                state["running"] += 1
                report.peak_concurrency = max(
                    report.peak_concurrency, state["running"]
                )
                if task[0] == "leg":
                    self._run_leg_task(task[1], task_finished)
                else:
                    self._run_pair_task(task[1], task[2], matrix, report, task_finished)

        def task_finished() -> None:
            state["running"] -= 1
            state["done"] += 1
            launch_next()

        launch_next()
        # Drive the simulation until every task resolves.
        self.host.sim.run(
            max_events=200_000_000,
            stop_when=lambda: state["done"] >= state["total"],
        )
        if state["done"] < state["total"]:
            raise MeasurementError("parallel campaign did not complete")
        report.pairs_attempted = len(tasks)
        report.pairs_measured = matrix.num_measured
        report.makespan_ms = self.host.sim.now - started
        metrics = self.host.metrics
        if metrics.enabled:
            metrics.inc("campaign.pairs_attempted", report.pairs_attempted)
            metrics.inc("campaign.pairs_measured", report.pairs_measured)
            metrics.set_gauge("campaign.makespan_ms", report.makespan_ms)
            metrics.max_gauge(
                "campaign.peak_concurrency", report.peak_concurrency
            )
        return report

    # ------------------------------------------------------------------

    def _run_leg_task(self, fingerprint: str, finished: Callable[[], None]) -> None:
        def done(samples: list[float]) -> None:
            self._legs[fingerprint] = min_estimate(samples)
            # Each leg is measured exactly once and shared — the
            # campaign-level equivalent of a sequential cache miss.
            self.host.metrics.inc("ting.leg_cache_misses")
            self._notify_leg(fingerprint)
            finished()

        def error(reason: str) -> None:
            self._leg_failures[fingerprint] = reason
            self._notify_leg(fingerprint)
            finished()

        _CircuitProbe(
            self.host, [self._w, fingerprint, self._z], self.policy, done, error
        )

    def _notify_leg(self, fingerprint: str) -> None:
        for waiter in self._leg_waiters.pop(fingerprint, []):
            waiter()

    def _when_leg_ready(self, fingerprint: str, callback: Callable[[], None]) -> None:
        if fingerprint in self._legs or fingerprint in self._leg_failures:
            callback()
        else:
            self._leg_waiters.setdefault(fingerprint, []).append(callback)

    def _run_pair_task(
        self,
        x_fp: str,
        y_fp: str,
        matrix: RttMatrix,
        report: ParallelReport,
        finished: Callable[[], None],
    ) -> None:
        started = self.host.sim.now
        metrics = self.host.metrics

        def done(samples: list[float]) -> None:
            cxy = min_estimate(samples)
            self._when_leg_ready(
                x_fp, lambda: self._when_leg_ready(y_fp, lambda: combine(cxy))
            )

        def combine(cxy: float) -> None:
            if x_fp in self._leg_failures or y_fp in self._leg_failures:
                reason = self._leg_failures.get(x_fp) or self._leg_failures.get(y_fp)
                fail(f"leg failed: {reason}")
                return
            estimate = cxy - self._legs[x_fp] / 2.0 - self._legs[y_fp] / 2.0
            matrix.set(x_fp, y_fp, max(0.0, estimate))
            if metrics.enabled:
                # Both legs came from the shared per-relay measurements.
                metrics.inc("ting.leg_cache_hits", 2)
                metrics.observe(
                    "campaign.pair_duration_ms", self.host.sim.now - started
                )
            if self.host.trace.enabled:
                self.host.trace.record(
                    self.host.sim.now,
                    PAIR_MEASURED,
                    x=x_fp,
                    y=y_fp,
                    rtt_ms=max(0.0, estimate),
                    duration_ms=self.host.sim.now - started,
                )
            finished()

        def fail(reason: str) -> None:
            report.failures.append((x_fp, y_fp, reason))
            if metrics.enabled:
                metrics.inc(f"campaign.failures.{categorize_failure(reason)}")
            if self.host.trace.enabled:
                self.host.trace.record(
                    self.host.sim.now, PAIR_FAILED, x=x_fp, y=y_fp, reason=reason
                )
            finished()

        def error(reason: str) -> None:
            fail(reason)

        _CircuitProbe(
            self.host, [self._w, x_fp, y_fp, self._z], self.policy, done, error
        )
