"""Concurrent all-pairs campaigns: many Ting measurements in flight.

Section 4.6 notes that "an all-pairs matrix can be time-consuming to
calculate". Sequential measurement of n relays costs
``C(n,2) + n`` circuit-measurements end to end; but the measurements are
independent, so a client can keep several circuits open and probe them
concurrently, dividing the campaign's *makespan* by (almost) the
concurrency level. Relay load from the extra simultaneous circuits is
negligible next to ambient traffic (each probe stream is a few cells per
second).

:class:`ParallelCampaign` is the fully event-driven counterpart of
:class:`~repro.core.campaign.AllPairsCampaign`: it schedules pair tasks
through a bounded worker pool, deduplicates leg measurements across
pairs (each relay's ``C_x`` is measured exactly once and shared), and
assembles the same :class:`~repro.core.dataset.RttMatrix`.

With a :class:`TaskIsolation` attached the campaign instead runs its
tasks strictly one at a time, resetting cached connections and
reseeding every delay-relevant RNG stream from the task's key before
each task. Each task's result then depends only on ``(root seed, task
key)`` — not on which tasks ran before it in this process — which is
what lets :class:`~repro.core.shard.ShardedCampaign` split the pair
list across worker processes and still merge a matrix that is
invariant to the shard count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.campaign import ProbeBudget
from repro.core.dataset import LegProvenance, PairProvenance, RttMatrix
from repro.core.measurement_host import MeasurementHost
from repro.core.sampling import SamplePolicy, debiased_min_estimate
from repro.obs import (
    CAMPAIGN_SPAN,
    CIRCUIT_BUILD_SPAN,
    LEG_SPAN,
    PAIR_FAILED,
    PAIR_MEASURED,
    PAIR_SPAN,
    PROBE_ROUND_SPAN,
    SpanHandle,
    categorize_failure,
)
from repro.tor.client import Circuit
from repro.tor.directory import RelayDescriptor
from repro.util.errors import CircuitError, MeasurementError, StreamError
from repro.util.rng import RandomStreams
from repro.util.units import Milliseconds

#: Estimates produced under task isolation are quantized to this many
#: decimal digits of a millisecond (1e-6 ms = one nanosecond). Absolute
#: event times differ between a sharded worker and a full campaign, so
#: float rounding perturbs raw RTTs at the ~1e-10 ms scale; nanosecond
#: quantization erases that while staying far below measurement
#: resolution. Unisolated campaigns never round (bit-for-bit compatible
#: with the historical estimator).
ISOLATED_ESTIMATE_DECIMALS = 6


@dataclass(frozen=True)
class TaskIsolation:
    """Recipe for making each measurement task's outcome context-free.

    ``streams`` is the testbed's root :class:`RandomStreams`;
    ``stream_names`` lists every named stream that is drawn from while a
    probe is in flight (latency jitter, relay forwarding models);
    ``reset`` drops world state cached across tasks (OR connections).
    Testbeds construct this — see ``LiveTorTestbed.task_isolation``.
    """

    streams: RandomStreams
    stream_names: tuple[str, ...]
    reset: Callable[[], None] | None = None

    def begin(self, task_key: str) -> None:
        """Prepare the world so the next task is a pure function of its key."""
        if self.reset is not None:
            self.reset()
        for name in self.stream_names:
            self.streams.reseed(name, task_key)


@dataclass
class ParallelReport:
    """Outcome of one concurrent campaign."""

    matrix: RttMatrix
    pairs_attempted: int = 0
    pairs_measured: int = 0
    failures: list[tuple[str, str, str]] = field(default_factory=list)
    makespan_ms: Milliseconds = 0.0
    peak_concurrency: int = 0
    #: Echo probes actually sent across every circuit (legs + pairs).
    probes_sent: int = 0
    #: Probes an adaptive policy's convergence rule avoided sending.
    probes_saved: int = 0
    #: Probe rounds that terminated on convergence rather than the cap.
    early_stops: int = 0
    #: Leg circuits this campaign actually built (attempted), as opposed
    #: to legs satisfied by pre-warmed estimates. Ting's decomposition
    #: needs exactly n of these per campaign, however the pair work is
    #: distributed — shard workers running behind a leg phase assert 0.
    legs_measured: int = 0


class _CircuitProbe:
    """One async circuit measurement: build, attach, probe, close.

    ``on_done`` receives the full ``EchoProbeResult`` (samples plus the
    early-stop outcome) so campaigns can account saved probes; the
    stream and circuit are closed on every path, success or error.
    """

    def __init__(
        self,
        host: MeasurementHost,
        path: list[str],
        policy: SamplePolicy,
        on_done: Callable[..., None],
        on_error: Callable[[str], None],
        span_parent: SpanHandle | None = None,
    ) -> None:
        self.host = host
        self.policy = policy
        self.on_done = on_done
        self.on_error = on_error
        self.circuit: Circuit | None = None
        self._stream = None
        #: Open spans for the current phase; ``end()`` is idempotent, so
        #: error paths can close whatever happens to be open.
        self._span_parent = span_parent
        self._build_span = host.spans.begin(
            CIRCUIT_BUILD_SPAN, parent=span_parent, hops=len(path)
        )
        self._probe_span: SpanHandle | None = None
        try:
            host.proxy.create_circuit(path, self._built, self._build_failed)
        except CircuitError as exc:
            # Synchronous validation failure (bad path).
            self._build_span.end()
            host.sim.schedule(0.0, on_error, str(exc))

    def _built(self, circuit: Circuit) -> None:
        self._build_span.end()
        self.circuit = circuit
        try:
            self.host.proxy.open_stream(
                circuit,
                self.host.echo_address,
                self.host.echo_port,
                self._attached,
                self._stream_failed,
            )
        except StreamError as exc:
            self._finish_error(str(exc))

    def _build_failed(self, circuit: Circuit, reason: str) -> None:
        self._build_span.end()
        self.on_error(f"circuit build failed: {reason}")

    def _stream_failed(self, reason: str) -> None:
        self._finish_error(f"stream attach failed: {reason}")

    def _attached(self, stream) -> None:
        self._stream = stream
        spec = self.policy.adaptive
        attrs = {"samples": self.policy.samples}
        if spec is not None:
            attrs["adaptive"] = spec.tolerance_label
        self._probe_span = self.host.spans.begin(
            PROBE_ROUND_SPAN, parent=self._span_parent, **attrs
        )
        self.host.echo_client.probe_async(
            stream,
            samples=self.policy.samples,
            on_done=lambda result: self._probed(stream, result),
            on_error=self._finish_error,
            interval_ms=self.policy.interval_ms,
            timeout_ms=self.policy.timeout_ms,
            adaptive=spec,
        )

    def _probed(self, stream, result) -> None:
        if self._probe_span is not None:
            self._probe_span.end()
        stream.close()
        self._stream = None
        self._close_circuit()
        self.on_done(result)

    def _finish_error(self, reason: str) -> None:
        self._build_span.end()
        if self._probe_span is not None:
            self._probe_span.end()
        # Zero-reply probe rounds land here with the stream still open;
        # close it before the circuit so nothing lingers in
        # ``circuit.streams`` (mirrors the TingMeasurer leak fix).
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        self._close_circuit()
        self.on_error(reason)

    def _close_circuit(self) -> None:
        if self.circuit is not None:
            self.host.proxy.close_circuit(self.circuit)
            self.circuit = None


class ParallelCampaign:
    """Measures all pairs with up to ``concurrency`` circuits in flight."""

    def __init__(
        self,
        host: MeasurementHost,
        relays: list[RelayDescriptor],
        policy: SamplePolicy | None = None,
        concurrency: int = 8,
        pairs: Sequence[tuple[str, str]] | None = None,
        isolation: TaskIsolation | None = None,
        budget: ProbeBudget | None = None,
        legs: Sequence[str] | None = None,
        leg_estimates: dict[str, float] | None = None,
        leg_failures: dict[str, str] | None = None,
    ) -> None:
        if len(relays) < 2:
            raise MeasurementError("need at least two relays for a campaign")
        fingerprints = [r.fingerprint for r in relays]
        if len(set(fingerprints)) != len(fingerprints):
            raise MeasurementError("duplicate relays in campaign set")
        if concurrency < 1:
            raise MeasurementError("concurrency must be >= 1")
        known = set(fingerprints)
        if pairs is not None:
            for a, b in pairs:
                if a == b or a not in known or b not in known:
                    raise MeasurementError(f"invalid campaign pair ({a}, {b})")
        for name, mapping in (("legs", legs), ("leg_estimates", leg_estimates),
                              ("leg_failures", leg_failures)):
            for fp in mapping or ():
                if fp not in known:
                    raise MeasurementError(f"unknown relay {fp!r} in {name}")
        self.host = host
        self.relays = list(relays)
        self.policy = policy or SamplePolicy.high_accuracy()
        self.concurrency = concurrency
        #: Explicit pair subset (a shard); ``None`` means all C(n,2).
        self.pairs = list(pairs) if pairs is not None else None
        #: Explicit leg task list. ``None`` derives legs from the pair
        #: scope (every touched relay); a sharded campaign's leg phase
        #: passes all fingerprints with ``pairs=[]``, and its workers
        #: pass ``legs=[]`` because the phase pre-warmed everything.
        self.legs = list(legs) if legs is not None else None
        #: When set, tasks run serially with per-task RNG/connection
        #: isolation; ``concurrency`` is ignored.
        self.isolation = isolation
        #: Optional campaign-wide probe cap. Each task launch re-resolves
        #: its policy through the budget, so tolerance degrades as the
        #: budget drains. Mutually honest with isolation (still
        #: deterministic) but not shard-invariant — ShardedCampaign
        #: never passes one.
        self.budget = budget

        self._w = host.relay_w.fingerprint
        self._z = host.relay_z.fingerprint
        # Leg results shared across pairs: fingerprint -> min RTT.
        # Pre-warmed estimates (a sharded campaign's leg phase) are
        # read-only inputs: tasks for them are never scheduled.
        self._legs: dict[str, float] = dict(leg_estimates or {})
        self._leg_waiters: dict[str, list[Callable[[], None]]] = {}
        self._leg_failures: dict[str, str] = dict(leg_failures or {})

    # ------------------------------------------------------------------

    @property
    def leg_estimates(self) -> dict[str, float]:
        """Every known leg estimate (pre-warmed and measured), by relay."""
        return dict(self._legs)

    @property
    def leg_failures(self) -> dict[str, str]:
        """Every known leg failure reason, by relay."""
        return dict(self._leg_failures)

    def _task_lists(self) -> tuple[list[str], list[tuple[str, str]]]:
        """Leg fingerprints and pair tasks for this campaign's scope."""
        if self.pairs is not None:
            pair_tasks = list(self.pairs)
            if self.legs is not None:
                wanted = set(self.legs)
            else:
                wanted = {fp for pair in pair_tasks for fp in pair}
        else:
            pair_tasks = [
                (a.fingerprint, b.fingerprint)
                for i, a in enumerate(self.relays)
                for b in self.relays[i + 1 :]
            ]
            wanted = (
                set(self.legs)
                if self.legs is not None
                else {r.fingerprint for r in self.relays}
            )
        leg_fps = [
            r.fingerprint
            for r in self.relays
            if r.fingerprint in wanted
            and r.fingerprint not in self._legs
            and r.fingerprint not in self._leg_failures
        ]
        return leg_fps, pair_tasks

    def run(self) -> ParallelReport:
        """Execute the campaign; drives the simulator until completion."""
        matrix = RttMatrix([r.fingerprint for r in self.relays])
        report = ParallelReport(matrix=matrix)
        started = self.host.sim.now
        leg_fps, pair_tasks = self._task_lists()

        events = self.host.events
        if events.enabled:
            events.info(
                "shard",
                "campaign_started",
                relays=len(self.relays),
                pairs=len(pair_tasks),
            )
        if self.budget is not None:
            self.budget.events = events
        campaign_span = self.host.spans.begin(
            CAMPAIGN_SPAN, relays=len(self.relays), pairs=len(pair_tasks)
        )
        try:
            if self.isolation is not None:
                self._run_isolated(leg_fps, pair_tasks, matrix, report)
            else:
                self._run_concurrent(leg_fps, pair_tasks, matrix, report)
        finally:
            campaign_span.end()

        report.pairs_attempted = len(pair_tasks)
        report.pairs_measured = matrix.num_measured
        report.makespan_ms = self.host.sim.now - started
        metrics = self.host.metrics
        if metrics.enabled:
            metrics.inc("campaign.pairs_attempted", report.pairs_attempted)
            metrics.inc("campaign.pairs_measured", report.pairs_measured)
            metrics.set_gauge("campaign.makespan_ms", report.makespan_ms)
            metrics.max_gauge(
                "campaign.peak_concurrency", report.peak_concurrency
            )
        if events.enabled:
            events.info(
                "shard",
                "campaign_finished",
                measured=report.pairs_measured,
                failed=len(report.failures),
                makespan_ms=round(report.makespan_ms, 3),
            )
        return report

    def _run_concurrent(
        self,
        leg_fps: list[str],
        pair_tasks: list[tuple[str, str]],
        matrix: RttMatrix,
        report: ParallelReport,
    ) -> None:
        # Leg tasks first (each exactly once), then pair tasks. A deque:
        # the C(n,2)+n task list is drained one task per completion, and
        # a list.pop(0) here is O(n^2) over the campaign — minutes of
        # pure queue-shuffling at a few hundred relays.
        queue: deque[tuple[str, ...]] = deque(
            [("leg", fp) for fp in leg_fps]
            + [("pair", a, b) for a, b in pair_tasks]
        )
        state = {"running": 0, "done": 0, "total": len(queue)}

        def launch_next() -> None:
            while state["running"] < self.concurrency and queue:
                task = queue.popleft()
                state["running"] += 1
                report.peak_concurrency = max(
                    report.peak_concurrency, state["running"]
                )
                if task[0] == "leg":
                    self._run_leg_task(task[1], report, task_finished)
                else:
                    self._run_pair_task(task[1], task[2], matrix, report, task_finished)

        def task_finished() -> None:
            state["running"] -= 1
            state["done"] += 1
            launch_next()

        launch_next()
        # Drive the simulation until every task resolves.
        self.host.sim.run(
            max_events=200_000_000,
            stop_when=lambda: state["done"] >= state["total"],
        )
        if state["done"] < state["total"]:
            raise MeasurementError("parallel campaign did not complete")

    def _run_isolated(
        self,
        leg_fps: list[str],
        pair_tasks: list[tuple[str, str]],
        matrix: RttMatrix,
        report: ParallelReport,
    ) -> None:
        """Serial per-task execution with context-free task outcomes.

        Before each task the isolation recipe drops cached OR connections
        and reseeds the delay streams from the task key; after each task
        the simulator drains to idle so no event (circuit teardown,
        connection close) crosses a task boundary. Together these make
        every task's samples a pure function of ``(root seed, task key)``.
        """
        report.peak_concurrency = 1
        tasks: list[tuple[str, ...]] = [("leg", fp) for fp in leg_fps] + [
            ("pair", a, b) for a, b in pair_tasks
        ]
        self._execute_isolated(tasks, matrix, report)

    def _execute_isolated(
        self,
        tasks: list[tuple[str, ...]],
        matrix: RttMatrix,
        report: ParallelReport,
    ) -> None:
        """Run a task list serially under per-task isolation.

        Task keys (``leg:<fp>`` / ``pair:<a>:<b>``) are what the
        isolation recipe reseeds from, so a task produces bit-identical
        samples whether it runs here as part of a full campaign, inside
        one :meth:`run_pairs` chunk on a shard worker, or alone.
        """
        sim = self.host.sim
        state = {"done": False}

        def finished() -> None:
            state["done"] = True

        for task in tasks:
            key = ":".join(task)
            self.isolation.begin(key)
            state["done"] = False
            if task[0] == "leg":
                self._run_leg_task(task[1], report, finished)
            else:
                self._run_pair_task(task[1], task[2], matrix, report, finished)
            sim.run(max_events=200_000_000, stop_when=lambda: state["done"])
            if not state["done"]:
                raise MeasurementError(f"isolated task {key} did not complete")
            # Drain teardown traffic before the next task's reset/reseed.
            sim.run(max_events=10_000_000)
            self.host.metrics.inc("campaign.task_isolations")

    def run_pairs(self, pairs: Sequence[tuple[str, str]]) -> ParallelReport:
        """Measure one pair chunk incrementally, under task isolation.

        The work-stealing dispatch in
        :class:`~repro.core.shard.ShardedCampaign` calls this once per
        stolen chunk: leg estimates accumulated so far (pre-warmed by
        the campaign's leg phase, or measured by an earlier chunk) are
        reused, and any relay still missing both an estimate and a
        failure gets a leg task prepended — so the chunk is
        self-sufficient even without a leg phase. Returns a per-chunk
        report whose matrix holds only this chunk's entries;
        ``legs_measured`` says how many leg circuits the chunk had to
        build itself (zero when fully pre-warmed).
        """
        if self.isolation is None:
            raise MeasurementError("run_pairs requires task isolation")
        known = {r.fingerprint for r in self.relays}
        for a, b in pairs:
            if a == b or a not in known or b not in known:
                raise MeasurementError(f"invalid campaign pair ({a}, {b})")
        matrix = RttMatrix([r.fingerprint for r in self.relays])
        report = ParallelReport(matrix=matrix, peak_concurrency=1)
        started = self.host.sim.now
        needed = [
            fp
            for fp in dict.fromkeys(fp for pair in pairs for fp in pair)
            if fp not in self._legs and fp not in self._leg_failures
        ]
        tasks: list[tuple[str, ...]] = [("leg", fp) for fp in needed] + [
            ("pair", a, b) for a, b in pairs
        ]
        self._execute_isolated(tasks, matrix, report)
        report.pairs_attempted = len(pairs)
        report.pairs_measured = matrix.num_measured
        report.makespan_ms = self.host.sim.now - started
        metrics = self.host.metrics
        if metrics.enabled:
            # Chunk counts sum to exactly what one unsharded run would
            # record — the merged-counter invariance rests on this.
            metrics.inc("campaign.pairs_attempted", report.pairs_attempted)
            metrics.inc("campaign.pairs_measured", report.pairs_measured)
        return report

    # ------------------------------------------------------------------

    def _launch_policy(self) -> SamplePolicy:
        """The policy for the task being launched right now (budgeted
        campaigns degrade it as the budget drains)."""
        if self.budget is None:
            return self.policy
        return self.budget.policy_for(self.policy)

    def _account_probes(self, report: ParallelReport, result) -> None:
        """Fold one probe round's cost into the report/budget/metrics."""
        report.probes_sent += result.sent
        if self.budget is not None:
            self.budget.spend(result.sent)
        if result.stopped_early:
            report.early_stops += 1
            report.probes_saved += result.samples_saved
            self.host.metrics.inc("ting.probes_saved", result.samples_saved)

    def _estimate(self, samples: list[float], policy: SamplePolicy) -> float:
        """The circuit estimate for one probe round's samples.

        Adaptive policies with a remaining-excess correction debias the
        minimum (see :func:`debiased_min_estimate`); quantization when
        running isolated erases the sub-picosecond float noise that
        absolute event times inject (:data:`ISOLATED_ESTIMATE_DECIMALS`),
        so sharded and unsharded runs of the same task agree exactly.
        The correction itself depends only on the kept-sample count and
        the lowest samples — both prefix properties — so it is quantized
        along with the minimum.
        """
        value = debiased_min_estimate(samples, policy)
        if self.isolation is not None:
            value = round(value, ISOLATED_ESTIMATE_DECIMALS)
        return value

    def _run_leg_task(
        self,
        fingerprint: str,
        report: ParallelReport,
        finished: Callable[[], None],
    ) -> None:
        events = self.host.events
        started = self.host.sim.now
        if events.enabled:
            events.debug("leg", "started", relay=fingerprint)
        leg_span = self.host.spans.begin(LEG_SPAN, relay=fingerprint)
        # The leg result is shared by every pair touching this relay, so
        # adaptive policies measure it at the full cap (for_leg); the
        # budget-degraded cap still applies.
        policy = self._launch_policy().for_leg()

        def done(result) -> None:
            self._legs[fingerprint] = self._estimate(result.rtts_ms, policy)
            self._account_probes(report, result)
            report.legs_measured += 1
            # Each leg is measured exactly once and shared — the
            # campaign-level equivalent of a sequential cache miss.
            self.host.metrics.inc("ting.leg_cache_lookups")
            self.host.metrics.inc("ting.leg_cache_misses")
            leg_span.end()
            if events.enabled:
                events.debug(
                    "leg",
                    "finished",
                    relay=fingerprint,
                    rtt_ms=self._legs[fingerprint],
                )
            if self.host.provenance is not None:
                self.host.provenance.add_leg(
                    LegProvenance(
                        relay=fingerprint,
                        rtt_ms=self._legs[fingerprint],
                        samples_requested=policy.samples,
                        samples_kept=len(result.rtts_ms),
                        samples_saved=result.samples_saved,
                        stop_reason=result.stop_reason,
                        duration_ms=self.host.sim.now - started,
                    )
                )
            self._notify_leg(fingerprint)
            finished()

        def error(reason: str) -> None:
            self._leg_failures[fingerprint] = reason
            report.legs_measured += 1
            leg_span.end()
            if events.enabled:
                events.warning("leg", "failed", relay=fingerprint, reason=reason)
            self._notify_leg(fingerprint)
            finished()

        _CircuitProbe(
            self.host,
            [self._w, fingerprint, self._z],
            policy,
            done,
            error,
            span_parent=leg_span,
        )

    def _notify_leg(self, fingerprint: str) -> None:
        for waiter in self._leg_waiters.pop(fingerprint, []):
            waiter()

    def _when_leg_ready(self, fingerprint: str, callback: Callable[[], None]) -> None:
        if fingerprint in self._legs or fingerprint in self._leg_failures:
            callback()
        else:
            self._leg_waiters.setdefault(fingerprint, []).append(callback)

    def _run_pair_task(
        self,
        x_fp: str,
        y_fp: str,
        matrix: RttMatrix,
        report: ParallelReport,
        finished: Callable[[], None],
    ) -> None:
        started = self.host.sim.now
        metrics = self.host.metrics
        provenance = self.host.provenance
        events = self.host.events
        if events.enabled:
            # One per pair, regardless of which worker runs it: the
            # ``campaign`` category is the shard-invariant event stream.
            events.info("campaign", "pair_started", x=x_fp, y=y_fp)
        pair_span = self.host.spans.begin(PAIR_SPAN, x=x_fp, y=y_fp)
        policy = self._launch_policy()

        def done(result) -> None:
            cxy = self._estimate(result.rtts_ms, policy)
            self._account_probes(report, result)
            self._when_leg_ready(
                x_fp,
                lambda: self._when_leg_ready(y_fp, lambda: combine(cxy, result)),
            )

        def combine(cxy: float, probe_result) -> None:
            if x_fp in self._leg_failures or y_fp in self._leg_failures:
                reason = self._leg_failures.get(x_fp) or self._leg_failures.get(y_fp)
                fail(f"leg failed: {reason}")
                return
            estimate = cxy - self._legs[x_fp] / 2.0 - self._legs[y_fp] / 2.0
            matrix.set(x_fp, y_fp, max(0.0, estimate))
            if metrics.enabled:
                # Both legs came from the shared per-relay measurements.
                metrics.inc("ting.leg_cache_lookups", 2)
                metrics.inc("ting.leg_cache_hits", 2)
                metrics.observe(
                    "campaign.pair_duration_ms", self.host.sim.now - started
                )
            if self.host.trace.enabled:
                self.host.trace.record(
                    self.host.sim.now,
                    PAIR_MEASURED,
                    x=x_fp,
                    y=y_fp,
                    rtt_ms=max(0.0, estimate),
                    duration_ms=self.host.sim.now - started,
                )
            if provenance is not None:
                provenance.add(
                    PairProvenance(
                        x=x_fp,
                        y=y_fp,
                        status="measured",
                        rtt_ms=max(0.0, estimate),
                        cxy_ms=cxy,
                        leg_x_ms=self._legs[x_fp],
                        leg_y_ms=self._legs[y_fp],
                        samples_requested=policy.samples,
                        samples_kept=len(probe_result.rtts_ms),
                        samples_saved=probe_result.samples_saved,
                        stop_reason=probe_result.stop_reason,
                        # The shared per-relay legs are the concurrent
                        # campaign's cache: every pair reuses both.
                        leg_cache_hits=2,
                        duration_ms=self.host.sim.now - started,
                    )
                )
            if events.enabled:
                events.info(
                    "campaign",
                    "pair_measured",
                    x=x_fp,
                    y=y_fp,
                    rtt_ms=max(0.0, estimate),
                    duration_ms=round(self.host.sim.now - started, 3),
                )
            pair_span.end()
            finished()

        def fail(reason: str) -> None:
            report.failures.append((x_fp, y_fp, reason))
            if metrics.enabled or provenance is not None:
                category = categorize_failure(reason, metrics)
                if metrics.enabled:
                    metrics.inc(f"campaign.failures.{category}")
                if provenance is not None:
                    provenance.add(
                        PairProvenance(
                            x=x_fp,
                            y=y_fp,
                            status="failed",
                            failure_category=category,
                            reason=reason,
                            duration_ms=self.host.sim.now - started,
                        )
                    )
            if self.host.trace.enabled:
                self.host.trace.record(
                    self.host.sim.now, PAIR_FAILED, x=x_fp, y=y_fp, reason=reason
                )
            if events.enabled:
                events.warning(
                    "campaign", "pair_failed", x=x_fp, y=y_fp, reason=reason
                )
            pair_span.end()
            finished()

        def error(reason: str) -> None:
            fail(reason)

        _CircuitProbe(
            self.host,
            [self._w, x_fp, y_fp, self._z],
            policy,
            done,
            error,
            span_parent=pair_span,
        )
