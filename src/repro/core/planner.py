"""Budgeted campaign planning: measure the most valuable pairs first.

At full-network scale the paper's all-pairs sweep stops being a
realistic unit of work — ~6,500 relays is ~21M pairs — and Section 4.6
says it does not need to be: Ting estimates are stable over at least a
week, so a standing dataset only needs *incremental* refresh. The
related work points the same way (ShorTor consumes a pair matrix it
refreshes continuously; Imani et al. only need the latency-relevant
slice), so instead of ``itertools.combinations`` a campaign should run
from a **prioritized, budgeted pair list**.

:class:`CampaignPlanner` scores every unordered pair of the target
relay set against an existing :class:`~repro.core.dataset.CampaignDataset`
(or nothing, for a cold start) along four axes:

* **coverage** — the pair has no measured entry at all (or its last
  attempt failed); missing data beats everything else.
* **staleness** — how long ago the pair was last measured, read from
  the provenance log's insertion order (the only clock the log has:
  lower row → older measurement), rank-normalized to [0, 1].
* **disagreement** — |predicted − measured| / measured against a
  coordinate-model estimate (``apps/coordinates``' Vivaldi predictions),
  so measurement effort is steered to where the model is most wrong —
  the active-learning loop the roadmap sketches.
* **quality** — the data-quality deficit of the standing estimate
  (``repro.obs.health``'s per-pair scores), so noisy, retry-scarred,
  or heavily debiased estimates get refreshed ahead of clean ones.

The weighted sum plus a tiny seeded jitter (deterministic tie-breaking
that still spreads equal-score pairs instead of always favouring low
indices) is sorted descending and cut to the budget. The resulting
:class:`CampaignPlan` feeds straight into
``ShardedCampaign(pairs=plan.pairs)``'s work-stealing chunk queue, and
the refreshed results fold back with ``CampaignDataset.absorb``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.dataset import CampaignDataset, RttMatrix
from repro.util.errors import MeasurementError


@dataclass(frozen=True)
class PlannerWeights:
    """Relative priority of the scoring axes (each axis is in [0, 1])."""

    #: Pair has no measured matrix entry.
    coverage: float = 1.0
    #: Pair's most recent provenance record says "failed" (retry value).
    failure: float = 0.6
    #: Age of the last measurement, rank-normalized over the dataset.
    staleness: float = 0.3
    #: Predicted-vs-measured relative disagreement, clipped to [0, 1].
    disagreement: float = 0.8
    #: Data-quality deficit (1 − quality score) of the last estimate.
    quality: float = 0.4


@dataclass
class CampaignPlan:
    """An ordered, budgeted pair list plus the scoring that produced it."""

    #: Pairs in descending priority, cut to the budget.
    pairs: list[tuple[str, str]]
    #: Score per planned pair (aligned with :attr:`pairs`).
    scores: np.ndarray
    #: How many candidate pairs were scored before the cut.
    candidates: int
    #: The requested budget (``None`` = unbudgeted).
    budget: int | None
    #: Candidate counts per scoring axis, for reporting.
    breakdown: dict[str, int] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        """JSON-ready description of the plan."""
        return {
            "planned": len(self.pairs),
            "candidates": self.candidates,
            "budget": self.budget,
            "score_max": round(float(self.scores[0]), 6) if len(self.pairs) else None,
            "score_min": round(float(self.scores[-1]), 6) if len(self.pairs) else None,
            **{k: int(v) for k, v in self.breakdown.items()},
        }


class CampaignPlanner:
    """Produce a prioritized, budgeted pair list for a relay set.

    ``dataset`` is the standing measurement history to refresh (``None``
    plans a cold-start sweep where every pair is pure coverage).
    ``predicted`` supplies model estimates for disagreement scoring —
    an :class:`RttMatrix` or an ``n×n`` array aligned with
    ``fingerprints`` (e.g. ``VivaldiSystem.predict_matrix()``).
    ``quality`` supplies per-pair quality scores as a refresh axis —
    anything with ``.nodes`` + an ``n×n`` ``.matrix`` (e.g.
    ``repro.obs.health``'s ``QualityScores``, or the dataset's own
    ``dataset.quality()``), or a raw aligned array; low-quality
    estimates are refreshed first.

    Planning is fully deterministic: the same fingerprints, dataset,
    predictions, quality scores, weights, and seed produce the
    identical pair order.
    """

    def __init__(
        self,
        fingerprints: list[str],
        dataset: CampaignDataset | None = None,
        predicted: "RttMatrix | np.ndarray | None" = None,
        weights: PlannerWeights | None = None,
        seed: int = 0,
        jitter: float = 1e-6,
        quality: Any | None = None,
    ) -> None:
        if len(fingerprints) != len(set(fingerprints)):
            raise MeasurementError("planner fingerprints must be unique")
        self.fingerprints = list(fingerprints)
        self.dataset = dataset
        self.weights = weights if weights is not None else PlannerWeights()
        self.seed = seed
        self.jitter = jitter
        self._predicted = self._align_predictions(predicted)
        self._quality = self._align_quality(quality)

    # ------------------------------------------------------------------

    def _align_predictions(
        self, predicted: "RttMatrix | np.ndarray | None"
    ) -> np.ndarray | None:
        if predicted is None:
            return None
        n = len(self.fingerprints)
        if isinstance(predicted, RttMatrix):
            # Align by name; relays the model has not seen stay NaN.
            aligned = np.full((n, n), np.nan)
            known = [
                (i, predicted.index_of(fp))
                for i, fp in enumerate(self.fingerprints)
                if fp in predicted
            ]
            if known:
                ours = np.array([i for i, _ in known])
                theirs = np.array([j for _, j in known])
                aligned[np.ix_(ours, ours)] = predicted.matrix[np.ix_(theirs, theirs)]
            return aligned
        predicted = np.asarray(predicted, dtype=float)
        if predicted.shape != (n, n):
            raise MeasurementError(
                f"prediction matrix shape {predicted.shape} does not match "
                f"{n} fingerprints"
            )
        return predicted

    def _align_quality(self, quality: Any | None) -> np.ndarray | None:
        """Align a quality-score source to our fingerprint order.

        Duck-typed: anything with ``.nodes`` and an ``n×n`` ``.matrix``
        is aligned by name (relays it has not scored stay NaN); a bare
        array must already be aligned.
        """
        if quality is None:
            return None
        n = len(self.fingerprints)
        nodes = getattr(quality, "nodes", None)
        if nodes is not None:
            source = np.asarray(quality.matrix, dtype=float)
            index = {node: i for i, node in enumerate(nodes)}
            aligned = np.full((n, n), np.nan)
            known = [
                (i, index[fp])
                for i, fp in enumerate(self.fingerprints)
                if fp in index
            ]
            if known:
                ours = np.array([i for i, _ in known])
                theirs = np.array([j for _, j in known])
                aligned[np.ix_(ours, ours)] = source[np.ix_(theirs, theirs)]
            return aligned
        quality = np.asarray(quality, dtype=float)
        if quality.shape != (n, n):
            raise MeasurementError(
                f"quality matrix shape {quality.shape} does not match "
                f"{n} fingerprints"
            )
        return quality

    def _measured_values(
        self, iu: np.ndarray, ju: np.ndarray
    ) -> np.ndarray:
        """Last known RTT per candidate pair (NaN where unmeasured)."""
        n = len(self.fingerprints)
        values = np.full(iu.shape, np.nan)
        if self.dataset is None:
            return values
        matrix = self.dataset.matrix
        known = [
            (i, matrix.index_of(fp))
            for i, fp in enumerate(self.fingerprints)
            if fp in matrix
        ]
        if not known:
            return values
        row_map = np.full(n, -1, dtype=np.int64)
        for i, j in known:
            row_map[i] = j
        mi, mj = row_map[iu], row_map[ju]
        mapped = (mi >= 0) & (mj >= 0)
        values[mapped] = matrix.matrix[mi[mapped], mj[mapped]]
        return values

    def _provenance_features(
        self, iu: np.ndarray, ju: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-candidate (staleness, failed) read from the provenance log.

        Staleness is the rank-normalized age of each pair's *latest*
        record: the oldest refreshable pair scores 1.0, the newest 0.0.
        Pairs with a measured matrix entry but no provenance at all
        (matrix-only datasets) are treated as fully stale — age unknown.
        ``failed`` marks pairs whose latest record is a failure.
        """
        staleness = np.full(iu.shape, np.nan)
        failed = np.zeros(iu.shape, dtype=bool)
        if self.dataset is None or len(self.dataset.provenance) == 0:
            return staleness, failed
        log = self.dataset.provenance
        names = log.name_table()
        fp_index = {fp: i for i, fp in enumerate(self.fingerprints)}
        # name-table code -> our fingerprint index (-1 = not a target)
        code_map = np.array([fp_index.get(nm, -1) for nm in names], dtype=np.int64)
        status_col, cat_ids = log.status_codes()
        failed_code = cat_ids.get("failed", -2)

        n = len(self.fingerprints)
        latest_row = np.full(iu.shape, -1, dtype=np.int64)
        # Candidate pair -> flat slot for O(1) lookup.
        slot = np.full(n * n, -1, dtype=np.int64)
        slot[iu * n + ju] = np.arange(iu.shape[0])
        for (a, b), row in log.last_row_for_pairs().items():
            ia, ib = int(code_map[a]), int(code_map[b])
            if ia < 0 or ib < 0:
                continue
            lo, hi = (ia, ib) if ia < ib else (ib, ia)
            s = slot[lo * n + hi]
            if s >= 0:
                latest_row[s] = row
        seen = latest_row >= 0
        if seen.any():
            rows = latest_row[seen].astype(float)
            lo, hi = float(rows.min()), float(rows.max())
            span = (hi - lo) or 1.0
            staleness[seen] = (hi - rows) / span
            failed[seen] = status_col[latest_row[seen]] == failed_code
        return staleness, failed

    # ------------------------------------------------------------------

    def plan(
        self,
        budget_pairs: int | None = None,
        min_score: float = 0.0,
    ) -> CampaignPlan:
        """Score every candidate pair and cut to the budget.

        Pairs whose base score is not above ``min_score`` are dropped
        even under a generous budget — a fully fresh, well-predicted
        pair is not worth a probe. ``budget_pairs=None`` keeps every
        pair that clears ``min_score``.
        """
        w = self.weights
        n = len(self.fingerprints)
        iu, ju = np.triu_indices(n, k=1)
        measured = self._measured_values(iu, ju)
        unmeasured = np.isnan(measured)
        staleness, failed = self._provenance_features(iu, ju)

        score = w.coverage * unmeasured.astype(float)
        score += w.failure * failed.astype(float)
        # Measured pairs with no provenance history: age unknown, treat
        # as fully stale so matrix-only datasets still refresh.
        stale_term = np.where(np.isnan(staleness), 1.0, staleness)
        stale_term[unmeasured] = 0.0
        score += w.staleness * stale_term

        disagreement_n = 0
        if self._predicted is not None:
            pred = self._predicted[iu, ju]
            comparable = ~unmeasured & ~np.isnan(pred)
            rel = np.zeros(iu.shape)
            denom = np.maximum(measured[comparable], 1e-9)
            rel[comparable] = np.clip(
                np.abs(pred[comparable] - measured[comparable]) / denom, 0.0, 1.0
            )
            score += w.disagreement * rel
            disagreement_n = int(comparable.sum())

        quality_n = 0
        if self._quality is not None:
            qual = self._quality[iu, ju]
            scored = ~unmeasured & ~np.isnan(qual)
            deficit = np.zeros(iu.shape)
            # A pristine pair (quality 1.0) adds nothing; a rotten one
            # (quality 0.0) adds the full weight — refresh it first.
            deficit[scored] = np.clip(1.0 - qual[scored], 0.0, 1.0)
            score += w.quality * deficit
            quality_n = int(scored.sum())

        eligible = score > min_score
        # Deterministic tie-breaking that still spreads equal-score
        # pairs: a tiny seeded jitter, far below any weight step.
        rng = np.random.default_rng(self.seed)
        ranked = score + self.jitter * rng.random(score.shape)
        order = np.argsort(-ranked, kind="stable")
        order = order[eligible[order]]
        if budget_pairs is not None:
            order = order[:budget_pairs]

        pairs = [
            (self.fingerprints[int(iu[k])], self.fingerprints[int(ju[k])])
            for k in order
        ]
        return CampaignPlan(
            pairs=pairs,
            scores=score[order],
            candidates=int(iu.shape[0]),
            budget=budget_pairs,
            breakdown={
                "unmeasured": int(unmeasured.sum()),
                "failed": int(failed.sum()),
                "with_history": int((~np.isnan(staleness)).sum()),
                "with_predictions": disagreement_n,
                "with_quality": quality_n,
            },
        )

    def __repr__(self) -> str:
        return (
            f"CampaignPlanner(relays={len(self.fingerprints)}, "
            f"dataset={'yes' if self.dataset else 'no'}, "
            f"predictions={'yes' if self._predicted is not None else 'no'})"
        )
