"""Ting itself: the paper's primary contribution.

* :class:`MeasurementHost` — the paper's deployment: echo client ``s``,
  echo server ``d``, and two local Tor relays ``w`` and ``z``, all on one
  host ``h``.
* :class:`TingMeasurer` — builds circuits ``(w,x,y,z)``, ``(w,x,z)`` and
  ``(w,y,z)``, probes each through the echo service, applies the minimum
  filter and Equation (4) to estimate R(x, y).
* :class:`StrawmanMeasurer` — the Section 3.2 strawman (Tor circuit plus
  ICMP pings) that Ting supersedes; kept as an evaluated baseline.
* :class:`ForwardingDelayEstimator` — the Section 4.3 per-relay
  forwarding-delay estimation procedure.
* :class:`RttMatrix` / :class:`AllPairsCampaign` — all-pairs datasets and
  the campaign machinery that produces them (plus stability re-measurement
  over simulated days).
"""

from repro.core.measurement_host import MeasurementHost
from repro.core.sampling import (
    AdaptiveSpec,
    ConvergenceTracker,
    SamplePolicy,
    debiased_min_estimate,
    min_estimate,
    convergence_profile,
    samples_to_within,
)
from repro.core.campaign import ProbeBudget
from repro.core.ting import TingMeasurer, TingResult
from repro.core.strawman import StrawmanMeasurer, StrawmanResult
from repro.core.fwd_delay import ForwardingDelayEstimator, ForwardingDelayReport
from repro.core.dataset import RttMatrix
from repro.core.campaign import AllPairsCampaign, StabilityCampaign
from repro.core.parallel import ParallelCampaign, ParallelReport

__all__ = [
    "MeasurementHost",
    "AdaptiveSpec",
    "ConvergenceTracker",
    "ProbeBudget",
    "SamplePolicy",
    "debiased_min_estimate",
    "min_estimate",
    "convergence_profile",
    "samples_to_within",
    "TingMeasurer",
    "TingResult",
    "StrawmanMeasurer",
    "StrawmanResult",
    "ForwardingDelayEstimator",
    "ForwardingDelayReport",
    "RttMatrix",
    "AllPairsCampaign",
    "StabilityCampaign",
    "ParallelCampaign",
    "ParallelReport",
]
