"""The Ting measurement technique (Section 3.3).

To measure R(x, y), Ting builds three circuits from its measurement host
``h`` (running s, d, w, z):

* ``C_xy = (w, x, y, z)`` whose echo RTT is
  ``2R(h,h) + 4F_h + R(h,x) + 2F_x + R(x,y) + 2F_y + R(h,y)``  (Eq. 1)
* ``C_x = (w, x, z)`` giving ``2R(h,h) + 4F_h + 2R(h,x) + 2F_x``  (Eq. 2)
* ``C_y = (w, y, z)`` giving ``2R(h,h) + 4F_h + 2R(h,y) + 2F_y``  (Eq. 3)

Each circuit is probed many times and summarized by its minimum; then

    ``R(x, y)  ≈  R_Cxy − ½ R_Cx − ½ R_Cy``                      (Eq. 4)

with residual error ``F_x + F_y`` — the two relays' minimum forwarding
delays, empirically 0–3 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.measurement_host import MeasurementHost
from repro.core.sampling import SamplePolicy, debiased_min_estimate, min_estimate
from repro.obs import (
    CIRCUIT_BUILD_SPAN,
    LEG_CACHE_HIT,
    LEG_CACHE_MISS,
    LEG_SPAN,
    PAIR_MEASURED,
    PAIR_SPAN,
    PROBE_ROUND_SPAN,
)
from repro.tor.directory import RelayDescriptor
from repro.util.errors import CircuitError, MeasurementError, StreamError
from repro.util.units import Milliseconds


@dataclass
class CircuitMeasurement:
    """Echo samples collected over one circuit.

    ``stopped_early``/``samples_saved``/``stop_reason`` carry the echo
    run's adaptive-stopping outcome (see
    :class:`~repro.core.sampling.AdaptiveSpec`); fixed-policy runs leave
    them at their defaults.
    """

    path: tuple[str, ...]
    samples_ms: list[Milliseconds]
    stopped_early: bool = False
    samples_saved: int = 0
    stop_reason: str | None = None

    @property
    def min_ms(self) -> Milliseconds:
        """The circuit's min-filtered RTT estimate."""
        return min_estimate(self.samples_ms)


@dataclass
class TingResult:
    """The outcome of one Ting pair measurement."""

    x_fingerprint: str
    y_fingerprint: str
    rtt_ms: Milliseconds
    circuit_xy: CircuitMeasurement
    circuit_x: CircuitMeasurement
    circuit_y: CircuitMeasurement
    #: Simulated time the measurement occupied, end to end.
    duration_ms: Milliseconds = 0.0
    policy: SamplePolicy = field(default_factory=SamplePolicy.high_accuracy)

    @property
    def rtt_clamped_ms(self) -> Milliseconds:
        """The estimate clamped at zero (tiny negatives can occur for
        nearly co-located pairs when leg noise exceeds R(x, y))."""
        return max(0.0, self.rtt_ms)

    @property
    def total_probes(self) -> int:
        """Echo probes sent across all three circuits."""
        return (
            len(self.circuit_xy.samples_ms)
            + len(self.circuit_x.samples_ms)
            + len(self.circuit_y.samples_ms)
        )

    @property
    def probes_saved(self) -> int:
        """Probes the adaptive stopping rule avoided, all circuits."""
        return (
            self.circuit_xy.samples_saved
            + self.circuit_x.samples_saved
            + self.circuit_y.samples_saved
        )

    @property
    def stopped_early(self) -> bool:
        """Whether any of the three probe runs converged early."""
        return (
            self.circuit_xy.stopped_early
            or self.circuit_x.stopped_early
            or self.circuit_y.stopped_early
        )


class TingMeasurer:
    """Measures R(x, y) for arbitrary relay pairs from one host.

    ``cache_legs`` reuses each relay's leg measurement (``R_Cx``) across
    pairs — an all-pairs campaign over n relays then needs n leg circuits
    plus C(n,2) pair circuits instead of 3·C(n,2) circuits. The paper's
    validation measures all three circuits per pair; campaigns enable the
    cache.
    """

    def __init__(
        self,
        host: MeasurementHost,
        policy: SamplePolicy | None = None,
        cache_legs: bool = False,
        reuse_circuits: bool = False,
    ) -> None:
        self.host = host
        self.policy = policy or SamplePolicy.high_accuracy()
        self.cache_legs = cache_legs
        #: With ``reuse_circuits``, the x-leg circuit (w, x, z) is carved
        #: out of the just-used pair circuit by TRUNCATE + EXTEND instead
        #: of being built from scratch — one fewer full circuit build per
        #: pair, with identical estimates (protocol surgery moves no
        #: packets through different paths).
        self.reuse_circuits = reuse_circuits
        self._leg_cache: dict[str, CircuitMeasurement] = {}
        self.circuits_built = 0
        self.circuits_reused = 0
        self.probes_sent = 0
        #: Probes an adaptive policy's early stop avoided sending.
        self.probes_saved = 0

    # ------------------------------------------------------------------

    def measure_pair(
        self,
        x: RelayDescriptor | str,
        y: RelayDescriptor | str,
        policy: SamplePolicy | None = None,
    ) -> TingResult:
        """Run the full Ting procedure for the pair (x, y)."""
        policy = policy or self.policy
        x_fp = x.fingerprint if isinstance(x, RelayDescriptor) else x
        y_fp = y.fingerprint if isinstance(y, RelayDescriptor) else y
        if x_fp == y_fp:
            raise MeasurementError("cannot measure a relay against itself")
        w_fp = self.host.relay_w.fingerprint
        z_fp = self.host.relay_z.fingerprint
        if w_fp in (x_fp, y_fp) or z_fp in (x_fp, y_fp):
            raise MeasurementError("cannot measure the local helper relays")

        started = self.host.sim.now
        events = self.host.events
        if events.enabled:
            events.info("ting", "pair_started", x=x_fp, y=y_fp)
        with self.host.spans.span(PAIR_SPAN, x=x_fp, y=y_fp):
            if self.reuse_circuits:
                # The x-leg cache consult happens here (accounted like
                # any other lookup); a miss is satisfied by carving C_x
                # out of the pair circuit instead of a fresh build.
                cached_x = self._leg_cache_lookup(x_fp)
                if cached_x is None:
                    circuit_xy, circuit_x = self._measure_pair_and_leg_with_reuse(
                        x_fp, y_fp, policy
                    )
                    self._leg_cache_store(x_fp, circuit_x)
                else:
                    circuit_xy = self._measure_circuit(
                        (w_fp, x_fp, y_fp, z_fp), policy
                    )
                    circuit_x = cached_x
            else:
                circuit_xy = self._measure_circuit((w_fp, x_fp, y_fp, z_fp), policy)
                circuit_x = self._measure_leg(x_fp, policy)
            circuit_y = self._measure_leg(y_fp, policy)

        # Legs run at the full cap under adaptive policies (for_leg), so
        # only the pair circuit carries the remaining-excess correction.
        cxy = debiased_min_estimate(circuit_xy.samples_ms, policy)
        estimate = cxy - circuit_x.min_ms / 2.0 - circuit_y.min_ms / 2.0
        metrics = self.host.metrics
        if metrics.enabled:
            metrics.inc("ting.pairs_measured")
            metrics.observe("ting.pair_duration_ms", self.host.sim.now - started)
        if self.host.trace.enabled:
            self.host.trace.record(
                self.host.sim.now,
                PAIR_MEASURED,
                x=x_fp,
                y=y_fp,
                rtt_ms=estimate,
                duration_ms=self.host.sim.now - started,
            )
        if events.enabled:
            events.info(
                "ting",
                "pair_measured",
                x=x_fp,
                y=y_fp,
                rtt_ms=round(max(0.0, estimate), 6),
                duration_ms=round(self.host.sim.now - started, 3),
            )
        return TingResult(
            x_fingerprint=x_fp,
            y_fingerprint=y_fp,
            rtt_ms=estimate,
            circuit_xy=circuit_xy,
            circuit_x=circuit_x,
            circuit_y=circuit_y,
            duration_ms=self.host.sim.now - started,
            policy=policy,
        )

    def measure_leg(
        self, x: RelayDescriptor | str, policy: SamplePolicy | None = None
    ) -> CircuitMeasurement:
        """Measure just ``R_Cx`` — the (w, x, z) circuit — for one relay."""
        x_fp = x.fingerprint if isinstance(x, RelayDescriptor) else x
        return self._measure_leg(x_fp, policy or self.policy)

    def leg_is_cached(self, x: RelayDescriptor | str) -> bool:
        """Whether ``R_Cx`` for this relay would come from the leg cache.

        Provenance recorders ask *before* measuring so they can count
        cache hits per pair without re-deriving cache policy.
        """
        x_fp = x.fingerprint if isinstance(x, RelayDescriptor) else x
        return self.cache_legs and x_fp in self._leg_cache

    def _leg_cache_lookup(self, x_fp: str) -> CircuitMeasurement | None:
        """Consult the shared leg cache — the *single* accounting point.

        Every call with caching enabled is exactly one lookup, counted
        as either a hit or a miss, so ``ting.leg_cache_lookups ==
        ting.leg_cache_hits + ting.leg_cache_misses`` holds whichever
        measurement path (fresh build or circuit-reuse surgery) ends up
        satisfying a miss. With caching disabled nothing is counted:
        there is no cache to consult.
        """
        if not self.cache_legs:
            return None
        metrics = self.host.metrics
        metrics.inc("ting.leg_cache_lookups")
        cached = self._leg_cache.get(x_fp)
        if cached is not None:
            metrics.inc("ting.leg_cache_hits")
            if self.host.trace.enabled:
                self.host.trace.record(
                    self.host.sim.now, LEG_CACHE_HIT, relay=x_fp
                )
            return cached
        metrics.inc("ting.leg_cache_misses")
        if self.host.trace.enabled:
            self.host.trace.record(
                self.host.sim.now, LEG_CACHE_MISS, relay=x_fp
            )
        return None

    def _leg_cache_store(self, x_fp: str, measurement: CircuitMeasurement) -> None:
        """Fill the cache after a miss; the miss was counted at lookup."""
        if self.cache_legs:
            self._leg_cache[x_fp] = measurement

    def _measure_leg(self, x_fp: str, policy: SamplePolicy) -> CircuitMeasurement:
        cached = self._leg_cache_lookup(x_fp)
        if cached is not None:
            # No span on a cache hit: nothing occupies simulated time.
            return cached
        with self.host.spans.span(LEG_SPAN, relay=x_fp):
            measurement = self._measure_circuit(
                (self.host.relay_w.fingerprint, x_fp, self.host.relay_z.fingerprint),
                # Leg estimates are shared across pairs; adaptive
                # policies run them at the full cap (see
                # SamplePolicy.for_leg).
                policy.for_leg(),
            )
        self._leg_cache_store(x_fp, measurement)
        return measurement

    def measure_pair_circuit(
        self,
        x: RelayDescriptor | str,
        y: RelayDescriptor | str,
        policy: SamplePolicy | None = None,
    ) -> CircuitMeasurement:
        """Measure only the full circuit ``C_xy = (w, x, y, z)``.

        Used by the sample-convergence analysis (Section 4.4), which
        studies raw sample traces rather than the Eq. 4 estimate.
        """
        x_fp = x.fingerprint if isinstance(x, RelayDescriptor) else x
        y_fp = y.fingerprint if isinstance(y, RelayDescriptor) else y
        return self._measure_circuit(
            (
                self.host.relay_w.fingerprint,
                x_fp,
                y_fp,
                self.host.relay_z.fingerprint,
            ),
            policy or self.policy,
        )

    def invalidate_leg_cache(self) -> None:
        """Drop cached leg measurements (e.g. after simulated hours pass)."""
        self._leg_cache.clear()

    # ------------------------------------------------------------------

    def _measure_pair_and_leg_with_reuse(
        self, x_fp: str, y_fp: str, policy: SamplePolicy
    ) -> tuple[CircuitMeasurement, CircuitMeasurement]:
        """Measure C_xy, then carve C_x out of it by TRUNCATE + EXTEND."""
        controller = self.host.controller
        w_fp = self.host.relay_w.fingerprint
        z_fp = self.host.relay_z.fingerprint
        with self.host.spans.span(CIRCUIT_BUILD_SPAN, hops=4):
            try:
                circuit = controller.build_circuit([w_fp, x_fp, y_fp, z_fp])
            except CircuitError as exc:
                raise MeasurementError(
                    f"could not build circuit {w_fp}->{x_fp}->{y_fp}->{z_fp}: {exc}"
                ) from exc
        self.circuits_built += 1
        try:
            probed_xy = self._probe_circuit(circuit, policy)
            # Keep (w, x); drop (y, z); splice z back on.
            try:
                controller.truncate_circuit(circuit, to_hop=1)
                controller.extend_circuit(circuit, [z_fp])
            except CircuitError as exc:
                raise MeasurementError(
                    f"circuit reuse surgery failed for {x_fp}: {exc}"
                ) from exc
            self.circuits_reused += 1
            probed_x = self._probe_circuit(circuit, policy.for_leg())
        finally:
            controller.close_circuit(circuit)
        return (
            CircuitMeasurement(
                path=(w_fp, x_fp, y_fp, z_fp),
                samples_ms=probed_xy.rtts_ms,
                stopped_early=probed_xy.stopped_early,
                samples_saved=probed_xy.samples_saved,
                stop_reason=probed_xy.stop_reason,
            ),
            CircuitMeasurement(
                path=(w_fp, x_fp, z_fp),
                samples_ms=probed_x.rtts_ms,
                stopped_early=probed_x.stopped_early,
                samples_saved=probed_x.samples_saved,
                stop_reason=probed_x.stop_reason,
            ),
        )

    def _probe_stream(self, stream, policy: SamplePolicy):
        """Run one echo probe round over an attached stream.

        The stream is closed on every exit path: ``EchoClient.probe``
        raises on zero-reply runs (deadline, stream death, circuit
        teardown), and before this lived in a ``finally`` the failed
        round leaked its stream into ``circuit.streams`` for the rest of
        the circuit's life.
        """
        spec = policy.adaptive
        attrs = {"samples": policy.samples}
        if spec is not None:
            attrs["adaptive"] = spec.tolerance_label
        try:
            with self.host.spans.span(PROBE_ROUND_SPAN, **attrs):
                result = self.host.echo_client.probe(
                    stream,
                    samples=policy.samples,
                    interval_ms=policy.interval_ms,
                    timeout_ms=policy.timeout_ms,
                    adaptive=spec,
                )
        finally:
            stream.close()
        self.probes_sent += result.sent
        if result.samples_saved:
            self.probes_saved += result.samples_saved
            self.host.metrics.inc("ting.probes_saved", result.samples_saved)
        return result

    def _probe_circuit(self, circuit, policy: SamplePolicy):
        controller = self.host.controller
        try:
            stream = controller.open_stream(
                circuit, self.host.echo_address, self.host.echo_port
            )
        except StreamError as exc:
            raise MeasurementError(
                f"could not attach echo stream on reused circuit: {exc}"
            ) from exc
        return self._probe_stream(stream, policy)

    def _measure_circuit(
        self, path: tuple[str, ...], policy: SamplePolicy
    ) -> CircuitMeasurement:
        controller = self.host.controller
        with self.host.spans.span(CIRCUIT_BUILD_SPAN, hops=len(path)):
            try:
                circuit = controller.build_circuit(list(path))
            except CircuitError as exc:
                raise MeasurementError(
                    f"could not build circuit {'->'.join(path)}: {exc}"
                ) from exc
        self.circuits_built += 1
        try:
            try:
                stream = controller.open_stream(
                    circuit, self.host.echo_address, self.host.echo_port
                )
            except StreamError as exc:
                raise MeasurementError(
                    f"could not attach echo stream on {'->'.join(path)}: {exc}"
                ) from exc
            result = self._probe_stream(stream, policy)
        finally:
            controller.close_circuit(circuit)
        return CircuitMeasurement(
            path=path,
            samples_ms=result.rtts_ms,
            stopped_early=result.stopped_early,
            samples_saved=result.samples_saved,
            stop_reason=result.stop_reason,
        )
