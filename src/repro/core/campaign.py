"""Measurement campaigns: all-pairs matrices and stability tracking.

:class:`AllPairsCampaign` measures every pair in a relay set (in
randomized order, as the paper's validation did) and assembles an
:class:`~repro.core.dataset.RttMatrix`. With leg caching the campaign
needs one leg circuit per relay plus one pair circuit per pair.

:class:`StabilityCampaign` re-measures a fixed pair set on a schedule
("once an hour over the course of a week", Section 4.6) and reports the
per-pair time series that Figures 9 and 10 summarize.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.dataset import PairProvenance, RttMatrix
from repro.core.sampling import SamplePolicy
from repro.core.ting import TingMeasurer, TingResult
from repro.obs import (
    CAMPAIGN_SPAN,
    NULL_EVENTS,
    PAIR_FAILED,
    RETRY_ROUND,
    EventBus,
    categorize_failure,
)
from repro.tor.directory import RelayDescriptor
from repro.util.errors import MeasurementError
from repro.util.units import Milliseconds


@dataclass
class ProbeBudget:
    """A campaign-wide cap on echo probes, spent task by task.

    DiProber (arXiv:2211.16751) frames relay probing as an
    estimation-budget problem; this is the campaign-level version of
    that idea. Rather than aborting when probes run out, the budget
    *degrades gracefully*: as the remaining fraction crosses 50% / 25% /
    10%, :meth:`policy_for` hands out policies with a widened adaptive
    tolerance (×2 / ×4 / ×8) and a shrunken sample cap (×½ / ×¼ / down
    to ``min_samples``), trading accuracy for coverage so the matrix
    still completes. Fixed policies degrade by sample count alone.

    Campaigns call :meth:`policy_for` at each task launch and
    :meth:`spend` with the probes a task actually sent, so early-stopped
    runs stretch the budget further. Spend order makes degraded tasks
    depend on campaign history — a budgeted campaign is deterministic,
    but it is *not* shard-invariant (``ShardedCampaign`` therefore does
    not take one).
    """

    total: int
    spent: int = 0
    #: Tasks launched with a degraded policy, for reporting.
    degraded_tasks: int = 0
    #: Live telemetry channel; campaigns wire their host's bus in so
    #: tier transitions surface as ``campaign``/``budget_degraded``.
    events: EventBus = field(default=NULL_EVENTS, repr=False, compare=False)

    #: (remaining-fraction floor, tolerance factor, sample-cap factor).
    #: The last tier's floor is below any reachable fraction so an
    #: exhausted budget still resolves to the cheapest policy.
    TIERS: tuple[tuple[float, float, float], ...] = (
        (0.50, 1.0, 1.0),
        (0.25, 2.0, 0.50),
        (0.10, 4.0, 0.25),
        (-1.0, 8.0, 0.0),
    )

    def __post_init__(self) -> None:
        if self.total < 1:
            raise MeasurementError("probe budget must be >= 1")
        # The tier the previous launch resolved to; transitions emit.
        self._last_tier = 0

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.spent)

    @property
    def remaining_fraction(self) -> float:
        return self.remaining / self.total

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.total

    def spend(self, probes: int) -> None:
        """Record probes actually sent by one finished task."""
        self.spent += probes

    def policy_for(self, policy: SamplePolicy) -> SamplePolicy:
        """The policy the next task should launch with, given what is
        left. Above half budget the policy passes through untouched."""
        fraction = self.remaining_fraction
        tier, tolerance_factor, cap_factor = 0, 1.0, 1.0
        for index, (floor, tol, cap) in enumerate(self.TIERS):
            if fraction > floor:
                tier, tolerance_factor, cap_factor = index, tol, cap
                break
        if tier != self._last_tier:
            self._last_tier = tier
            if self.events.enabled:
                self.events.warning(
                    "campaign",
                    "budget_degraded",
                    tier=tier,
                    remaining_fraction=round(fraction, 4),
                    tolerance_factor=tolerance_factor,
                    cap_factor=cap_factor,
                )
        if tolerance_factor == 1.0 and cap_factor == 1.0:
            return policy
        self.degraded_tasks += 1
        spec = policy.adaptive
        if spec is None:
            return replace(policy, samples=max(1, int(policy.samples * cap_factor)))
        samples = max(spec.min_samples, int(policy.samples * cap_factor))
        degraded = replace(
            spec,
            absolute_ms=(
                None if spec.absolute_ms is None
                else spec.absolute_ms * tolerance_factor
            ),
            relative=(
                None if spec.relative is None
                else spec.relative * tolerance_factor
            ),
        )
        return replace(policy, samples=samples, adaptive=degraded)


def _success_provenance(
    result: TingResult,
    cached_x: bool,
    cached_y: bool,
    retries: int,
) -> PairProvenance:
    """Build the provenance record for one successfully measured pair.

    ``samples_requested`` counts the probes the policy asked for over
    the circuits actually probed (a cached leg is not re-probed);
    ``samples_kept`` counts the replies that survived to feed the
    min-filter.
    """
    circuits_probed = 1 + (0 if cached_x else 1) + (0 if cached_y else 1)
    saved = result.circuit_xy.samples_saved
    if not cached_x:
        saved += result.circuit_x.samples_saved
    if not cached_y:
        saved += result.circuit_y.samples_saved
    return PairProvenance(
        x=result.x_fingerprint,
        y=result.y_fingerprint,
        status="measured",
        rtt_ms=result.rtt_clamped_ms,
        cxy_ms=result.circuit_xy.min_ms,
        leg_x_ms=result.circuit_x.min_ms,
        leg_y_ms=result.circuit_y.min_ms,
        samples_requested=result.policy.samples * circuits_probed,
        samples_kept=result.total_probes,
        samples_saved=saved,
        stop_reason=result.circuit_xy.stop_reason,
        leg_cache_hits=int(cached_x) + int(cached_y),
        retries=retries,
        duration_ms=result.duration_ms,
    )


@dataclass
class CampaignReport:
    """Bookkeeping for one all-pairs run.

    ``failures`` holds the *surviving* failure records — pairs still
    unmeasured once every retry round has run. ``failures_total`` counts
    every failed attempt across all rounds; it only grows, and it is the
    quantity the ``max_failures`` abort threshold is checked against (a
    retried pair must not reset the budget).
    """

    matrix: RttMatrix
    pairs_attempted: int = 0
    pairs_measured: int = 0
    failures: list[tuple[str, str, str]] = field(default_factory=list)
    failures_total: int = 0
    duration_ms: Milliseconds = 0.0
    #: Echo probes actually sent / avoided by early stopping, this run.
    probes_sent: int = 0
    probes_saved: int = 0


class AllPairsCampaign:
    """Measures all pairs among ``relays`` with one Ting measurer."""

    def __init__(
        self,
        measurer: TingMeasurer,
        relays: list[RelayDescriptor],
        policy: SamplePolicy | None = None,
        rng: np.random.Generator | None = None,
        max_failures: int | None = None,
        retries: int = 0,
        retry_delay_ms: Milliseconds = 60_000.0,
        budget: ProbeBudget | None = None,
    ) -> None:
        if len(relays) < 2:
            raise MeasurementError("need at least two relays for a campaign")
        fingerprints = [r.fingerprint for r in relays]
        if len(set(fingerprints)) != len(fingerprints):
            raise MeasurementError("duplicate relays in campaign set")
        if retries < 0:
            raise MeasurementError("retries must be non-negative")
        self.measurer = measurer
        self.relays = list(relays)
        self.policy = policy or measurer.policy
        #: Optional campaign-wide probe cap; see :class:`ProbeBudget`.
        self.budget = budget
        self._rng = rng
        self.max_failures = max_failures
        #: Failed pairs are re-attempted up to ``retries`` extra rounds,
        #: ``retry_delay_ms`` apart — relays on a churning network are
        #: often back within minutes.
        self.retries = retries
        self.retry_delay_ms = retry_delay_ms
        #: Attempts made per pair this run, for provenance ``retries``.
        self._attempts: dict[tuple[str, str], int] = {}

    def run(self) -> CampaignReport:
        """Measure every pair; failed pairs are recorded, not fatal."""
        matrix = RttMatrix([r.fingerprint for r in self.relays])
        report = CampaignReport(matrix=matrix)
        host = self.measurer.host
        started = host.sim.now
        probes_sent_before = self.measurer.probes_sent
        probes_saved_before = self.measurer.probes_saved
        self._attempts = {}

        pairs = [
            (a, b)
            for i, a in enumerate(self.relays)
            for b in self.relays[i + 1 :]
        ]
        if self._rng is not None:
            order = self._rng.permutation(len(pairs))
            pairs = [pairs[i] for i in order]

        events = host.events
        if events.enabled:
            events.info(
                "shard",
                "campaign_started",
                relays=len(self.relays),
                pairs=len(pairs),
            )
        if self.budget is not None:
            self.budget.events = events

        with host.spans.span(
            CAMPAIGN_SPAN, relays=len(self.relays), pairs=len(pairs)
        ):
            failed = self._measure_round(pairs, matrix, report)
            for round_index in range(self.retries):
                if not failed:
                    break
                sim = host.sim
                host.metrics.inc("campaign.retry_rounds")
                if host.trace.enabled:
                    host.trace.record(
                        sim.now,
                        RETRY_ROUND,
                        round=round_index + 1,
                        pending_pairs=len(failed),
                    )
                if events.enabled:
                    events.warning(
                        "campaign",
                        "retry_round",
                        round=round_index + 1,
                        pending_pairs=len(failed),
                    )
                sim.run(until=sim.now + self.retry_delay_ms)
                # Leg conditions may have changed while relays were down.
                self.measurer.invalidate_leg_cache()
                report.failures = [
                    f
                    for f in report.failures
                    if (f[0], f[1])
                    not in {(a.fingerprint, b.fingerprint) for a, b in failed}
                ]
                failed = self._measure_round(failed, matrix, report)

        if host.provenance is not None:
            # Pairs still failed after every retry round get one final
            # record each; measured pairs were recorded as they landed.
            for x_fp, y_fp, reason in report.failures:
                attempts = self._attempts.get((x_fp, y_fp), 1)
                host.provenance.add(
                    PairProvenance(
                        x=x_fp,
                        y=y_fp,
                        status="failed",
                        retries=max(0, attempts - 1),
                        failure_category=categorize_failure(reason),
                        reason=reason,
                    )
                )

        report.duration_ms = host.sim.now - started
        report.probes_sent = self.measurer.probes_sent - probes_sent_before
        report.probes_saved = self.measurer.probes_saved - probes_saved_before
        if events.enabled:
            events.info(
                "shard",
                "campaign_finished",
                measured=report.pairs_measured,
                failed=len(report.failures),
                duration_ms=round(report.duration_ms, 3),
            )
        return report

    def _measure_round(
        self,
        pairs: list[tuple[RelayDescriptor, RelayDescriptor]],
        matrix: RttMatrix,
        report: CampaignReport,
    ) -> list[tuple[RelayDescriptor, RelayDescriptor]]:
        failed: list[tuple[RelayDescriptor, RelayDescriptor]] = []
        host = self.measurer.host
        for a, b in pairs:
            report.pairs_attempted += 1
            key = (a.fingerprint, b.fingerprint)
            self._attempts[key] = self._attempts.get(key, 0) + 1
            cached_x = self.measurer.leg_is_cached(a)
            cached_y = self.measurer.leg_is_cached(b)
            # Budgeted campaigns re-resolve the policy at every launch so
            # tolerance degrades as the remaining budget shrinks.
            policy = (
                self.policy
                if self.budget is None
                else self.budget.policy_for(self.policy)
            )
            sent_before = self.measurer.probes_sent
            try:
                result = self.measurer.measure_pair(a, b, policy=policy)
            except MeasurementError as exc:
                if self.budget is not None:
                    self.budget.spend(self.measurer.probes_sent - sent_before)
                reason = str(exc)
                report.failures.append((a.fingerprint, b.fingerprint, reason))
                report.failures_total += 1
                host.metrics.inc(
                    f"campaign.failures.{categorize_failure(reason, host.metrics)}"
                )
                if host.trace.enabled:
                    host.trace.record(
                        host.sim.now,
                        PAIR_FAILED,
                        x=a.fingerprint,
                        y=b.fingerprint,
                        reason=reason,
                    )
                if host.events.enabled:
                    host.events.warning(
                        "campaign",
                        "pair_failed",
                        x=a.fingerprint,
                        y=b.fingerprint,
                        reason=reason,
                    )
                failed.append((a, b))
                # The abort budget is cumulative across retry rounds:
                # report.failures is pruned before each retry, so its
                # length must not gate the threshold.
                if (
                    self.max_failures is not None
                    and report.failures_total > self.max_failures
                ):
                    raise MeasurementError(
                        f"campaign aborted after {report.failures_total} failures"
                    ) from exc
                continue
            if self.budget is not None:
                self.budget.spend(self.measurer.probes_sent - sent_before)
            matrix.set(a.fingerprint, b.fingerprint, result.rtt_clamped_ms)
            report.pairs_measured += 1
            if host.provenance is not None:
                host.provenance.add(
                    _success_provenance(
                        result,
                        cached_x=cached_x,
                        cached_y=cached_y,
                        retries=self._attempts[key] - 1,
                    )
                )
        return failed


@dataclass
class PairTimeSeries:
    """Repeated measurements of one pair over simulated time."""

    x_fingerprint: str
    y_fingerprint: str
    times_ms: list[Milliseconds] = field(default_factory=list)
    rtts_ms: list[Milliseconds] = field(default_factory=list)

    def coefficient_of_variation(self) -> float:
        """c_v = σ/μ over the series (Figure 9's metric)."""
        if len(self.rtts_ms) < 2:
            raise MeasurementError("need at least two measurements for c_v")
        values = np.asarray(self.rtts_ms)
        mean = values.mean()
        if mean == 0:
            return 0.0
        return float(values.std(ddof=0) / mean)

    def box_stats(self) -> dict[str, float]:
        """Median/quartiles/whiskers for Figure 10's box plots."""
        values = np.asarray(self.rtts_ms)
        if values.size == 0:
            raise MeasurementError("empty series")
        q1, median, q3 = np.percentile(values, [25, 50, 75])
        iqr = q3 - q1
        in_whisker = values[(values >= q1 - 1.5 * iqr) & (values <= q3 + 1.5 * iqr)]
        return {
            "median": float(median),
            "q1": float(q1),
            "q3": float(q3),
            "whisker_low": float(in_whisker.min()),
            "whisker_high": float(in_whisker.max()),
            "outliers": int(values.size - in_whisker.size),
        }


class StabilityCampaign:
    """Re-measures a pair set once per interval over a duration."""

    def __init__(
        self,
        measurer: TingMeasurer,
        pairs: list[tuple[RelayDescriptor, RelayDescriptor]],
        interval_ms: Milliseconds = 3_600_000.0,  # hourly
        rounds: int = 168,  # one week of hours
        policy: SamplePolicy | None = None,
    ) -> None:
        if not pairs:
            raise MeasurementError("need at least one pair")
        if rounds < 2:
            raise MeasurementError("need at least two rounds for stability")
        self.measurer = measurer
        self.pairs = list(pairs)
        self.interval_ms = interval_ms
        self.rounds = rounds
        self.policy = policy or measurer.policy

    def run(self) -> list[PairTimeSeries]:
        """Execute all rounds, advancing simulated time between them."""
        series = [
            PairTimeSeries(x.fingerprint, y.fingerprint) for x, y in self.pairs
        ]
        sim = self.measurer.host.sim
        epoch = sim.now
        for round_index in range(self.rounds):
            round_start = epoch + round_index * self.interval_ms
            if sim.now < round_start:
                sim.run(until=round_start)
            # Leg RTTs may drift between rounds; never reuse stale legs.
            self.measurer.invalidate_leg_cache()
            for (x, y), record in zip(self.pairs, series):
                try:
                    result = self.measurer.measure_pair(x, y, policy=self.policy)
                except MeasurementError:
                    continue  # pair temporarily unmeasurable this round
                record.times_ms.append(sim.now)
                record.rtts_ms.append(result.rtt_clamped_ms)
        return series
