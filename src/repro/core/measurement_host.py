"""The Ting measurement deployment: s, d, w, z on one host.

Section 3.3: "we simply run all four processes on the same host h: the
echo client and server (s and d) and both of our Tor nodes (w and z)."
Here the four processes are four simulated hosts sharing one /24 (so the
latency engine treats traffic among them as loopback), attached to the
same PoP.

``z`` gets the paper's restrictive exit policy: it only exits to the echo
server's address, so Ting never exits to anyone else's machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataset import ProvenanceLog
from repro.echo.client import EchoClient
from repro.echo.server import DEFAULT_ECHO_PORT, EchoServer
from repro.netsim.engine import Simulator
from repro.obs import (
    NULL_EVENTS,
    NULL_METRICS,
    NULL_SPANS,
    NULL_TRACE,
    EventBus,
    MetricsRegistry,
    SpanTracer,
    TraceLog,
)
from repro.netsim.topology import Host, Topology, TopologyBuilder
from repro.netsim.transport import NetworkFabric
from repro.tor.client import OnionProxy
from repro.tor.control import Controller
from repro.netsim.policies import NEUTRAL_POLICY
from repro.tor.directory import Consensus, ExitPolicy
from repro.tor.relay import ForwardingDelayModel, Relay
from repro.util.rng import RandomStreams


@dataclass
class MeasurementHost:
    """Bundle of the four co-located measurement processes plus plumbing."""

    sim: Simulator
    fabric: NetworkFabric
    topology: Topology
    echo_client_host: Host  # s
    echo_server_host: Host  # d
    relay_w: Relay
    relay_z: Relay
    echo_server: EchoServer
    echo_client: EchoClient
    proxy: OnionProxy
    controller: Controller
    #: Observability sinks shared by every component of this deployment;
    #: no-ops until :meth:`enable_observability` wires live ones in.
    metrics: MetricsRegistry = NULL_METRICS
    trace: TraceLog = NULL_TRACE
    spans: SpanTracer = NULL_SPANS
    #: Live telemetry bus; a no-op until :meth:`enable_events` (or
    #: :meth:`enable_observability`) wires a live one through the stack.
    events: EventBus = NULL_EVENTS
    #: Per-pair provenance; ``None`` until observability is enabled.
    provenance: ProvenanceLog | None = None

    @classmethod
    def deploy(
        cls,
        sim: Simulator,
        fabric: NetworkFabric,
        topology: Topology,
        builder: TopologyBuilder,
        consensus: Consensus,
        pop_id: int,
        streams: RandomStreams,
        name_prefix: str = "ting",
        or_port_w: int = 9001,
        or_port_z: int = 9002,
        echo_port: int = DEFAULT_ECHO_PORT,
    ) -> "MeasurementHost":
        """Stand up s, d, w, z in one fresh /24 attached to ``pop_id``.

        The local relays stay out of the published consensus (the paper's
        ``PublishDescriptors 0`` mode); the proxy's view is the given
        consensus *plus* the two private descriptors.
        """
        network = builder.allocator.new_network()
        host_s = builder.attach_random_host(
            topology, f"{name_prefix}-s", pop_id, "university", network=network
        )
        host_d = builder.attach_random_host(
            topology, f"{name_prefix}-d", pop_id, "university", network=network
        )
        host_w = builder.attach_random_host(
            topology, f"{name_prefix}-w", pop_id, "university", network=network
        )
        host_z = builder.attach_random_host(
            topology, f"{name_prefix}-z", pop_id, "university", network=network
        )
        # The experimenters control the measurement host's network: it
        # treats all traffic classes identically.
        for host in (host_s, host_d, host_w, host_z):
            host.policy = NEUTRAL_POLICY

        local_rng = streams.get(f"{name_prefix}.local-relays")
        relay_w = Relay(
            sim,
            fabric,
            topology,
            host_w,
            f"{name_prefix}W",
            or_port=or_port_w,
            exit_policy=ExitPolicy.reject_all(),
            forwarding_model=ForwardingDelayModel.quiet(local_rng),
        )
        relay_z = Relay(
            sim,
            fabric,
            topology,
            host_z,
            f"{name_prefix}Z",
            or_port=or_port_z,
            exit_policy=ExitPolicy.accept_only(host_d.address),
            forwarding_model=ForwardingDelayModel.quiet(local_rng),
        )

        echo_server = EchoServer(fabric, host_d, port=echo_port)
        proxy = OnionProxy(
            sim,
            fabric,
            topology,
            host_s,
            consensus.with_private_relays(relay_w.descriptor(), relay_z.descriptor()),
        )
        return cls(
            sim=sim,
            fabric=fabric,
            topology=topology,
            echo_client_host=host_s,
            echo_server_host=host_d,
            relay_w=relay_w,
            relay_z=relay_z,
            echo_server=echo_server,
            echo_client=EchoClient(sim),
            proxy=proxy,
            controller=Controller(proxy),
        )

    def enable_observability(
        self,
        metrics: MetricsRegistry | None = None,
        trace: TraceLog | None = None,
        spans: SpanTracer | None = None,
        events: EventBus | None = None,
    ) -> MetricsRegistry:
        """Wire one live registry and trace log through the whole stack.

        Attaches to the simulator, the onion proxy, the echo client, and
        the two helper relays (w, z); measurers and campaigns built on
        this host pick the sinks up via ``host.metrics`` / ``host.trace``.
        Also installs a :class:`SpanTracer` ticking on the simulated
        clock, a fresh :class:`ProvenanceLog`, and a live
        :class:`EventBus` (via :meth:`enable_events`), so instrumented
        campaigns record interval, per-pair, and live-telemetry data
        without further setup. Returns the registry so callers can
        snapshot it.
        """
        registry = metrics if metrics is not None else MetricsRegistry()
        log = trace if trace is not None else TraceLog()
        self.metrics = registry
        self.trace = log
        self.spans = spans if spans is not None else SpanTracer(
            clock=lambda: self.sim.now
        )
        self.provenance = ProvenanceLog()
        if events is not None or not self.events.enabled:
            self.enable_events(events)
        self.sim.metrics = registry
        self.sim.trace = log
        self.proxy.metrics = registry
        self.proxy.trace = log
        self.echo_client.metrics = registry
        self.echo_client.trace = log
        self.relay_w.metrics = registry
        self.relay_z.metrics = registry
        # Pre-declare the headline counters so a snapshot reports zeros
        # for paths that never ran instead of omitting the keys.
        for name in (
            "tor.circuits_built",
            "tor.circuits_failed",
            "tor.streams_attached",
            "tor.stream_failures",
            "echo.probes_sent",
            "echo.probes_received",
            "echo.probes_lost",
            "echo.early_stops",
            "echo.probes_saved",
            "ting.leg_cache_lookups",
            "ting.leg_cache_hits",
            "ting.leg_cache_misses",
            "ting.probes_saved",
            "sim.heap_compactions",
            "campaign.task_isolations",
        ):
            registry.inc(name, 0)
        return registry

    def enable_events(self, bus: EventBus | None = None) -> EventBus:
        """Wire one live :class:`EventBus` through the whole stack.

        Independent of :meth:`enable_observability` — live telemetry
        (heartbeats, the flight recorder, streamed worker events) works
        without paying for metrics/trace/span recording, which is how
        ``ShardedCampaign`` keeps its telemetry path cheap when
        ``observe=False``. Returns the bus so callers can attach sinks.
        """
        live = bus if bus is not None else EventBus(clock=lambda: self.sim.now)
        self.events = live
        self.sim.events = live
        self.echo_client.events = live
        self.relay_w.events = live
        self.relay_z.events = live
        return live

    def refresh_consensus(self, consensus: Consensus) -> None:
        """Install a new network consensus, keeping w and z hard-coded."""
        self.proxy.set_consensus(
            consensus.with_private_relays(
                self.relay_w.descriptor(), self.relay_z.descriptor()
            )
        )

    @property
    def echo_address(self) -> str:
        """Where circuits must exit to reach the echo server."""
        return self.echo_server_host.address

    @property
    def echo_port(self) -> int:
        """The echo server's listening port."""
        return self.echo_server.port
