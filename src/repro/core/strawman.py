"""The Section 3.2 strawman: mix a Tor circuit with ICMP pings.

The King-style approach the paper rejects:

1. Build circuit ``C = (x, y)`` from s, attach a connection to d, and
   measure ``R_C(s,d) = R(s,x) + R(x,y) + R(y,d)``.
2. Ping x from s and y from d (ICMP).
3. Estimate ``R(x,y) = R_C − ping(s,x) − ping(y,d)``.

It fails for two reasons the paper identifies, both reproduced by the
simulator: networks treat ICMP and Tor-class traffic differently (so the
pinged path is *not* a sub-path cost of the Tor path), and the circuit
measurement retains x's and y's forwarding delays uncorrected.

Kept as an implemented, evaluated baseline for the
``test_sec32_strawman`` bench and the ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.measurement_host import MeasurementHost
from repro.core.sampling import SamplePolicy, min_estimate
from repro.netsim.transport import IcmpPinger
from repro.tor.directory import RelayDescriptor
from repro.util.errors import CircuitError, MeasurementError, StreamError
from repro.util.units import Milliseconds


@dataclass
class StrawmanResult:
    """Outcome of one strawman pair measurement."""

    x_fingerprint: str
    y_fingerprint: str
    rtt_ms: Milliseconds
    circuit_rtt_ms: Milliseconds
    ping_x_ms: Milliseconds
    ping_y_ms: Milliseconds


class StrawmanMeasurer:
    """Estimates R(x, y) by subtracting pings from a 2-hop circuit RTT."""

    def __init__(
        self,
        host: MeasurementHost,
        policy: SamplePolicy | None = None,
        ping_count: int = 100,
    ) -> None:
        self.host = host
        self.policy = policy or SamplePolicy.high_accuracy()
        self.ping_count = ping_count
        self._pinger = IcmpPinger(host.fabric, host.echo_client_host)

    def measure_pair(
        self, x: RelayDescriptor | str, y: RelayDescriptor | str
    ) -> StrawmanResult:
        """Run the strawman procedure for the pair (x, y).

        Requires y's exit policy to allow the echo server (true on the
        validation testbed, where relays exit only to our hosts — and the
        reason the strawman can't even run against most live relays).
        """
        consensus = self.host.proxy.consensus
        x_desc = x if isinstance(x, RelayDescriptor) else consensus.get(x)
        y_desc = y if isinstance(y, RelayDescriptor) else consensus.get(y)
        if x_desc.fingerprint == y_desc.fingerprint:
            raise MeasurementError("cannot measure a relay against itself")
        if not y_desc.exit_policy.allows(self.host.echo_address, self.host.echo_port):
            raise MeasurementError(
                f"{y_desc.nickname} will not exit to the echo server; "
                "the strawman cannot measure this pair"
            )

        circuit_rtt = self._measure_circuit(x_desc, y_desc)
        ping_x = self._ping(x_desc)
        ping_y = self._ping(y_desc)
        estimate = circuit_rtt - ping_x - ping_y
        return StrawmanResult(
            x_fingerprint=x_desc.fingerprint,
            y_fingerprint=y_desc.fingerprint,
            rtt_ms=estimate,
            circuit_rtt_ms=circuit_rtt,
            ping_x_ms=ping_x,
            ping_y_ms=ping_y,
        )

    def _measure_circuit(
        self, x_desc: RelayDescriptor, y_desc: RelayDescriptor
    ) -> Milliseconds:
        controller = self.host.controller
        try:
            circuit = controller.build_circuit([x_desc, y_desc])
        except CircuitError as exc:
            raise MeasurementError(f"strawman circuit failed: {exc}") from exc
        try:
            try:
                stream = controller.open_stream(
                    circuit, self.host.echo_address, self.host.echo_port
                )
            except StreamError as exc:
                raise MeasurementError(f"strawman stream failed: {exc}") from exc
            result = self.host.echo_client.probe(
                stream,
                samples=self.policy.samples,
                interval_ms=self.policy.interval_ms,
                timeout_ms=self.policy.timeout_ms,
            )
            stream.close()
        finally:
            controller.close_circuit(circuit)
        return min_estimate(result.rtts_ms)

    def _ping(self, descriptor: RelayDescriptor) -> Milliseconds:
        target = self.host.topology.host_by_address(descriptor.address)
        return self._pinger.measure_min_rtt(target, count=self.ping_count)
