"""Sharded all-pairs campaigns: leg phase + work-stealing workers.

A single :class:`~repro.core.parallel.ParallelCampaign` is bound to one
Python process; an all-pairs matrix over hundreds of relays is hours of
single-core event processing. The pair measurements are embarrassingly
parallel, so :class:`ShardedCampaign` spreads them across forked worker
processes — but naively sharding the *whole* campaign duplicates work:
each of W workers would rebuild the leg circuit R_Cx for every relay its
pair shard touches, measuring most legs W times and burning O(W·n) leg
circuits where the Ting decomposition needs exactly n.

Version 2 of the engine splits the campaign into two phases:

1. **Leg phase** (parent process, before any fork). One
   :class:`~repro.core.parallel.ParallelCampaign` with ``pairs=[]`` and
   ``legs=<pair-touched fingerprints>`` measures every needed relay's
   R_Cx exactly once (all relays for an all-pairs campaign; only the
   relays the pair list references for a planner-budgeted one),
   under the same task isolation as everything else. The resulting
   estimate cache (and any leg failures) ships to every worker read-only
   — via fork copy-on-write, never re-pickled — and leg provenance is
   attributed to the phase itself (``shard=None`` / :data:`LEG_PHASE`),
   not to whichever worker would have rebuilt it first.

2. **Pair phase** (work stealing). The pair list is cut into contiguous
   chunks of ``steal_chunk_pairs`` and preloaded onto one shared task
   queue, followed by one ``None`` sentinel per worker. Workers *steal*
   chunks as they finish rather than receiving a static round-robin
   stripe, so a slow worker (noisy neighbour, unlucky relay cluster)
   holds at most one chunk hostage instead of 1/W of the campaign.
   Each finished chunk's entries ship home immediately as a ``chunk``
   message — batched incremental results instead of one big end-of-life
   pickle — and the worker's final :class:`ShardResult` carries only the
   totals.

Workers assert the leg phase did its job: with ``leg_phase=True`` a
worker that has to build *any* leg circuit raises, because every miss is
exactly the duplicated-work bug this engine exists to kill. Set
``leg_phase=False`` to get the old measure-on-demand behaviour (an
ablation knob; counters then scale with W again).

The merged matrix is **invariant to the worker count**: every task runs
under :class:`~repro.core.parallel.TaskIsolation`, which makes each
task's samples a pure function of ``(root seed, task key)`` — so it
cannot matter which process a chunk landed in, which worker stole it, or
what ran before it. ``workers=1``, ``workers=4``, and an unsharded
``ParallelCampaign`` with the same isolation recipe produce bit-for-bit
the same matrix; with the leg phase on, the deterministic *counters*
(leg builds, cache hits/misses/lookups, probes, task isolations) are
worker-count invariant too.

``force_inline=True`` runs the same worker loop (same chunking, same
telemetry sinks, same assertions) in-process with a deterministic chunk
deal — how the invariance tests compare worker counts without fork
nondeterminism, and the fallback for platforms without fork.

Live telemetry
--------------

Pass a :class:`CampaignTelemetry` and the leg phase plus every worker
attach a streaming sink to the host's
:class:`~repro.obs.events.EventBus`: events at or above
``stream_min_severity`` cross the fork boundary over one message queue,
along with rate-limited **heartbeats** carrying absolute progress totals
(``pairs_done``, ``pairs_total`` = pairs claimed so far under stealing)
and the in-flight pair or leg. The parent keeps a per-shard
:class:`~repro.obs.events.FlightRecorder` (the leg phase records under
shard ``-1``), feeds a :class:`~repro.obs.events.ProgressTracker`, and
arms a **stall watchdog**: a shard silent past ``stall_timeout_s`` trips
it, which dumps every shard's flight-recorder ring (plus the stuck
shard's in-flight task) to a post-mortem JSON artifact and fails the
campaign with a categorized
:class:`~repro.util.errors.MeasurementError` instead of hanging forever.
The engine's per-batch hook pumps heartbeats from inside long simulator
runs, so one slow pair is not mistaken for a hang — and because workers
steal, a genuinely slow worker just claims fewer chunks instead of
stalling the campaign.

Independently of telemetry, ``worker_timeout_s`` bounds the pair phase:
a worker the OS killed is noticed via its exit code within a grace
period, and a worker still grinding past the deadline fails the
campaign with the shard index — both work with ``observe=False``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty
from typing import Any, Callable, Sequence

from repro.core.dataset import ProvenanceLog, RttMatrix
from repro.core.sampling import SamplePolicy
from repro.obs import (
    INFO,
    Event,
    EventBus,
    FlightRecorder,
    MetricsRegistry,
    ProgressTracker,
    SpanTracer,
    TraceLog,
)
from repro.util.errors import MeasurementError
from repro.util.units import Milliseconds

#: Sentinel shard index for the campaign-wide leg phase: its telemetry,
#: flight-recorder ring, and merged observability records are attributed
#: to shard ``-1`` (leg *provenance* keeps ``shard=None`` — the phase
#: belongs to the campaign, not to any shard).
LEG_PHASE = -1


def _schedulable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


@dataclass
class CampaignTelemetry:
    """Configuration for live streaming telemetry across the fork boundary.

    ``bus`` is the parent-side event bus fed by worker streams (one is
    created when omitted); attach sinks to it *before* ``run()`` to see
    events live. ``progress`` likewise defaults to a fresh
    :class:`~repro.obs.events.ProgressTracker` sized to the pair list,
    and ``on_progress`` is invoked (with the tracker) after every
    heartbeat — the CLI's streaming status line hangs off it.

    ``stall_timeout_s`` arms the watchdog (``None`` disables): a shard
    that produces neither events nor heartbeats for that long is
    declared stalled. Size it to comfortably exceed worker startup.
    Fault injection for drills and tests: ``drill_hang_after``
    (``{shard: n}``) wedges that worker forever at its *n*-th pair
    start, after a forced heartbeat naming the in-flight pair — forked
    workers only; ``drill_slow_ms`` (``{shard: ms}``) sleeps that many
    wall milliseconds at every pair start, turning one worker into a
    straggler without wedging it — legal inline too, and the chaos tests
    use it to prove stealing rebalances around slow workers without
    tripping the watchdog.
    """

    bus: EventBus | None = None
    progress: ProgressTracker | None = None
    on_progress: Callable[[ProgressTracker], None] | None = None
    heartbeat_s: float = 1.0
    stall_timeout_s: float | None = 30.0
    postmortem_path: Path | None = None
    stream_min_severity: int = INFO
    ring_capacity: int = 512
    drill_hang_after: dict[int, int] = field(default_factory=dict)
    drill_slow_ms: dict[int, float] = field(default_factory=dict)


class _WorkerTelemetry:
    """Worker-side sink: streams events and heartbeats to the parent.

    Attached to the worker's event bus inside :func:`_run_worker` (and
    to the parent host's bus during the leg phase, as shard ``-1``).
    Every emitted event updates local progress counters (pair lifecycle
    from ``campaign`` events, probe totals from ``probe`` rounds, the
    in-flight label from pair/leg starts), rides the fork-boundary
    channel when at or above ``min_severity``, and gives the heartbeat
    pump a chance to fire. The simulator's per-batch hook calls
    :meth:`beat` too, so a worker grinding through one long simulator
    run still proves liveness between events.

    ``pairs_total`` is the number of pairs this worker has *claimed* so
    far — under work stealing it grows chunk by chunk, and heartbeats
    carry the running value so the parent can attribute load.
    """

    def __init__(
        self,
        send: Callable[[tuple], None],
        shard: int,
        heartbeat_s: float,
        min_severity: int,
        hang_after: int = 0,
        slow_ms: float = 0.0,
        wall: Callable[[], float] = time.monotonic,
    ) -> None:
        self.send = send
        self.shard = shard
        self.heartbeat_s = heartbeat_s
        self.min_severity = min_severity
        #: Fault-injection drill: wedge forever at the Nth pair start
        #: (0 disables).
        self.hang_after = hang_after
        #: Fault-injection drill: sleep this many wall milliseconds at
        #: every pair start (0 disables) — a straggler, not a corpse.
        self.slow_ms = slow_ms
        self._wall = wall
        self._last_beat = float("-inf")
        self.pairs_total = 0
        self.pairs_done = 0
        self.pairs_failed = 0
        self.probes_sent = 0
        self.probes_saved = 0
        self.in_flight: str | None = None
        self._pair_starts = 0

    def __call__(self, event: Event) -> None:
        category, kind = event.category, event.kind
        hang = False
        if category == "campaign":
            if kind == "pair_started":
                self._pair_starts += 1
                x, y = event.fields.get("x"), event.fields.get("y")
                self.in_flight = f"pair {x}:{y}"
                hang = self._pair_starts == self.hang_after
                if self.slow_ms:
                    time.sleep(self.slow_ms / 1000.0)
            elif kind == "pair_measured":
                self.pairs_done += 1
                self.in_flight = None
            elif kind == "pair_failed":
                self.pairs_done += 1
                self.pairs_failed += 1
                self.in_flight = None
        elif category == "leg":
            if kind == "started":
                self.in_flight = f"leg {event.fields.get('relay')}"
            else:  # finished / failed
                self.in_flight = None
        elif category == "probe":
            if kind == "round_finished":
                self.probes_sent += int(event.fields.get("sent", 0))
                self.probes_saved += int(event.fields.get("saved", 0))
            elif kind == "round_failed":
                self.probes_sent += int(event.fields.get("sent", 0))
        if event.severity >= self.min_severity:
            self.send(("event", self.shard, event.to_dict()))
        self.beat(force=hang)
        if hang:
            self._hang()

    def beat(self, force: bool = False) -> None:
        """Send a heartbeat if ``heartbeat_s`` elapsed (or forced)."""
        now = self._wall()
        if not force and now - self._last_beat < self.heartbeat_s:
            return
        self._last_beat = now
        self.send(
            (
                "hb",
                self.shard,
                {
                    "pairs_done": self.pairs_done,
                    "pairs_failed": self.pairs_failed,
                    "pairs_total": self.pairs_total,
                    "probes_sent": self.probes_sent,
                    "probes_saved": self.probes_saved,
                    "in_flight": self.in_flight,
                },
            )
        )

    def _hang(self) -> None:
        # The drill: a forced heartbeat just named the in-flight pair;
        # now wedge so the parent's watchdog must notice the silence.
        while True:
            time.sleep(3600)


class _ShardMonitor:
    """Parent-side telemetry state: what the watchdog knows per shard.

    Streamed events land in a per-shard flight recorder *and* the
    parent bus (so sinks attached there see the whole campaign live);
    heartbeats update ``last_seen``, the progress tracker (including
    per-shard claimed totals under work stealing), and the in-flight
    labels the post-mortem names. Any other message kind (``chunk``)
    counts as liveness only. The parent keeps its own recorders because
    a hung child's memory — including its local ring — is unreachable;
    what was streamed before the silence is all the forensics there is.
    """

    def __init__(
        self,
        telemetry: CampaignTelemetry,
        pairs_total: int,
        wall: Callable[[], float] = time.monotonic,
    ) -> None:
        self.telemetry = telemetry
        self.bus = telemetry.bus if telemetry.bus is not None else EventBus(
            capacity=4096
        )
        self.progress = (
            telemetry.progress
            if telemetry.progress is not None
            else ProgressTracker(pairs_total)
        )
        self._wall = wall
        self.recorders: dict[int, FlightRecorder] = {}
        self.last_seen: dict[int, float] = {}
        self.heartbeats: dict[int, dict[str, Any]] = {}

    def register(self, shard: int) -> None:
        """Start the liveness clock for one shard (at spawn time)."""
        self.last_seen[shard] = self._wall()
        self.recorders[shard] = FlightRecorder(
            capacity=self.telemetry.ring_capacity
        )

    def handle(self, msg: tuple) -> None:
        """Absorb one worker message (``hb``, ``event``, or liveness)."""
        kind, shard = msg[0], msg[1]
        self.last_seen[shard] = self._wall()
        if kind == "hb":
            payload = msg[2]
            self.heartbeats[shard] = payload
            self.progress.update_shard(
                shard,
                pairs_done=payload.get("pairs_done", 0),
                pairs_failed=payload.get("pairs_failed", 0),
                pairs_total=payload.get("pairs_total", 0),
                probes_sent=payload.get("probes_sent", 0),
                probes_saved=payload.get("probes_saved", 0),
                in_flight=payload.get("in_flight"),
            )
            if self.telemetry.on_progress is not None:
                self.telemetry.on_progress(self.progress)
        elif kind == "event":
            record = msg[2]
            recorder = self.recorders.get(shard)
            if recorder is not None:
                recorder.append(record)
            self.bus.ingest(record)

    def stalled(self, pending: set[int], now: float) -> list[tuple[int, float]]:
        """Pending shards silent past the deadline, worst first."""
        deadline = self.telemetry.stall_timeout_s
        if deadline is None:
            return []
        ages = [(now - self.last_seen.get(s, now), s) for s in pending]
        return [(s, age) for age, s in sorted(ages, reverse=True) if age > deadline]

    def stall_error(self, shard: int, age: float) -> MeasurementError:
        """Dump the post-mortem and build the categorized failure."""
        in_flight = (self.heartbeats.get(shard) or {}).get("in_flight")
        reason = (
            f"shard {shard} stalled: no heartbeat for {age:.1f}s "
            f"(deadline {self.telemetry.stall_timeout_s:.1f}s"
            + (f", in flight: {in_flight}" if in_flight else "")
            + ")"
        )
        self.bus.error(
            "shard", "watchdog_tripped",
            stalled_shard=shard, age_s=round(age, 2), in_flight=in_flight,
        )
        path = self.write_postmortem(shard, reason)
        return MeasurementError(f"{reason}; flight recorder dumped to {path}")

    def write_postmortem(self, shard: int, reason: str) -> Path:
        """Write the flight-recorder dump for a tripped watchdog."""
        path = self.telemetry.postmortem_path
        if path is None:
            path = Path("ting_postmortem.json")
        doc = {
            "reason": reason,
            "category": "stall",
            "stuck_shard": shard,
            "in_flight": (self.heartbeats.get(shard) or {}).get("in_flight"),
            "heartbeats": {str(s): hb for s, hb in sorted(self.heartbeats.items())},
            "progress": self.progress.snapshot(),
            "rings": {
                str(s): recorder.dump()
                for s, recorder in sorted(self.recorders.items())
            },
        }
        path.write_text(json.dumps(doc, indent=2), encoding="utf-8")
        return path


@dataclass
class ShardResult:
    """What one worker ships back to the parent: plain picklable data.

    Under work stealing the matrix *entries* arrive incrementally as
    per-chunk messages; the parent folds them back into ``entries`` (in
    chunk order) before merging, so by merge time this looks the same as
    v1's one-shot result. ``chunks`` counts how many chunks the worker
    stole; ``legs_measured`` how many leg circuits it had to build
    itself (always 0 when the leg phase ran). The leg phase's own
    artifacts ride a ShardResult with ``shard_index=LEG_PHASE``.

    The observability payloads are snapshots, not live objects — a
    metrics dict (:meth:`MetricsRegistry.snapshot`), a trace dict
    (:meth:`TraceLog.snapshot`), span record dicts, a columnar
    provenance snapshot (:meth:`ProvenanceLog.snapshot` — flat numpy
    buffers carrying both pair and leg records, not per-record dicts),
    and an event-bus dict (:meth:`EventBus.snapshot`). ``None`` means
    the shard ran without observability.
    """

    shard_index: int
    entries: list[tuple[str, str, float]]
    failures: list[tuple[str, str, str]]
    pairs_attempted: int
    events_processed: int
    cells_processed: int
    makespan_ms: Milliseconds
    wall_s: float
    probes_sent: int = 0
    probes_saved: int = 0
    early_stops: int = 0
    legs_measured: int = 0
    chunks: int = 0
    metrics: dict[str, Any] | None = None
    trace: dict[str, Any] | None = None
    spans: list[dict[str, Any]] | None = None
    provenance: dict[str, Any] | None = None
    events: dict[str, Any] | None = None


@dataclass
class ShardedReport:
    """Outcome of a sharded campaign, merged across all workers.

    ``leg_phase`` is the campaign-wide leg phase's result (``None``
    when ``leg_phase=False``); ``shards`` holds only the pair workers.
    ``legs_measured`` sums leg circuit builds across the leg phase and
    every worker — with the leg phase on it equals *n* exactly,
    regardless of the worker count (the duplicated-work regression
    guard).

    When the campaign ran with ``observe=True``, ``metrics``/``trace``/
    ``spans``/``provenance``/``events`` hold the *merged* observability
    state: counters summed, gauges maxed, histogram buckets summed, and
    every trace event, span, provenance record, and bus event tagged
    with the shard that produced it (``-1`` = leg phase; leg provenance
    records keep ``shard=None`` — the phase belongs to the campaign).
    Deterministic counters in the merged registry are invariant to the
    worker count.

    When the campaign ran with a :class:`CampaignTelemetry`, ``stream``
    is the parent-side bus fed live across the fork boundary and
    ``progress`` the final state of the progress tracker.
    """

    matrix: RttMatrix
    pairs_attempted: int = 0
    pairs_measured: int = 0
    failures: list[tuple[str, str, str]] = field(default_factory=list)
    shards: list[ShardResult] = field(default_factory=list)
    leg_phase: ShardResult | None = None
    workers: int = 1
    events_processed: int = 0
    cells_processed: int = 0
    wall_s: float = 0.0
    probes_sent: int = 0
    probes_saved: int = 0
    early_stops: int = 0
    legs_measured: int = 0
    metrics: MetricsRegistry | None = None
    trace: TraceLog | None = None
    spans: SpanTracer | None = None
    provenance: ProvenanceLog | None = None
    events: EventBus | None = None
    stream: EventBus | None = None
    progress: ProgressTracker | None = None


def _testbed_cells(testbed: Any) -> int:
    """Total relay cells processed (network relays + local w and z)."""
    cells = sum(relay.cells_processed for relay in testbed.relays)
    cells += testbed.measurement.relay_w.cells_processed
    cells += testbed.measurement.relay_z.cells_processed
    return cells


@dataclass
class _WorkerJob:
    """Everything one pair worker needs, inherited over fork (not
    pickled): the parent-built testbed, the relay order, and the leg
    phase's read-only estimate/failure caches."""

    testbed: Any
    fingerprints: list[str]
    policy: SamplePolicy | None
    shard_index: int
    observe: bool
    leg_estimates: dict[str, float]
    leg_failures: dict[str, str]
    #: When True every relay is covered by the leg caches and a chunk
    #: that builds any leg circuit raises — the duplicated-work guard.
    assert_prewarmed: bool


def _run_worker(
    job: _WorkerJob,
    next_task: Callable[[], Any],
    send_chunk: Callable[[tuple], None],
    telemetry: _WorkerTelemetry | None = None,
) -> ShardResult:
    """Worker loop: steal pair chunks until the sentinel, ship each home.

    Module-level (not a closure) so the fork context inherits it and
    tests can monkeypatch it. ``next_task`` yields ``(chunk_id, pairs)``
    tuples and finally ``None`` — a blocking ``Queue.get`` in forked
    mode, a deterministic iterator in inline mode. Each finished chunk's
    entries leave immediately via ``send_chunk`` (kind ``"chunk"``); the
    returned :class:`ShardResult` carries only totals and snapshots.

    With ``job.observe`` the worker enables fresh observability on the
    inherited host and ships snapshots home; the event bus is cleared
    first so an inline emulation (shared host) and a forked child
    (inherited parent bus) both start from an empty ring.

    With ``telemetry`` (a :class:`_WorkerTelemetry` whose ``send`` is
    already bound to the parent's channel) the worker wires a live
    event bus regardless of ``observe``, attaches the streaming sink,
    and pumps heartbeats from the simulator's per-batch hook. A forced
    beat at every chunk claim publishes the stolen total.
    """
    from repro.core.parallel import ParallelCampaign

    if telemetry is not None:
        # Birth heartbeat: the liveness clock starts at spawn, not at
        # the first measurement.
        telemetry.beat(force=True)
    started = time.perf_counter()
    testbed = job.testbed
    host = testbed.measurement
    if job.observe:
        host.enable_observability()
    if host.events.enabled:
        host.events.clear()
    events_start = testbed.sim.events_processed
    cells_start = _testbed_cells(testbed)
    makespan_start = testbed.sim.now
    bus = None
    if telemetry is not None:
        bus = host.events if host.events.enabled else host.enable_events()
        bus.shard = job.shard_index
        bus.add_sink(telemetry)
        testbed.sim.on_batch = telemetry.beat
    elif job.observe:
        host.events.shard = job.shard_index
    by_fp = {relay.fingerprint: relay for relay in testbed.relays}
    descriptors = [by_fp[fp].descriptor() for fp in job.fingerprints]
    campaign = ParallelCampaign(
        host,
        descriptors,
        policy=job.policy,
        pairs=[],
        legs=[],
        isolation=testbed.task_isolation(),
        leg_estimates=job.leg_estimates,
        leg_failures=job.leg_failures,
    )
    totals = {
        "pairs_attempted": 0,
        "probes_sent": 0,
        "probes_saved": 0,
        "early_stops": 0,
        "legs_measured": 0,
        "chunks": 0,
    }
    try:
        if host.events.enabled:
            host.events.info("shard", "worker_started", worker=job.shard_index)
        while True:
            task = next_task()
            if task is None:
                break
            chunk_id, chunk_pairs = task
            if telemetry is not None:
                # Claim heartbeat: the stolen total moves *before* the
                # chunk runs, so the parent can attribute load live.
                telemetry.pairs_total += len(chunk_pairs)
                telemetry.beat(force=True)
            chunk = campaign.run_pairs(chunk_pairs)
            if job.assert_prewarmed and chunk.legs_measured:
                raise MeasurementError(
                    f"shard {job.shard_index} chunk {chunk_id} rebuilt "
                    f"{chunk.legs_measured} leg circuit(s) the leg phase "
                    "should have pre-warmed"
                )
            totals["pairs_attempted"] += chunk.pairs_attempted
            totals["probes_sent"] += chunk.probes_sent
            totals["probes_saved"] += chunk.probes_saved
            totals["early_stops"] += chunk.early_stops
            totals["legs_measured"] += chunk.legs_measured
            totals["chunks"] += 1
            send_chunk(
                (
                    "chunk",
                    job.shard_index,
                    {
                        "chunk": chunk_id,
                        "entries": list(chunk.matrix.measured_pairs()),
                        "failures": list(chunk.failures),
                        "pairs_attempted": chunk.pairs_attempted,
                        "legs_measured": chunk.legs_measured,
                    },
                )
            )
        if host.events.enabled:
            host.events.info(
                "shard",
                "worker_finished",
                worker=job.shard_index,
                chunks=totals["chunks"],
                pairs=totals["pairs_attempted"],
            )
        if telemetry is not None:
            # Final forced beat so the parent's tracker lands on 100%.
            telemetry.beat(force=True)
    finally:
        if telemetry is not None and bus is not None:
            bus.remove_sink(telemetry)
            testbed.sim.on_batch = None
    return ShardResult(
        shard_index=job.shard_index,
        entries=[],
        failures=[],
        pairs_attempted=totals["pairs_attempted"],
        events_processed=testbed.sim.events_processed - events_start,
        cells_processed=_testbed_cells(testbed) - cells_start,
        makespan_ms=testbed.sim.now - makespan_start,
        wall_s=time.perf_counter() - started,
        probes_sent=totals["probes_sent"],
        probes_saved=totals["probes_saved"],
        early_stops=totals["early_stops"],
        legs_measured=totals["legs_measured"],
        chunks=totals["chunks"],
        metrics=host.metrics.snapshot() if job.observe else None,
        trace=host.trace.snapshot() if job.observe else None,
        spans=host.spans.records() if job.observe else None,
        provenance=host.provenance.snapshot() if job.observe else None,
        events=host.events.snapshot() if job.observe else None,
    )


def _worker_entry(
    channel: Any,
    tasks: Any,
    job: _WorkerJob,
    telemetry: _WorkerTelemetry | None,
) -> None:
    """Forked-process target: steal chunks until empty, ship the outcome.

    Exceptions cross the fork boundary as ``("error", shard, reason)``
    messages — the parent re-raises them as one MeasurementError, which
    is how a worker that trips the pre-warm assertion (or anything else)
    fails the campaign instead of hanging it.
    """
    try:
        result = _run_worker(
            job, next_task=tasks.get, send_chunk=channel.put, telemetry=telemetry
        )
    except BaseException as exc:  # noqa: BLE001 — serialized for the parent
        channel.put(("error", job.shard_index, f"{type(exc).__name__}: {exc}"))
    else:
        channel.put(("result", job.shard_index, result))


def _absorb_chunks(result: ShardResult, payloads: list[dict]) -> None:
    """Fold a worker's streamed chunk payloads back into its result.

    Chunks are re-sorted by chunk id so the entry order is deterministic
    regardless of steal order; the values themselves are steal-order
    independent already (task isolation).
    """
    for payload in sorted(payloads, key=lambda p: p["chunk"]):
        result.entries.extend(tuple(entry) for entry in payload["entries"])
        result.failures.extend(tuple(item) for item in payload["failures"])


class ShardedCampaign:
    """All-pairs Ting campaign: one leg phase, then work-stealing workers.

    ``factory`` is any zero-argument callable returning a testbed with
    ``relays``, ``measurement``, ``sim``, and ``task_isolation()`` — in
    practice ``functools.partial(LiveTorTestbed.build, seed=...,
    n_relays=...)``. The factory runs **once, in the parent**; forked
    workers inherit the built testbed copy-on-write (v1 rebuilt the
    world per worker). ``fingerprints`` names the relay subset to
    measure (order fixes the matrix's node order). ``pairs`` optionally
    restricts the campaign to a pair subset; by default all C(n,2)
    pairs are measured.

    ``steal_chunk_pairs`` sets the work-stealing granularity: smaller
    chunks balance better but cross the fork boundary more often.
    ``leg_phase=False`` disables the shared leg phase (workers measure
    legs on demand — the v1 behaviour, kept as an ablation knob).
    ``force_inline=True`` emulates the worker loop in-process with a
    deterministic chunk deal — the invariance tests' comparison mode
    and the no-fork fallback. ``clamp_to_cpus=True`` caps the *forked*
    worker count at the schedulable CPU count (forking past the core
    count is pure overhead; stealing makes the cap result-invariant),
    collapsing to the inline emulation when only one CPU is available.

    ``telemetry`` opts into live streaming (heartbeats, watchdog,
    progress — see :class:`CampaignTelemetry`); ``worker_timeout_s``
    bounds forked-worker wall time independently of telemetry, so an
    OS-killed or runaway worker fails the campaign with its shard index
    instead of blocking ``run()`` forever.
    """

    #: Parent poll cadence: how often liveness/deadline checks run.
    _POLL_S = 0.05
    #: How long a dead worker's queued messages get to drain before the
    #: parent declares it died without a result.
    _DEATH_GRACE_S = 1.0

    def __init__(
        self,
        factory: Callable[[], object],
        fingerprints: Sequence[str],
        policy: SamplePolicy | None = None,
        workers: int = 4,
        pairs: Sequence[tuple[str, str]] | None = None,
        observe: bool = False,
        telemetry: CampaignTelemetry | None = None,
        worker_timeout_s: float | None = None,
        steal_chunk_pairs: int = 8,
        leg_phase: bool = True,
        force_inline: bool = False,
        clamp_to_cpus: bool = False,
    ) -> None:
        if len(fingerprints) < 2:
            raise MeasurementError("need at least two relays for a campaign")
        if len(set(fingerprints)) != len(fingerprints):
            raise MeasurementError("duplicate fingerprints in campaign set")
        if workers < 0:
            raise MeasurementError("workers must be >= 0")
        if worker_timeout_s is not None and worker_timeout_s <= 0:
            raise MeasurementError("worker_timeout_s must be positive")
        if steal_chunk_pairs < 1:
            raise MeasurementError("steal_chunk_pairs must be >= 1")
        self.factory = factory
        self.fingerprints = list(fingerprints)
        self.policy = policy
        self.workers = workers
        #: Enable observability in every worker and merge the snapshots
        #: into one registry/trace/span/provenance/event set on the report.
        self.observe = observe
        self.telemetry = telemetry
        self.worker_timeout_s = worker_timeout_s
        self.steal_chunk_pairs = steal_chunk_pairs
        #: Measure every relay's leg once, campaign-wide, before pair
        #: fan-out. ``False`` = v1 measure-on-demand (duplicates work).
        self.leg_phase = leg_phase
        #: Emulate the worker loop in-process (deterministic chunk deal)
        #: even when ``workers > 1``.
        self.force_inline = force_inline
        #: Cap *forked* workers at the schedulable CPU count. On a box
        #: with fewer cores than ``workers``, extra forks only add
        #: copy-on-write and timesharing overhead; work stealing makes
        #: the cap result-invariant. A cap of 1 falls back to the
        #: inline emulation (still ``workers`` logical shards).
        self.clamp_to_cpus = clamp_to_cpus
        if pairs is None:
            self.pairs = [
                (a, b)
                for i, a in enumerate(self.fingerprints)
                for b in self.fingerprints[i + 1 :]
            ]
        else:
            known = set(self.fingerprints)
            for a, b in pairs:
                if a == b or a not in known or b not in known:
                    raise MeasurementError(f"invalid campaign pair ({a}, {b})")
            self.pairs = list(pairs)
        #: Relays that appear in at least one campaign pair, in
        #: fingerprint order. The leg phase only measures these — under
        #: a planner-budgeted pair list there is no reason to pre-warm
        #: legs no pair will subtract. For an all-pairs campaign this is
        #: every fingerprint, so the historical behaviour is unchanged.
        touched = {fp for pair in self.pairs for fp in pair}
        self.touched_fingerprints = [
            fp for fp in self.fingerprints if fp in touched
        ]

    def pair_chunks(self) -> list[tuple[int, list[tuple[str, str]]]]:
        """The pair list cut into ``steal_chunk_pairs``-sized chunks.

        Contiguous chunks (not round-robin stripes): work stealing makes
        static balance irrelevant, and contiguous ids keep the merged
        entry order equal to the pair-list order.
        """
        size = self.steal_chunk_pairs
        return [
            (start // size, self.pairs[start : start + size])
            for start in range(0, len(self.pairs), size)
        ]

    def run(self) -> ShardedReport:
        """Leg phase, then steal every pair chunk; merge the results."""
        started = time.perf_counter()
        chunks = self.pair_chunks()
        fork_workers = min(self.workers, max(1, len(chunks)))
        if self.clamp_to_cpus:
            fork_workers = min(fork_workers, _schedulable_cpus())
        inline = self.workers <= 1 or self.force_inline or fork_workers <= 1
        if inline and self.telemetry is not None and self.telemetry.drill_hang_after:
            raise MeasurementError(
                "drill_hang_after requires forked workers (workers >= 2); "
                "an inline drill would wedge the parent process"
            )
        monitor = (
            _ShardMonitor(self.telemetry, len(self.pairs))
            if self.telemetry is not None
            else None
        )
        testbed = self.factory()
        by_fp = {relay.fingerprint: relay for relay in testbed.relays}
        missing = [fp for fp in self.fingerprints if fp not in by_fp]
        if missing:
            raise MeasurementError(
                f"factory-built testbed lacks relays {missing[:3]}"
                f"{'...' if len(missing) > 3 else ''}"
            )
        leg_result = None
        leg_estimates: dict[str, float] = {}
        leg_failures: dict[str, str] = {}
        if self.leg_phase:
            leg_result, leg_estimates, leg_failures = self._run_leg_phase(
                testbed, monitor
            )
        if inline:
            results = self._run_inline(
                testbed, chunks, monitor, leg_estimates, leg_failures
            )
        else:
            results = self._run_forked(
                testbed, chunks, monitor, leg_estimates, leg_failures,
                fork_workers,
            )
        report = self._merge(results, leg_result)
        if monitor is not None:
            report.stream = monitor.bus
            report.progress = monitor.progress
        report.wall_s = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------

    def _worker_telemetry(
        self, shard: int, send: Callable[[tuple], None]
    ) -> _WorkerTelemetry:
        telemetry = self.telemetry
        return _WorkerTelemetry(
            send=send,
            shard=shard,
            heartbeat_s=telemetry.heartbeat_s,
            min_severity=telemetry.stream_min_severity,
            hang_after=telemetry.drill_hang_after.get(shard, 0),
            slow_ms=telemetry.drill_slow_ms.get(shard, 0.0),
        )

    def _worker_job(
        self,
        testbed: Any,
        shard_index: int,
        leg_estimates: dict[str, float],
        leg_failures: dict[str, str],
    ) -> _WorkerJob:
        prewarmed = self.leg_phase and all(
            fp in leg_estimates or fp in leg_failures
            for fp in self.touched_fingerprints
        )
        return _WorkerJob(
            testbed=testbed,
            fingerprints=self.fingerprints,
            policy=self.policy,
            shard_index=shard_index,
            observe=self.observe,
            leg_estimates=leg_estimates,
            leg_failures=leg_failures,
            assert_prewarmed=prewarmed,
        )

    def _run_leg_phase(
        self, testbed: Any, monitor: _ShardMonitor | None
    ) -> tuple[ShardResult, dict[str, float], dict[str, str]]:
        """Measure every relay's leg circuit once, in the parent.

        Runs a pairs-free :class:`~repro.core.parallel.ParallelCampaign`
        over the pair-touched fingerprints under task isolation — so
        each leg task's
        samples are bit-identical to what any worker (or an unsharded
        campaign) would have measured for the same root seed. Telemetry
        and observability artifacts are attributed to shard
        :data:`LEG_PHASE`; leg provenance keeps ``shard=None``.
        """
        from repro.core.parallel import ParallelCampaign

        host = testbed.measurement
        started = time.perf_counter()
        telemetry = None
        if monitor is not None:
            monitor.register(LEG_PHASE)
            telemetry = self._worker_telemetry(LEG_PHASE, monitor.handle)
            telemetry.beat(force=True)
        if self.observe:
            host.enable_observability()
        bus = None
        if telemetry is not None:
            bus = host.events if host.events.enabled else host.enable_events()
            bus.shard = LEG_PHASE
            bus.add_sink(telemetry)
            testbed.sim.on_batch = telemetry.beat
        elif self.observe:
            host.events.shard = LEG_PHASE
        events_start = testbed.sim.events_processed
        cells_start = _testbed_cells(testbed)
        by_fp = {relay.fingerprint: relay for relay in testbed.relays}
        descriptors = [by_fp[fp].descriptor() for fp in self.fingerprints]
        campaign = ParallelCampaign(
            host,
            descriptors,
            policy=self.policy,
            pairs=[],
            legs=self.touched_fingerprints,
            isolation=testbed.task_isolation(),
        )
        try:
            report = campaign.run()
            if telemetry is not None:
                telemetry.beat(force=True)
        finally:
            if telemetry is not None and bus is not None:
                bus.remove_sink(telemetry)
                testbed.sim.on_batch = None
        result = ShardResult(
            shard_index=LEG_PHASE,
            entries=[],
            failures=[],
            pairs_attempted=0,
            events_processed=testbed.sim.events_processed - events_start,
            cells_processed=_testbed_cells(testbed) - cells_start,
            makespan_ms=report.makespan_ms,
            wall_s=time.perf_counter() - started,
            probes_sent=report.probes_sent,
            probes_saved=report.probes_saved,
            early_stops=report.early_stops,
            legs_measured=report.legs_measured,
            metrics=host.metrics.snapshot() if self.observe else None,
            trace=host.trace.snapshot() if self.observe else None,
            spans=host.spans.records() if self.observe else None,
            provenance=host.provenance.snapshot() if self.observe else None,
            events=host.events.snapshot() if self.observe else None,
        )
        return result, campaign.leg_estimates, campaign.leg_failures

    def _run_inline(
        self,
        testbed: Any,
        chunks: list[tuple[int, list[tuple[str, str]]]],
        monitor: _ShardMonitor | None,
        leg_estimates: dict[str, float],
        leg_failures: dict[str, str],
    ) -> list[ShardResult]:
        """Emulate the worker loop in-process, one worker at a time.

        Worker *i* gets the deterministic chunk deal ``chunks[i::W]`` —
        the steal order a perfectly fair race would produce — and runs
        the *identical* :func:`_run_worker` code path on the shared
        testbed, streaming straight to the monitor. Task isolation makes
        the shared-host reuse safe; the worker-count-invariance tests
        rely on this mode to compare worker counts deterministically.
        """
        n_workers = max(1, min(max(1, self.workers), max(1, len(chunks))))
        results: list[ShardResult] = []
        for index in range(n_workers):
            deal = list(chunks[index::n_workers]) + [None]
            queue = iter(deal)
            payloads: list[dict] = []
            telemetry = None
            if monitor is not None:
                monitor.register(index)
                telemetry = self._worker_telemetry(index, monitor.handle)
            job = self._worker_job(testbed, index, leg_estimates, leg_failures)
            result = _run_worker(
                job,
                next_task=lambda it=queue: next(it),
                send_chunk=lambda msg, sink=payloads: sink.append(msg[2]),
                telemetry=telemetry,
            )
            _absorb_chunks(result, payloads)
            results.append(result)
        return results

    def _run_forked(
        self,
        testbed: Any,
        chunks: list[tuple[int, list[tuple[str, str]]]],
        monitor: _ShardMonitor | None,
        leg_estimates: dict[str, float],
        leg_failures: dict[str, str],
        n_workers: int,
    ) -> list[ShardResult]:
        """Fork the workers; they steal chunks off one shared queue.

        The task queue is preloaded with every chunk plus one ``None``
        sentinel per worker, so a fast worker simply claims more chunks
        and every worker sees exactly one sentinel. The single result
        channel carries five message kinds — ``hb``, ``event``,
        ``chunk``, ``result``, ``error`` — and per-producer FIFO order
        guarantees a worker's chunks all arrive before its result. The
        parent's poll loop doubles as the liveness clock: every
        ``queue.get`` timeout is a chance to notice a dead worker, a
        blown deadline, or a stalled heartbeat.
        """
        ctx = multiprocessing.get_context("fork")
        channel = ctx.Queue()
        tasks = ctx.Queue()
        for chunk in chunks:
            tasks.put(chunk)
        for _ in range(n_workers):
            tasks.put(None)
        procs: dict[int, Any] = {}
        for index in range(n_workers):
            telemetry = None
            if monitor is not None:
                monitor.register(index)
                telemetry = self._worker_telemetry(index, channel.put)
            job = self._worker_job(testbed, index, leg_estimates, leg_failures)
            procs[index] = ctx.Process(
                target=_worker_entry,
                args=(channel, tasks, job, telemetry),
                daemon=True,
            )
        started = time.monotonic()
        for proc in procs.values():
            proc.start()
        pending = set(procs)
        results: dict[int, ShardResult] = {}
        chunk_payloads: dict[int, list[dict]] = {index: [] for index in procs}
        dead_since: dict[int, float] = {}
        try:
            while pending:
                try:
                    msg = channel.get(timeout=self._POLL_S)
                except Empty:
                    msg = None
                if msg is not None:
                    kind, shard = msg[0], msg[1]
                    if kind == "result":
                        results[shard] = msg[2]
                        pending.discard(shard)
                    elif kind == "error":
                        raise MeasurementError(
                            f"shard {shard} worker failed: {msg[2]}"
                        )
                    elif kind == "chunk":
                        chunk_payloads[shard].append(msg[2])
                        if monitor is not None:
                            monitor.handle(msg)  # liveness only
                    elif monitor is not None:
                        monitor.handle(msg)
                now = time.monotonic()
                # A worker the OS killed never sends anything again:
                # notice the corpse (after a short drain grace for any
                # queued result) instead of waiting out the deadline.
                for shard in sorted(pending):
                    if procs[shard].is_alive():
                        dead_since.pop(shard, None)
                    elif now - dead_since.setdefault(shard, now) > self._DEATH_GRACE_S:
                        raise MeasurementError(
                            f"shard {shard} worker died without a result "
                            f"(exit code {procs[shard].exitcode})"
                        )
                if (
                    self.worker_timeout_s is not None
                    and now - started > self.worker_timeout_s
                ):
                    shard = min(pending)
                    raise MeasurementError(
                        f"shard {shard} worker exceeded the "
                        f"{self.worker_timeout_s:.1f}s deadline "
                        f"({len(pending)} shard(s) unfinished)"
                    )
                if monitor is not None:
                    stalled = monitor.stalled(pending, now)
                    if stalled:
                        raise monitor.stall_error(*stalled[0])
            # Results are in; drain trailing heartbeats/events so the
            # final progress totals and stream counts are complete.
            while True:
                try:
                    msg = channel.get_nowait()
                except Empty:
                    break
                if msg[0] == "chunk":
                    chunk_payloads[msg[1]].append(msg[2])
                elif monitor is not None and msg[0] in ("hb", "event"):
                    monitor.handle(msg)
            for proc in procs.values():
                proc.join(timeout=5.0)
        finally:
            for proc in procs.values():
                if proc.is_alive():
                    proc.terminate()
            for proc in procs.values():
                proc.join(timeout=1.0)
            tasks.cancel_join_thread()
            tasks.close()
            channel.close()
        for index, result in results.items():
            _absorb_chunks(result, chunk_payloads.get(index, []))
        return [results[shard] for shard in sorted(results)]

    def _merge(
        self, results: list[ShardResult], leg_result: ShardResult | None = None
    ) -> ShardedReport:
        matrix = RttMatrix(self.fingerprints)
        report = ShardedReport(matrix=matrix, workers=max(1, self.workers))
        if self.observe:
            report.metrics = MetricsRegistry()
            report.trace = TraceLog()
            report.spans = SpanTracer()
            report.provenance = ProvenanceLog()
            report.events = EventBus(capacity=4096)
        ordered = ([] if leg_result is None else [leg_result]) + sorted(
            results, key=lambda r: r.shard_index
        )
        for result in ordered:
            for a, b, rtt in result.entries:
                if matrix.has(a, b):
                    raise MeasurementError(
                        f"pair ({a}, {b}) measured by two shards"
                    )
                matrix.set(a, b, rtt)
            report.failures.extend(result.failures)
            report.pairs_attempted += result.pairs_attempted
            report.events_processed += result.events_processed
            report.cells_processed += result.cells_processed
            report.probes_sent += result.probes_sent
            report.probes_saved += result.probes_saved
            report.early_stops += result.early_stops
            report.legs_measured += result.legs_measured
            if result.shard_index == LEG_PHASE:
                report.leg_phase = result
            else:
                report.shards.append(result)
            self._merge_observability(report, result)
        report.pairs_measured = matrix.num_measured
        return report

    @staticmethod
    def _merge_observability(report: ShardedReport, result: ShardResult) -> None:
        """Fold one shard's observability snapshots into the report.

        Counter-sum / gauge-max / histogram-bucket-sum for metrics;
        trace events, spans, pair-provenance records, and event-bus
        rings are adopted with a ``shard`` tag (``-1`` = leg phase) so
        attribution survives the merge. Leg-provenance records from the
        leg phase keep ``shard=None`` — the phase belongs to the
        campaign; legs a worker measured itself (``leg_phase=False``)
        are tagged with that worker. Event counts sum per
        ``(category, severity)``.
        """
        if result.metrics is not None and report.metrics is not None:
            report.metrics.merge(MetricsRegistry.from_snapshot(result.metrics))
        if result.trace is not None and report.trace is not None:
            for entry in result.trace.get("events", []):
                entry = dict(entry)
                time_ms = entry.pop("time_ms")
                kind = entry.pop("kind")
                entry.setdefault("shard", result.shard_index)
                report.trace.record(time_ms, kind, **entry)
            report.trace.dropped += int(result.trace.get("dropped", 0))
        if result.spans is not None and report.spans is not None:
            report.spans.merge(result.spans, shard=result.shard_index)
        if result.provenance is not None and report.provenance is not None:
            # Array concatenation, not per-record adoption: pair rows
            # are retagged with the producing shard; leg rows from the
            # leg phase keep ``shard=None`` (the phase belongs to the
            # campaign), while legs a worker measured itself get the
            # worker index.
            report.provenance.merge_snapshot(
                result.provenance,
                shard=result.shard_index,
                leg_shard=None
                if result.shard_index == LEG_PHASE
                else result.shard_index,
            )
        if result.events is not None and report.events is not None:
            report.events.merge_snapshot(result.events, shard=result.shard_index)
