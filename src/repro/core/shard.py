"""Sharded all-pairs campaigns across worker processes.

A single :class:`~repro.core.parallel.ParallelCampaign` is bound to one
Python process; an all-pairs matrix over hundreds of relays is hours of
single-core event processing. The measurements themselves are
embarrassingly parallel, so :class:`ShardedCampaign` splits the C(n,2)
pair list round-robin across worker processes. Each worker rebuilds the
*identical* seeded testbed from a picklable factory, runs a
:class:`~repro.core.parallel.ParallelCampaign` restricted to its pair
shard, and ships its measured entries back; the parent merges them into
one :class:`~repro.core.dataset.RttMatrix`.

The merged matrix is **invariant to the shard count**: every worker runs
its tasks under :class:`~repro.core.parallel.TaskIsolation`, which makes
each task's samples a pure function of ``(root seed, task key)`` — so it
cannot matter which process a task landed in or which tasks ran before
it. ``ShardedCampaign(workers=1)`` therefore produces bit-for-bit the
same matrix as ``workers=4``, and the same as an unsharded
``ParallelCampaign`` running with the same isolation recipe.

Workers are forked (``multiprocessing`` fork context) so the factory and
policy only need to be picklable — ``functools.partial(
LiveTorTestbed.build, seed=..., n_relays=...)`` works as-is. Set
``workers=0`` (or run on a platform without fork) to execute every shard
inline in the parent process, which is also how the invariance tests
compare shard counts deterministically.

Live telemetry
--------------

Pass a :class:`CampaignTelemetry` and every worker attaches a streaming
sink to its rebuilt host's :class:`~repro.obs.events.EventBus`: events
at or above ``stream_min_severity`` cross the fork boundary over one
message queue, along with rate-limited **heartbeats** carrying absolute
progress totals and the worker's in-flight pair or leg. The parent keeps
a per-shard :class:`~repro.obs.events.FlightRecorder`, feeds a
:class:`~repro.obs.events.ProgressTracker`, and arms a **stall
watchdog**: a shard silent past ``stall_timeout_s`` trips it, which
dumps every shard's flight-recorder ring (plus the stuck shard's
in-flight task) to a post-mortem JSON artifact and fails the campaign
with a categorized :class:`~repro.util.errors.MeasurementError` instead
of hanging forever. The engine's per-batch hook pumps heartbeats from
inside long simulator runs, so one slow pair is not mistaken for a hang.

Independently of telemetry, ``worker_timeout_s`` bounds the whole run:
a worker the OS killed is noticed via its exit code within a grace
period, and a worker still grinding past the deadline fails the
campaign with the shard index — both work with ``observe=False``.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty
from typing import Any, Callable, Sequence

from repro.core.dataset import ProvenanceLog, RttMatrix
from repro.core.sampling import SamplePolicy
from repro.obs import (
    INFO,
    Event,
    EventBus,
    FlightRecorder,
    MetricsRegistry,
    ProgressTracker,
    SpanTracer,
    TraceLog,
)
from repro.util.errors import MeasurementError
from repro.util.units import Milliseconds


@dataclass
class CampaignTelemetry:
    """Configuration for live streaming telemetry across the fork boundary.

    ``bus`` is the parent-side event bus fed by worker streams (one is
    created when omitted); attach sinks to it *before* ``run()`` to see
    events live. ``progress`` likewise defaults to a fresh
    :class:`~repro.obs.events.ProgressTracker` sized to the pair list,
    and ``on_progress`` is invoked (with the tracker) after every
    heartbeat — the CLI's streaming status line hangs off it.

    ``stall_timeout_s`` arms the watchdog (``None`` disables): a shard
    that produces neither events nor heartbeats for that long is
    declared stalled. Size it to comfortably exceed worker startup (the
    testbed rebuild emits nothing). ``drill_hang_after`` is fault
    injection for drills and tests: ``{shard: n}`` wedges that worker
    forever at its *n*-th pair start, after a forced heartbeat naming
    the in-flight pair — forked workers only.
    """

    bus: EventBus | None = None
    progress: ProgressTracker | None = None
    on_progress: Callable[[ProgressTracker], None] | None = None
    heartbeat_s: float = 1.0
    stall_timeout_s: float | None = 30.0
    postmortem_path: Path | None = None
    stream_min_severity: int = INFO
    ring_capacity: int = 512
    drill_hang_after: dict[int, int] = field(default_factory=dict)


class _WorkerTelemetry:
    """Worker-side sink: streams events and heartbeats to the parent.

    Attached to the worker's event bus inside :func:`_run_shard`. Every
    emitted event updates local progress counters (pair lifecycle from
    ``campaign`` events, probe totals from ``probe`` rounds, the
    in-flight label from pair/leg starts), rides the fork-boundary
    channel when at or above ``min_severity``, and gives the heartbeat
    pump a chance to fire. The simulator's per-batch hook calls
    :meth:`beat` too, so a worker grinding through one long simulator
    run still proves liveness between events.
    """

    def __init__(
        self,
        send: Callable[[tuple], None],
        shard: int,
        heartbeat_s: float,
        min_severity: int,
        hang_after: int = 0,
        wall: Callable[[], float] = time.monotonic,
    ) -> None:
        self.send = send
        self.shard = shard
        self.heartbeat_s = heartbeat_s
        self.min_severity = min_severity
        #: Fault-injection drill: wedge forever at the Nth pair start
        #: (0 disables).
        self.hang_after = hang_after
        self._wall = wall
        self._last_beat = float("-inf")
        self.pairs_total = 0
        self.pairs_done = 0
        self.pairs_failed = 0
        self.probes_sent = 0
        self.probes_saved = 0
        self.in_flight: str | None = None
        self._pair_starts = 0

    def __call__(self, event: Event) -> None:
        category, kind = event.category, event.kind
        hang = False
        if category == "campaign":
            if kind == "pair_started":
                self._pair_starts += 1
                x, y = event.fields.get("x"), event.fields.get("y")
                self.in_flight = f"pair {x}:{y}"
                hang = self._pair_starts == self.hang_after
            elif kind == "pair_measured":
                self.pairs_done += 1
                self.in_flight = None
            elif kind == "pair_failed":
                self.pairs_done += 1
                self.pairs_failed += 1
                self.in_flight = None
        elif category == "leg":
            if kind == "started":
                self.in_flight = f"leg {event.fields.get('relay')}"
            else:  # finished / failed
                self.in_flight = None
        elif category == "probe":
            if kind == "round_finished":
                self.probes_sent += int(event.fields.get("sent", 0))
                self.probes_saved += int(event.fields.get("saved", 0))
            elif kind == "round_failed":
                self.probes_sent += int(event.fields.get("sent", 0))
        if event.severity >= self.min_severity:
            self.send(("event", self.shard, event.to_dict()))
        self.beat(force=hang)
        if hang:
            self._hang()

    def beat(self, force: bool = False) -> None:
        """Send a heartbeat if ``heartbeat_s`` elapsed (or forced)."""
        now = self._wall()
        if not force and now - self._last_beat < self.heartbeat_s:
            return
        self._last_beat = now
        self.send(
            (
                "hb",
                self.shard,
                {
                    "pairs_done": self.pairs_done,
                    "pairs_failed": self.pairs_failed,
                    "pairs_total": self.pairs_total,
                    "probes_sent": self.probes_sent,
                    "probes_saved": self.probes_saved,
                    "in_flight": self.in_flight,
                },
            )
        )

    def _hang(self) -> None:
        # The drill: a forced heartbeat just named the in-flight pair;
        # now wedge so the parent's watchdog must notice the silence.
        while True:
            time.sleep(3600)


class _ShardMonitor:
    """Parent-side telemetry state: what the watchdog knows per shard.

    Streamed events land in a per-shard flight recorder *and* the
    parent bus (so sinks attached there see the whole campaign live);
    heartbeats update ``last_seen``, the progress tracker, and the
    in-flight labels the post-mortem names. The parent keeps its own
    recorders because a hung child's memory — including its local ring —
    is unreachable; what was streamed before the silence is all the
    forensics there is.
    """

    def __init__(
        self,
        telemetry: CampaignTelemetry,
        pairs_total: int,
        wall: Callable[[], float] = time.monotonic,
    ) -> None:
        self.telemetry = telemetry
        self.bus = telemetry.bus if telemetry.bus is not None else EventBus(
            capacity=4096
        )
        self.progress = (
            telemetry.progress
            if telemetry.progress is not None
            else ProgressTracker(pairs_total)
        )
        self._wall = wall
        self.recorders: dict[int, FlightRecorder] = {}
        self.last_seen: dict[int, float] = {}
        self.heartbeats: dict[int, dict[str, Any]] = {}

    def register(self, shard: int) -> None:
        """Start the liveness clock for one shard (at spawn time)."""
        self.last_seen[shard] = self._wall()
        self.recorders[shard] = FlightRecorder(
            capacity=self.telemetry.ring_capacity
        )

    def handle(self, msg: tuple) -> None:
        """Absorb one worker message (``hb`` or ``event``)."""
        kind, shard = msg[0], msg[1]
        self.last_seen[shard] = self._wall()
        if kind == "hb":
            payload = msg[2]
            self.heartbeats[shard] = payload
            self.progress.update_shard(
                shard,
                pairs_done=payload.get("pairs_done", 0),
                pairs_failed=payload.get("pairs_failed", 0),
                probes_sent=payload.get("probes_sent", 0),
                probes_saved=payload.get("probes_saved", 0),
                in_flight=payload.get("in_flight"),
            )
            if self.telemetry.on_progress is not None:
                self.telemetry.on_progress(self.progress)
        elif kind == "event":
            record = msg[2]
            recorder = self.recorders.get(shard)
            if recorder is not None:
                recorder.append(record)
            self.bus.ingest(record)

    def stalled(self, pending: set[int], now: float) -> list[tuple[int, float]]:
        """Pending shards silent past the deadline, worst first."""
        deadline = self.telemetry.stall_timeout_s
        if deadline is None:
            return []
        ages = [(now - self.last_seen.get(s, now), s) for s in pending]
        return [(s, age) for age, s in sorted(ages, reverse=True) if age > deadline]

    def stall_error(self, shard: int, age: float) -> MeasurementError:
        """Dump the post-mortem and build the categorized failure."""
        in_flight = (self.heartbeats.get(shard) or {}).get("in_flight")
        reason = (
            f"shard {shard} stalled: no heartbeat for {age:.1f}s "
            f"(deadline {self.telemetry.stall_timeout_s:.1f}s"
            + (f", in flight: {in_flight}" if in_flight else "")
            + ")"
        )
        self.bus.error(
            "shard", "watchdog_tripped",
            stalled_shard=shard, age_s=round(age, 2), in_flight=in_flight,
        )
        path = self.write_postmortem(shard, reason)
        return MeasurementError(f"{reason}; flight recorder dumped to {path}")

    def write_postmortem(self, shard: int, reason: str) -> Path:
        """Write the flight-recorder dump for a tripped watchdog."""
        path = self.telemetry.postmortem_path
        if path is None:
            path = Path("ting_postmortem.json")
        doc = {
            "reason": reason,
            "category": "stall",
            "stuck_shard": shard,
            "in_flight": (self.heartbeats.get(shard) or {}).get("in_flight"),
            "heartbeats": {str(s): hb for s, hb in sorted(self.heartbeats.items())},
            "progress": self.progress.snapshot(),
            "rings": {
                str(s): recorder.dump()
                for s, recorder in sorted(self.recorders.items())
            },
        }
        path.write_text(json.dumps(doc, indent=2), encoding="utf-8")
        return path


@dataclass
class ShardResult:
    """What one worker ships back to the parent: plain picklable data.

    The observability payloads are snapshots, not live objects — a
    metrics dict (:meth:`MetricsRegistry.snapshot`), a trace dict
    (:meth:`TraceLog.snapshot`), span record dicts, provenance dicts,
    and an event-bus dict (:meth:`EventBus.snapshot`). ``None`` means
    the shard ran without observability.
    """

    shard_index: int
    entries: list[tuple[str, str, float]]
    failures: list[tuple[str, str, str]]
    pairs_attempted: int
    events_processed: int
    cells_processed: int
    makespan_ms: Milliseconds
    wall_s: float
    probes_sent: int = 0
    probes_saved: int = 0
    early_stops: int = 0
    metrics: dict[str, Any] | None = None
    trace: dict[str, Any] | None = None
    spans: list[dict[str, Any]] | None = None
    provenance: list[dict[str, Any]] | None = None
    events: dict[str, Any] | None = None


@dataclass
class ShardedReport:
    """Outcome of a sharded campaign, merged across all workers.

    When the campaign ran with ``observe=True``, ``metrics``/``trace``/
    ``spans``/``provenance``/``events`` hold the *merged* observability
    state: counters summed, gauges maxed, histogram buckets summed, and
    every trace event, span, provenance record, and bus event tagged
    with the shard that produced it. Deterministic counters in the
    merged registry are invariant to the worker count.

    When the campaign ran with a :class:`CampaignTelemetry`, ``stream``
    is the parent-side bus fed live across the fork boundary and
    ``progress`` the final state of the progress tracker.
    """

    matrix: RttMatrix
    pairs_attempted: int = 0
    pairs_measured: int = 0
    failures: list[tuple[str, str, str]] = field(default_factory=list)
    shards: list[ShardResult] = field(default_factory=list)
    workers: int = 1
    events_processed: int = 0
    cells_processed: int = 0
    wall_s: float = 0.0
    probes_sent: int = 0
    probes_saved: int = 0
    early_stops: int = 0
    metrics: MetricsRegistry | None = None
    trace: TraceLog | None = None
    spans: SpanTracer | None = None
    provenance: ProvenanceLog | None = None
    events: EventBus | None = None
    stream: EventBus | None = None
    progress: ProgressTracker | None = None


def _run_shard(
    factory: Callable[[], object],
    fingerprints: list[str],
    shard_pairs: list[tuple[str, str]],
    policy: SamplePolicy | None,
    shard_index: int,
    observe: bool = False,
    telemetry: _WorkerTelemetry | None = None,
) -> ShardResult:
    """Worker entry point: rebuild the world, measure one pair shard.

    Module-level (not a closure) so the fork context can inherit it.
    The testbed factory must rebuild the *same* seeded world in every
    worker — descriptors are then re-selected by fingerprint, so the
    shard measures exactly the relays the parent asked about.

    With ``observe`` the worker enables observability on its rebuilt
    host and ships snapshots home instead of letting the live registry,
    trace, spans, provenance, and event ring die with the process.

    With ``telemetry`` (a :class:`_WorkerTelemetry` whose ``send`` is
    already bound to the parent's channel) the worker wires a live
    event bus regardless of ``observe``, attaches the streaming sink,
    and pumps heartbeats from the simulator's per-batch hook.
    """
    from repro.core.parallel import ParallelCampaign

    if telemetry is not None:
        # Birth heartbeat before the (silent) testbed rebuild, so the
        # liveness clock starts at spawn rather than first measurement.
        telemetry.beat(force=True)
    started = time.perf_counter()
    testbed = factory()
    by_fp = {relay.fingerprint: relay for relay in testbed.relays}
    missing = [fp for fp in fingerprints if fp not in by_fp]
    if missing:
        raise MeasurementError(
            f"factory-built testbed lacks relays {missing[:3]}"
            f"{'...' if len(missing) > 3 else ''}"
        )
    host = testbed.measurement
    if observe:
        host.enable_observability()
    if telemetry is not None:
        bus = host.events if host.events.enabled else host.enable_events()
        bus.shard = shard_index
        telemetry.pairs_total = len(shard_pairs)
        bus.add_sink(telemetry)
        testbed.sim.on_batch = telemetry.beat
    elif observe:
        host.events.shard = shard_index
    descriptors = [by_fp[fp].descriptor() for fp in fingerprints]
    campaign = ParallelCampaign(
        testbed.measurement,
        descriptors,
        policy=policy,
        pairs=shard_pairs,
        isolation=testbed.task_isolation(),
    )
    report = campaign.run()
    cells = sum(relay.cells_processed for relay in testbed.relays)
    cells += testbed.measurement.relay_w.cells_processed
    cells += testbed.measurement.relay_z.cells_processed
    if telemetry is not None:
        # Final forced beat so the parent's tracker lands on 100%.
        telemetry.beat(force=True)
    return ShardResult(
        shard_index=shard_index,
        entries=list(report.matrix.measured_pairs()),
        failures=list(report.failures),
        pairs_attempted=report.pairs_attempted,
        events_processed=testbed.sim.events_processed,
        cells_processed=cells,
        makespan_ms=report.makespan_ms,
        wall_s=time.perf_counter() - started,
        probes_sent=report.probes_sent,
        probes_saved=report.probes_saved,
        early_stops=report.early_stops,
        metrics=host.metrics.snapshot() if observe else None,
        trace=host.trace.snapshot() if observe else None,
        spans=host.spans.records() if observe else None,
        provenance=host.provenance.to_list() if observe else None,
        events=host.events.snapshot() if observe else None,
    )


def _shard_entry(
    channel: Any,
    job: tuple,
    telemetry: _WorkerTelemetry | None,
) -> None:
    """Forked-process target: run one shard, ship the outcome home.

    Exceptions cross the fork boundary as ``("error", shard, reason)``
    messages — the parent re-raises them as one MeasurementError, which
    is how a worker that cannot rebuild its testbed fails the campaign
    instead of hanging it.
    """
    shard_index = job[4]
    try:
        result = _run_shard(*job, telemetry=telemetry)
    except BaseException as exc:  # noqa: BLE001 — serialized for the parent
        channel.put(("error", shard_index, f"{type(exc).__name__}: {exc}"))
    else:
        channel.put(("result", shard_index, result))


class ShardedCampaign:
    """All-pairs Ting campaign partitioned across worker processes.

    ``factory`` is any zero-argument picklable callable returning a
    testbed with ``relays``, ``measurement``, ``sim``, and
    ``task_isolation()`` — in practice ``functools.partial(
    LiveTorTestbed.build, seed=..., n_relays=...)``. ``fingerprints``
    names the relay subset to measure (order fixes the matrix's node
    order). ``pairs`` optionally restricts the campaign to a pair
    subset; by default all C(n,2) pairs are measured.

    ``telemetry`` opts into live streaming (heartbeats, watchdog,
    progress — see :class:`CampaignTelemetry`); ``worker_timeout_s``
    bounds forked-worker wall time independently of telemetry, so an
    OS-killed or runaway worker fails the campaign with its shard index
    instead of blocking ``run()`` forever.
    """

    #: Parent poll cadence: how often liveness/deadline checks run.
    _POLL_S = 0.05
    #: How long a dead worker's queued messages get to drain before the
    #: parent declares it died without a result.
    _DEATH_GRACE_S = 1.0

    def __init__(
        self,
        factory: Callable[[], object],
        fingerprints: Sequence[str],
        policy: SamplePolicy | None = None,
        workers: int = 4,
        pairs: Sequence[tuple[str, str]] | None = None,
        observe: bool = False,
        telemetry: CampaignTelemetry | None = None,
        worker_timeout_s: float | None = None,
    ) -> None:
        if len(fingerprints) < 2:
            raise MeasurementError("need at least two relays for a campaign")
        if len(set(fingerprints)) != len(fingerprints):
            raise MeasurementError("duplicate fingerprints in campaign set")
        if workers < 0:
            raise MeasurementError("workers must be >= 0")
        if worker_timeout_s is not None and worker_timeout_s <= 0:
            raise MeasurementError("worker_timeout_s must be positive")
        self.factory = factory
        self.fingerprints = list(fingerprints)
        self.policy = policy
        self.workers = workers
        #: Enable observability in every worker and merge the snapshots
        #: into one registry/trace/span/provenance/event set on the report.
        self.observe = observe
        self.telemetry = telemetry
        self.worker_timeout_s = worker_timeout_s
        if pairs is None:
            self.pairs = [
                (a, b)
                for i, a in enumerate(self.fingerprints)
                for b in self.fingerprints[i + 1 :]
            ]
        else:
            known = set(self.fingerprints)
            for a, b in pairs:
                if a == b or a not in known or b not in known:
                    raise MeasurementError(f"invalid campaign pair ({a}, {b})")
            self.pairs = list(pairs)

    def shard_pairs(self) -> list[list[tuple[str, str]]]:
        """Round-robin partition of the pair list, one shard per worker.

        Round-robin (``pairs[i::n]``) balances the work better than
        contiguous chunks: expensive relays (slow forwarding models)
        cluster in the pair list, and striping spreads them out.
        """
        n_shards = max(1, self.workers)
        shards = [self.pairs[i::n_shards] for i in range(n_shards)]
        return [shard for shard in shards if shard]

    def run(self) -> ShardedReport:
        """Measure every pair; merge the per-shard results."""
        started = time.perf_counter()
        shards = self.shard_pairs()
        jobs = [
            (self.factory, self.fingerprints, shard, self.policy, index, self.observe)
            for index, shard in enumerate(shards)
        ]
        if self.workers <= 1 or len(jobs) <= 1:
            if self.telemetry is not None and self.telemetry.drill_hang_after:
                raise MeasurementError(
                    "drill_hang_after requires forked workers (workers >= 2); "
                    "an inline drill would wedge the parent process"
                )
            results, monitor = self._run_inline(jobs)
        else:
            results, monitor = self._run_forked(jobs)
        report = self._merge(results)
        if monitor is not None:
            report.stream = monitor.bus
            report.progress = monitor.progress
        report.wall_s = time.perf_counter() - started
        return report

    def _worker_telemetry(
        self, shard: int, send: Callable[[tuple], None]
    ) -> _WorkerTelemetry:
        telemetry = self.telemetry
        return _WorkerTelemetry(
            send=send,
            shard=shard,
            heartbeat_s=telemetry.heartbeat_s,
            min_severity=telemetry.stream_min_severity,
            hang_after=telemetry.drill_hang_after.get(shard, 0),
        )

    def _run_inline(
        self, jobs: list[tuple]
    ) -> tuple[list[ShardResult], _ShardMonitor | None]:
        """Run every shard in-process, streaming straight to the monitor.

        The same :class:`_WorkerTelemetry` sink runs with ``send`` bound
        directly to the monitor's handler, so streamed event counts and
        progress totals are produced by the identical code path as the
        forked mode — the worker-count-invariance tests rely on that.
        """
        monitor = (
            _ShardMonitor(self.telemetry, len(self.pairs))
            if self.telemetry is not None
            else None
        )
        results = []
        for job in jobs:
            telemetry = None
            if monitor is not None:
                monitor.register(job[4])
                telemetry = self._worker_telemetry(job[4], monitor.handle)
            results.append(_run_shard(*job, telemetry=telemetry))
        return results, monitor

    def _run_forked(
        self, jobs: list[tuple]
    ) -> tuple[list[ShardResult], _ShardMonitor | None]:
        """Fork one worker per shard; poll one queue for everything.

        The single channel carries four message kinds — ``hb``,
        ``event``, ``result``, ``error`` — so ordering per worker is
        preserved and the parent's poll loop doubles as the liveness
        clock: every ``queue.get`` timeout is a chance to notice a dead
        worker, a blown deadline, or a stalled heartbeat.
        """
        ctx = multiprocessing.get_context("fork")
        channel = ctx.Queue()
        monitor = (
            _ShardMonitor(self.telemetry, len(self.pairs))
            if self.telemetry is not None
            else None
        )
        procs: dict[int, Any] = {}
        for job in jobs:
            shard = job[4]
            telemetry = None
            if monitor is not None:
                monitor.register(shard)
                telemetry = self._worker_telemetry(shard, channel.put)
            procs[shard] = ctx.Process(
                target=_shard_entry, args=(channel, job, telemetry), daemon=True
            )
        started = time.monotonic()
        for proc in procs.values():
            proc.start()
        pending = set(procs)
        results: dict[int, ShardResult] = {}
        dead_since: dict[int, float] = {}
        try:
            while pending:
                try:
                    msg = channel.get(timeout=self._POLL_S)
                except Empty:
                    msg = None
                if msg is not None:
                    kind, shard = msg[0], msg[1]
                    if kind == "result":
                        results[shard] = msg[2]
                        pending.discard(shard)
                    elif kind == "error":
                        raise MeasurementError(
                            f"shard {shard} worker failed: {msg[2]}"
                        )
                    elif monitor is not None:
                        monitor.handle(msg)
                now = time.monotonic()
                # A worker the OS killed never sends anything again:
                # notice the corpse (after a short drain grace for any
                # queued result) instead of waiting out the deadline.
                for shard in sorted(pending):
                    if procs[shard].is_alive():
                        dead_since.pop(shard, None)
                    elif now - dead_since.setdefault(shard, now) > self._DEATH_GRACE_S:
                        raise MeasurementError(
                            f"shard {shard} worker died without a result "
                            f"(exit code {procs[shard].exitcode})"
                        )
                if (
                    self.worker_timeout_s is not None
                    and now - started > self.worker_timeout_s
                ):
                    shard = min(pending)
                    raise MeasurementError(
                        f"shard {shard} worker exceeded the "
                        f"{self.worker_timeout_s:.1f}s deadline "
                        f"({len(pending)} shard(s) unfinished)"
                    )
                if monitor is not None:
                    stalled = monitor.stalled(pending, now)
                    if stalled:
                        raise monitor.stall_error(*stalled[0])
            # Results are in; drain trailing heartbeats/events so the
            # final progress totals and stream counts are complete.
            while True:
                try:
                    msg = channel.get_nowait()
                except Empty:
                    break
                if monitor is not None and msg[0] in ("hb", "event"):
                    monitor.handle(msg)
            for proc in procs.values():
                proc.join(timeout=5.0)
        finally:
            for proc in procs.values():
                if proc.is_alive():
                    proc.terminate()
            for proc in procs.values():
                proc.join(timeout=1.0)
            channel.close()
        return [results[shard] for shard in sorted(results)], monitor

    def _merge(self, results: list[ShardResult]) -> ShardedReport:
        matrix = RttMatrix(self.fingerprints)
        report = ShardedReport(matrix=matrix, workers=max(1, self.workers))
        if self.observe:
            report.metrics = MetricsRegistry()
            report.trace = TraceLog()
            report.spans = SpanTracer()
            report.provenance = ProvenanceLog()
            report.events = EventBus(capacity=4096)
        for result in sorted(results, key=lambda r: r.shard_index):
            for a, b, rtt in result.entries:
                if matrix.has(a, b):
                    raise MeasurementError(
                        f"pair ({a}, {b}) measured by two shards"
                    )
                matrix.set(a, b, rtt)
            report.failures.extend(result.failures)
            report.pairs_attempted += result.pairs_attempted
            report.events_processed += result.events_processed
            report.cells_processed += result.cells_processed
            report.probes_sent += result.probes_sent
            report.probes_saved += result.probes_saved
            report.early_stops += result.early_stops
            report.shards.append(result)
            self._merge_observability(report, result)
        report.pairs_measured = matrix.num_measured
        return report

    @staticmethod
    def _merge_observability(report: ShardedReport, result: ShardResult) -> None:
        """Fold one shard's observability snapshots into the report.

        Counter-sum / gauge-max / histogram-bucket-sum for metrics;
        trace events, spans, provenance records, and event-bus rings are
        adopted with a ``shard`` tag so per-worker attribution survives
        the merge. Event counts sum per ``(category, severity)``.
        """
        if result.metrics is not None and report.metrics is not None:
            report.metrics.merge(MetricsRegistry.from_snapshot(result.metrics))
        if result.trace is not None and report.trace is not None:
            for entry in result.trace.get("events", []):
                entry = dict(entry)
                time_ms = entry.pop("time_ms")
                kind = entry.pop("kind")
                entry.setdefault("shard", result.shard_index)
                report.trace.record(time_ms, kind, **entry)
            report.trace.dropped += int(result.trace.get("dropped", 0))
        if result.spans is not None and report.spans is not None:
            report.spans.merge(result.spans, shard=result.shard_index)
        if result.provenance is not None and report.provenance is not None:
            report.provenance.merge(result.provenance, shard=result.shard_index)
        if result.events is not None and report.events is not None:
            report.events.merge_snapshot(result.events, shard=result.shard_index)
