"""Sharded all-pairs campaigns across worker processes.

A single :class:`~repro.core.parallel.ParallelCampaign` is bound to one
Python process; an all-pairs matrix over hundreds of relays is hours of
single-core event processing. The measurements themselves are
embarrassingly parallel, so :class:`ShardedCampaign` splits the C(n,2)
pair list round-robin across worker processes. Each worker rebuilds the
*identical* seeded testbed from a picklable factory, runs a
:class:`~repro.core.parallel.ParallelCampaign` restricted to its pair
shard, and ships its measured entries back; the parent merges them into
one :class:`~repro.core.dataset.RttMatrix`.

The merged matrix is **invariant to the shard count**: every worker runs
its tasks under :class:`~repro.core.parallel.TaskIsolation`, which makes
each task's samples a pure function of ``(root seed, task key)`` — so it
cannot matter which process a task landed in or which tasks ran before
it. ``ShardedCampaign(workers=1)`` therefore produces bit-for-bit the
same matrix as ``workers=4``, and the same as an unsharded
``ParallelCampaign`` running with the same isolation recipe.

Workers are forked (``multiprocessing`` fork context) so the factory and
policy only need to be picklable — ``functools.partial(
LiveTorTestbed.build, seed=..., n_relays=...)`` works as-is. Set
``workers=0`` (or run on a platform without fork) to execute every shard
inline in the parent process, which is also how the invariance tests
compare shard counts deterministically.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.dataset import ProvenanceLog, RttMatrix
from repro.core.sampling import SamplePolicy
from repro.obs import MetricsRegistry, SpanTracer, TraceLog
from repro.util.errors import MeasurementError
from repro.util.units import Milliseconds


@dataclass
class ShardResult:
    """What one worker ships back to the parent: plain picklable data.

    The observability payloads are snapshots, not live objects — a
    metrics dict (:meth:`MetricsRegistry.snapshot`), a trace dict
    (:meth:`TraceLog.snapshot`), span record dicts, and provenance
    dicts. ``None`` means the shard ran without observability.
    """

    shard_index: int
    entries: list[tuple[str, str, float]]
    failures: list[tuple[str, str, str]]
    pairs_attempted: int
    events_processed: int
    cells_processed: int
    makespan_ms: Milliseconds
    wall_s: float
    probes_sent: int = 0
    probes_saved: int = 0
    early_stops: int = 0
    metrics: dict[str, Any] | None = None
    trace: dict[str, Any] | None = None
    spans: list[dict[str, Any]] | None = None
    provenance: list[dict[str, Any]] | None = None


@dataclass
class ShardedReport:
    """Outcome of a sharded campaign, merged across all workers.

    When the campaign ran with ``observe=True``, ``metrics``/``trace``/
    ``spans``/``provenance`` hold the *merged* observability state:
    counters summed, gauges maxed, histogram buckets summed, and every
    trace event, span, and provenance record tagged with the shard that
    produced it. Deterministic counters in the merged registry are
    invariant to the worker count.
    """

    matrix: RttMatrix
    pairs_attempted: int = 0
    pairs_measured: int = 0
    failures: list[tuple[str, str, str]] = field(default_factory=list)
    shards: list[ShardResult] = field(default_factory=list)
    workers: int = 1
    events_processed: int = 0
    cells_processed: int = 0
    wall_s: float = 0.0
    probes_sent: int = 0
    probes_saved: int = 0
    early_stops: int = 0
    metrics: MetricsRegistry | None = None
    trace: TraceLog | None = None
    spans: SpanTracer | None = None
    provenance: ProvenanceLog | None = None


def _run_shard(
    factory: Callable[[], object],
    fingerprints: list[str],
    shard_pairs: list[tuple[str, str]],
    policy: SamplePolicy | None,
    shard_index: int,
    observe: bool = False,
) -> ShardResult:
    """Worker entry point: rebuild the world, measure one pair shard.

    Module-level (not a closure) so the fork/spawn pool can pickle it.
    The testbed factory must rebuild the *same* seeded world in every
    worker — descriptors are then re-selected by fingerprint, so the
    shard measures exactly the relays the parent asked about.

    With ``observe`` the worker enables observability on its rebuilt
    host and ships snapshots home instead of letting the live registry,
    trace, spans, and provenance die with the process.
    """
    from repro.core.parallel import ParallelCampaign

    started = time.perf_counter()
    testbed = factory()
    by_fp = {relay.fingerprint: relay for relay in testbed.relays}
    missing = [fp for fp in fingerprints if fp not in by_fp]
    if missing:
        raise MeasurementError(
            f"factory-built testbed lacks relays {missing[:3]}"
            f"{'...' if len(missing) > 3 else ''}"
        )
    if observe:
        testbed.measurement.enable_observability()
    descriptors = [by_fp[fp].descriptor() for fp in fingerprints]
    campaign = ParallelCampaign(
        testbed.measurement,
        descriptors,
        policy=policy,
        pairs=shard_pairs,
        isolation=testbed.task_isolation(),
    )
    report = campaign.run()
    cells = sum(relay.cells_processed for relay in testbed.relays)
    cells += testbed.measurement.relay_w.cells_processed
    cells += testbed.measurement.relay_z.cells_processed
    host = testbed.measurement
    return ShardResult(
        shard_index=shard_index,
        entries=list(report.matrix.measured_pairs()),
        failures=list(report.failures),
        pairs_attempted=report.pairs_attempted,
        events_processed=testbed.sim.events_processed,
        cells_processed=cells,
        makespan_ms=report.makespan_ms,
        wall_s=time.perf_counter() - started,
        probes_sent=report.probes_sent,
        probes_saved=report.probes_saved,
        early_stops=report.early_stops,
        metrics=host.metrics.snapshot() if observe else None,
        trace=host.trace.snapshot() if observe else None,
        spans=host.spans.records() if observe else None,
        provenance=host.provenance.to_list() if observe else None,
    )


class ShardedCampaign:
    """All-pairs Ting campaign partitioned across worker processes.

    ``factory`` is any zero-argument picklable callable returning a
    testbed with ``relays``, ``measurement``, ``sim``, and
    ``task_isolation()`` — in practice ``functools.partial(
    LiveTorTestbed.build, seed=..., n_relays=...)``. ``fingerprints``
    names the relay subset to measure (order fixes the matrix's node
    order). ``pairs`` optionally restricts the campaign to a pair
    subset; by default all C(n,2) pairs are measured.
    """

    def __init__(
        self,
        factory: Callable[[], object],
        fingerprints: Sequence[str],
        policy: SamplePolicy | None = None,
        workers: int = 4,
        pairs: Sequence[tuple[str, str]] | None = None,
        observe: bool = False,
    ) -> None:
        if len(fingerprints) < 2:
            raise MeasurementError("need at least two relays for a campaign")
        if len(set(fingerprints)) != len(fingerprints):
            raise MeasurementError("duplicate fingerprints in campaign set")
        if workers < 0:
            raise MeasurementError("workers must be >= 0")
        self.factory = factory
        self.fingerprints = list(fingerprints)
        self.policy = policy
        self.workers = workers
        #: Enable observability in every worker and merge the snapshots
        #: into one registry/trace/span/provenance set on the report.
        self.observe = observe
        if pairs is None:
            self.pairs = [
                (a, b)
                for i, a in enumerate(self.fingerprints)
                for b in self.fingerprints[i + 1 :]
            ]
        else:
            known = set(self.fingerprints)
            for a, b in pairs:
                if a == b or a not in known or b not in known:
                    raise MeasurementError(f"invalid campaign pair ({a}, {b})")
            self.pairs = list(pairs)

    def shard_pairs(self) -> list[list[tuple[str, str]]]:
        """Round-robin partition of the pair list, one shard per worker.

        Round-robin (``pairs[i::n]``) balances the work better than
        contiguous chunks: expensive relays (slow forwarding models)
        cluster in the pair list, and striping spreads them out.
        """
        n_shards = max(1, self.workers)
        shards = [self.pairs[i::n_shards] for i in range(n_shards)]
        return [shard for shard in shards if shard]

    def run(self) -> ShardedReport:
        """Measure every pair; merge the per-shard results."""
        started = time.perf_counter()
        shards = self.shard_pairs()
        jobs = [
            (self.factory, self.fingerprints, shard, self.policy, index, self.observe)
            for index, shard in enumerate(shards)
        ]
        if self.workers <= 1 or len(jobs) <= 1:
            results = [_run_shard(*job) for job in jobs]
        else:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=len(jobs)) as pool:
                results = pool.starmap(_run_shard, jobs)
        report = self._merge(results)
        report.wall_s = time.perf_counter() - started
        return report

    def _merge(self, results: list[ShardResult]) -> ShardedReport:
        matrix = RttMatrix(self.fingerprints)
        report = ShardedReport(matrix=matrix, workers=max(1, self.workers))
        if self.observe:
            report.metrics = MetricsRegistry()
            report.trace = TraceLog()
            report.spans = SpanTracer()
            report.provenance = ProvenanceLog()
        for result in sorted(results, key=lambda r: r.shard_index):
            for a, b, rtt in result.entries:
                if matrix.has(a, b):
                    raise MeasurementError(
                        f"pair ({a}, {b}) measured by two shards"
                    )
                matrix.set(a, b, rtt)
            report.failures.extend(result.failures)
            report.pairs_attempted += result.pairs_attempted
            report.events_processed += result.events_processed
            report.cells_processed += result.cells_processed
            report.probes_sent += result.probes_sent
            report.probes_saved += result.probes_saved
            report.early_stops += result.early_stops
            report.shards.append(result)
            self._merge_observability(report, result)
        report.pairs_measured = matrix.num_measured
        return report

    @staticmethod
    def _merge_observability(report: ShardedReport, result: ShardResult) -> None:
        """Fold one shard's observability snapshots into the report.

        Counter-sum / gauge-max / histogram-bucket-sum for metrics;
        trace events, spans, and provenance records are adopted with a
        ``shard`` tag so per-worker attribution survives the merge.
        """
        if result.metrics is not None and report.metrics is not None:
            report.metrics.merge(MetricsRegistry.from_snapshot(result.metrics))
        if result.trace is not None and report.trace is not None:
            for entry in result.trace.get("events", []):
                entry = dict(entry)
                time_ms = entry.pop("time_ms")
                kind = entry.pop("kind")
                entry.setdefault("shard", result.shard_index)
                report.trace.record(time_ms, kind, **entry)
            report.trace.dropped += int(result.trace.get("dropped", 0))
        if result.spans is not None and report.spans is not None:
            report.spans.merge(result.spans, shard=result.shard_index)
        if result.provenance is not None and report.provenance is not None:
            report.provenance.merge(result.provenance, shard=result.shard_index)
