"""Sample policies and minimum-filter estimation.

Ting's estimator is the *minimum* of many RTT samples per circuit
(Section 3.3): forwarding delays and queueing are strictly additive
noise, so the minimum converges on the propagation floor. Section 4.4
studies how fast: reaching the true 1000-sample minimum is slow, but
getting within 1 ms takes ~25x fewer probes at the median.

:func:`convergence_profile` reproduces that analysis for any sample
trace, and :class:`SamplePolicy` packages the speed/accuracy trade-off
(200 samples for high accuracy, ~10 for a 15-second measurement at ~5%
error — the Section 4.4 operating points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import MeasurementError
from repro.util.units import Milliseconds


@dataclass(frozen=True)
class SamplePolicy:
    """How many echo samples to take per circuit, and how spaced.

    ``interval_ms=None`` selects serial ping-pong probing (each probe
    sent when the previous reply lands) — the paper's measurement loop,
    used when simulated wall-clock cost must be faithful.
    """

    samples: int = 200
    interval_ms: Milliseconds | None = 5.0
    timeout_ms: Milliseconds = 600_000.0

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise MeasurementError("samples must be >= 1")
        if self.interval_ms is not None and self.interval_ms < 0:
            raise MeasurementError("interval must be non-negative")

    @classmethod
    def serial(cls, samples: int = 200) -> "SamplePolicy":
        """Ping-pong pacing at a given sample count."""
        return cls(samples=samples, interval_ms=None)

    @classmethod
    def high_accuracy(cls) -> "SamplePolicy":
        """The paper's validated default: 200 samples per circuit."""
        return cls(samples=200)

    @classmethod
    def exhaustive(cls) -> "SamplePolicy":
        """The 1000-sample policy used for the Figure 3 ground-truthing."""
        return cls(samples=1000)

    @classmethod
    def fast(cls) -> "SamplePolicy":
        """The ~15-second operating point (accepting ~5% error)."""
        return cls(samples=10)


def min_estimate(samples: list[Milliseconds] | np.ndarray) -> Milliseconds:
    """Ting's estimator: the minimum of the RTT samples."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise MeasurementError("cannot estimate from zero samples")
    if np.any(arr < 0):
        raise MeasurementError("negative RTT sample")
    return float(arr.min())


def running_minimum(samples: list[Milliseconds] | np.ndarray) -> np.ndarray:
    """The prefix-minimum sequence of a sample trace."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise MeasurementError("cannot compute running minimum of zero samples")
    return np.minimum.accumulate(arr)


def samples_to_within(
    samples: list[Milliseconds] | np.ndarray,
    absolute_ms: Milliseconds | None = None,
    relative: float | None = None,
) -> int:
    """How many samples until the running minimum is within a tolerance
    of the full-trace minimum.

    Exactly one of ``absolute_ms`` (e.g. 1.0 for "within 1 ms") or
    ``relative`` (e.g. 0.05 for "within 5%") must be given. Returns a
    1-based sample count.
    """
    if (absolute_ms is None) == (relative is None):
        raise MeasurementError("pass exactly one of absolute_ms / relative")
    prefix = running_minimum(samples)
    floor = prefix[-1]
    threshold = floor + absolute_ms if absolute_ms is not None else floor * (1.0 + relative)
    hits = np.nonzero(prefix <= threshold)[0]
    return int(hits[0]) + 1


def convergence_profile(
    samples: list[Milliseconds] | np.ndarray,
) -> dict[str, int]:
    """The Figure 6 statistics for one sample trace.

    Returns the number of samples needed to reach the measured minimum
    exactly, and to get within 1 ms / 1% / 5% / 10% of it.
    """
    arr = np.asarray(samples, dtype=float)
    return {
        "measured_min": samples_to_within(arr, absolute_ms=0.0),
        "within_1ms": samples_to_within(arr, absolute_ms=1.0),
        "within_1pct": samples_to_within(arr, relative=0.01),
        "within_5pct": samples_to_within(arr, relative=0.05),
        "within_10pct": samples_to_within(arr, relative=0.10),
    }
