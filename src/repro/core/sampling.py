"""Sample policies and minimum-filter estimation.

Ting's estimator is the *minimum* of many RTT samples per circuit
(Section 3.3): forwarding delays and queueing are strictly additive
noise, so the minimum converges on the propagation floor. Section 4.4
studies how fast: reaching the true 1000-sample minimum is slow, but
getting within 1 ms takes ~25x fewer probes at the median.

:func:`convergence_profile` reproduces that analysis for any sample
trace, and :class:`SamplePolicy` packages the speed/accuracy trade-off
(200 samples for high accuracy, ~10 for a 15-second measurement at ~5%
error — the Section 4.4 operating points).

:class:`AdaptiveSpec` turns the convergence analysis into a *live*
stopping rule: instead of a fixed count, a probe run terminates once its
running minimum has plateaued — no sample in the last ``patience``
probes improved the minimum by more than the declared tolerance — and
the spread of the ``confirm_k`` smallest samples confirms the minimum
is actually near its floor. :class:`ConvergenceTracker` is the
O(1)-per-sample engine behind it, designed for the echo client's
per-reply hot path (no numpy, no allocation). Early-stopped estimates
are *debiased* (:func:`debiased_min_estimate`): the gap to the full-cap
minimum is one-sided with a known logarithmic shape, so the estimator
subtracts its expectation instead of spending the declared tolerance
on it.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass

import numpy as np

from repro.util.errors import MeasurementError
from repro.util.units import Milliseconds

#: Floor for relative tolerances: a trace whose minimum approaches 0 ms
#: (co-located hosts) would otherwise demand improvements smaller than
#: ``0 * relative == 0`` — i.e. never plateau (and, in
#: :func:`samples_to_within`, declare the first sample converged). One
#: microsecond is far below both the simulator's delay resolution and
#: any real kernel timestamp.
RELATIVE_TOLERANCE_FLOOR_MS: Milliseconds = 1e-3


@dataclass(frozen=True)
class AdaptiveSpec:
    """Convergence-triggered stopping rule for one probe run.

    Exactly one of ``absolute_ms`` ("stop when the minimum has stopped
    moving by more than 1 ms") or ``relative`` ("... by more than 5% of
    the current minimum") must be set — the same two tolerance families
    Section 4.4 studies. A run stops once

    * at least ``min_samples`` replies have arrived, and
    * the running minimum has not fallen by more than the tolerance
      over the last ``patience`` replies — *cumulatively*: slow
      circuits descend in staircases of individually sub-tolerance
      steps, so the window compares against the minimum at the window's
      start, not step by step (a per-step test sleeps through a
      multi-ms staircase without ever seeing a "meaningful"
      improvement), and
    * the spread of the ``confirm_k`` smallest samples confirms the
      minimum is near its floor (see below).

    A plateau alone cannot distinguish "converged" from "high-jitter
    circuit whose minimum is still far above its floor" — the latter can
    sit still for tens of samples and then improve by several ms. The
    prefix does carry that information: RTT samples are the propagation
    floor plus additive queueing noise, and for i.i.d. noise the mean
    spacing of the lowest order statistics matches the minimum's
    expected excess over the floor. ``(x_(k) − x_(1)) / (k − 1)`` is
    therefore an online estimate of how much the minimum still has to
    fall; the tracker refuses to stop while it exceeds the tolerance.
    That gates exactly the runs that need more probes, which is what
    lets ``patience`` stay short for the well-behaved majority.

    The policy's ``samples`` field remains the hard cap (the fixed-count
    behaviour is recovered exactly when the stopping rule never fires).
    """

    absolute_ms: Milliseconds | None = None
    relative: float | None = None
    min_samples: int = 10
    patience: int = 30
    #: Extra plateau patience per millisecond of the running minimum.
    #: A circuit's floor shows only when *every* hop dodges queueing at
    #: once, and that per-sample probability decays with path length —
    #: so the quiet window needed to trust a minimum grows with the RTT
    #: being measured. Short circuits keep the base ``patience``; a
    #: 300 ms circuit at 0.15/ms waits through a ~45-sample-longer
    #: window before declaring convergence.
    patience_per_ms: float = 0.0
    #: Size of the order-statistics confirmation window; the run cannot
    #: stop before ``confirm_k`` samples have arrived.
    confirm_k: int = 5
    #: Safety factor on the confirmation: stop only once the estimated
    #: excess times this margin is within the tolerance. The
    #: mean-spacing estimate is unbiased for exponential noise but
    #: *under*-estimates the excess when the noise density vanishes at
    #: the floor — circuit jitter is a sum of per-hop terms, so the
    #: lowest order statistics bunch together several times tighter
    #: than the distance they still have to fall. Bounding the *worst*
    #: pair of a C(n,2) campaign also needs per-run miss probability
    #: well below 1/pairs, hence a margin rather than a point estimate.
    confirm_margin: float = 1.0
    #: Remaining-excess correction, as a fraction of the tolerance.
    #: A min-filter over sum-of-per-hop jitter converges like
    #: ``excess(n) ~ c * ln(cap / n)`` — every stop short of the cap
    #: leaves a *one-sided* gap above the full-cap minimum (the early
    #: trace is an exact prefix of the long one, so the gap is never
    #: negative). Reporting the raw minimum therefore wastes half the
    #: declared tolerance on a bias with a known sign and shape;
    #: :meth:`excess_correction_ms` subtracts the expected gap instead,
    #: recentering the error around zero. ``0.0`` (the default) keeps
    #: the raw minimum. The correction vanishes smoothly as the stop
    #: approaches the cap, so a run that never converges stays
    #: bit-identical to the fixed policy.
    debias: float = 0.0

    def __post_init__(self) -> None:
        if (self.absolute_ms is None) == (self.relative is None):
            raise MeasurementError("pass exactly one of absolute_ms / relative")
        if self.absolute_ms is not None and self.absolute_ms < 0:
            raise MeasurementError("absolute tolerance must be non-negative")
        if self.relative is not None and self.relative <= 0:
            raise MeasurementError("relative tolerance must be positive")
        if self.min_samples < 1:
            raise MeasurementError("min_samples must be >= 1")
        if self.patience < 1:
            raise MeasurementError("patience must be >= 1")
        if self.patience_per_ms < 0:
            raise MeasurementError("patience_per_ms must be non-negative")
        if self.confirm_k < 2:
            raise MeasurementError("confirm_k must be >= 2")
        if self.confirm_margin < 1.0:
            raise MeasurementError("confirm_margin must be >= 1")
        if self.debias < 0:
            raise MeasurementError("debias must be non-negative")

    @property
    def tolerance_label(self) -> str:
        """Human-readable tolerance, e.g. ``"1ms"`` or ``"5%"``."""
        if self.absolute_ms is not None:
            return f"{self.absolute_ms:g}ms"
        return f"{self.relative * 100:g}%"

    def tolerance_ms(self, current_min: Milliseconds) -> Milliseconds:
        """The improvement size that counts as *meaningful* right now.

        Relative tolerances scale with the current minimum and are
        clamped at :data:`RELATIVE_TOLERANCE_FLOOR_MS` so a near-zero
        floor cannot demand infinitesimal improvements forever.
        """
        if self.absolute_ms is not None:
            return self.absolute_ms
        return max(current_min * self.relative, RELATIVE_TOLERANCE_FLOOR_MS)

    def excess_correction_ms(
        self, kept: int, cap: int, minimum: Milliseconds
    ) -> Milliseconds:
        """Expected gap between this run's minimum and the full-cap one.

        The running minimum of i.i.d. floor-plus-additive-jitter samples
        whose density vanishes polynomially at the floor (any sum of
        per-hop exponential terms) decays like ``c * ln(cap / n)`` — the
        ratio of the remaining fall to the fall already logged per
        e-fold of samples is scale-free. The correction is that log
        term, scaled by ``debias`` times the declared tolerance,
        normalised so a stop right at ``min_samples`` gets the full
        ``debias`` fraction, and clamped to one tolerance so the
        corrected estimate can never undershoot the fixed-policy value
        by more than the accuracy the policy promises. Zero at the cap:
        a complete trace needs no correction.
        """
        if self.debias == 0.0 or kept >= cap:
            return 0.0
        span = math.log(cap / max(self.min_samples, 1))
        if span <= 0.0:
            return 0.0
        fraction = math.log(cap / kept) / span
        tolerance = self.tolerance_ms(minimum)
        return min(self.debias * tolerance * min(fraction, 1.0), tolerance)

    def make_tracker(self) -> "ConvergenceTracker":
        """A fresh per-run tracker. The echo client calls this rather
        than importing :class:`ConvergenceTracker` (``repro.core``
        imports the echo client; the reverse would be a cycle)."""
        return ConvergenceTracker(self)


class ConvergenceTracker:
    """O(1) per-sample plateau detector for one probe run.

    Feed each RTT to :meth:`update`; it returns ``True`` once the
    :class:`AdaptiveSpec` stopping rule is satisfied. Pure function of
    the sample sequence — no clocks, no RNG — which is what keeps
    adaptive campaigns shard-invariant under task isolation.
    """

    __slots__ = ("spec", "count", "minimum", "plateau", "anchor", "lowest")

    def __init__(self, spec: AdaptiveSpec) -> None:
        self.spec = spec
        self.count = 0
        self.minimum = float("inf")
        #: Samples since the plateau window opened.
        self.plateau = 0
        #: The running minimum when the current window opened; the
        #: window resets once the minimum falls more than the tolerance
        #: below it — a *cumulative* test, so a staircase of small steps
        #: adding up past the tolerance still resets.
        self.anchor = float("inf")
        #: The ``confirm_k`` smallest samples so far, ascending. Updated
        #: only when a sample beats the current k-th smallest, so the
        #: per-reply cost stays a single comparison once warm.
        self.lowest: list[float] = []

    def update(self, rtt_ms: Milliseconds) -> bool:
        """Absorb one sample; ``True`` means *stop now*."""
        self.count += 1
        if len(self.lowest) < self.spec.confirm_k:
            insort(self.lowest, rtt_ms)
        elif rtt_ms < self.lowest[-1]:
            self.lowest.pop()
            insort(self.lowest, rtt_ms)
        if self.count == 1:
            # The first sample defines the minimum; it neither improves
            # nor plateaus. patience >= 1, so this can never stop.
            self.minimum = rtt_ms
            self.anchor = rtt_ms
            return False
        if rtt_ms < self.minimum:
            self.minimum = rtt_ms
        if (self.anchor - self.minimum) > self.spec.tolerance_ms(self.minimum):
            self.anchor = self.minimum
            self.plateau = 0
        else:
            self.plateau += 1
        return (
            self.count >= self.spec.min_samples
            and self.plateau >= self.effective_patience()
            and self.floor_confirmed()
        )

    def effective_patience(self) -> float:
        """The quiet window this run must sustain before stopping.

        Scales with the running minimum (see
        :attr:`AdaptiveSpec.patience_per_ms`): the longer the circuit,
        the rarer an all-floor sample, the longer the plateau that
        counts as convergence.
        """
        return self.spec.patience + self.spec.patience_per_ms * self.minimum

    def floor_confirmed(self) -> bool:
        """Whether the k lowest samples place the minimum at its floor.

        The order-statistics gate from :class:`AdaptiveSpec`: the mean
        spacing of the ``confirm_k`` smallest samples estimates the
        minimum's remaining excess over the propagation floor; the run
        may only stop once that estimate is within the tolerance.
        """
        k = self.spec.confirm_k
        if len(self.lowest) < k:
            return False
        spread = (self.lowest[-1] - self.lowest[0]) / (k - 1)
        margin = self.spec.confirm_margin
        return spread * margin <= self.spec.tolerance_ms(self.minimum)


@dataclass(frozen=True)
class SamplePolicy:
    """How many echo samples to take per circuit, and how spaced.

    ``interval_ms=None`` selects serial ping-pong probing (each probe
    sent when the previous reply lands) — the paper's measurement loop,
    used when simulated wall-clock cost must be faithful.

    With ``adaptive`` set, ``samples`` becomes a *cap*: the probe run
    ends as soon as the running minimum plateaus per the
    :class:`AdaptiveSpec`, and the saved probes are reported on the
    result. ``adaptive=None`` (the default) preserves the historical
    fixed-count behaviour bit for bit.
    """

    samples: int = 200
    interval_ms: Milliseconds | None = 5.0
    timeout_ms: Milliseconds = 600_000.0
    adaptive: AdaptiveSpec | None = None

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise MeasurementError("samples must be >= 1")
        if self.interval_ms is not None and self.interval_ms < 0:
            raise MeasurementError("interval must be non-negative")
        if self.adaptive is not None and self.adaptive.min_samples > self.samples:
            raise MeasurementError(
                "adaptive min_samples exceeds the policy's sample cap"
            )

    def for_leg(self) -> "SamplePolicy":
        """The policy leg circuits (``C_x``) run under.

        A leg estimate is shared across every pair involving that relay
        (the sequential measurer's leg cache; the parallel campaign's
        per-relay leg task), so a leg that stops early with a residual
        above its floor contaminates up to ``n - 1`` pair estimates at
        half weight each. Legs are only ``n`` of a campaign's
        ``C(n,2) + n`` probe runs (~3% of the fixed probe cost at 60
        relays), so adaptive policies exempt them from early stopping
        entirely: the shared quantity is measured at the full cap, and
        the convergence rule spends its risk only on the per-pair
        ``C_xy`` circuits. Fixed policies pass through unchanged.
        """
        if self.adaptive is None:
            return self
        return SamplePolicy(
            samples=self.samples,
            interval_ms=self.interval_ms,
            timeout_ms=self.timeout_ms,
        )

    @classmethod
    def serial(cls, samples: int = 200) -> "SamplePolicy":
        """Ping-pong pacing at a given sample count."""
        return cls(samples=samples, interval_ms=None)

    @classmethod
    def high_accuracy(cls) -> "SamplePolicy":
        """The paper's validated default: 200 samples per circuit."""
        return cls(samples=200)

    @classmethod
    def exhaustive(cls) -> "SamplePolicy":
        """The 1000-sample policy used for the Figure 3 ground-truthing."""
        return cls(samples=1000)

    @classmethod
    def fast(cls) -> "SamplePolicy":
        """The ~15-second operating point (accepting ~5% error)."""
        return cls(samples=10)

    @classmethod
    def adaptive_1ms(
        cls,
        max_samples: int = 200,
        min_samples: int = 10,
        patience: int = 30,
        debias: float = 1.2,
        interval_ms: Milliseconds | None = None,
    ) -> "SamplePolicy":
        """Stop once the minimum is plateaued at the 1 ms tolerance.

        The Section 4.4 headline operating point: within 1 ms of the
        long-run floor at a fraction of the probes. Defaults to the
        serial ping-pong loop: a convergence stop can only save probes
        that have not been sent yet, and a paced pipeline running ahead
        of the replies (interval smaller than the RTT) would have most
        of the cap on the wire before the first reply lands.
        """
        return cls(
            samples=max_samples,
            interval_ms=interval_ms,
            adaptive=AdaptiveSpec(
                absolute_ms=1.0,
                min_samples=min_samples,
                patience=patience,
                debias=debias,
            ),
        )

    @classmethod
    def adaptive_5pct(
        cls,
        max_samples: int = 200,
        min_samples: int = 10,
        patience: int = 30,
        debias: float = 1.2,
        interval_ms: Milliseconds | None = None,
    ) -> "SamplePolicy":
        """Stop once the minimum is plateaued at the 5% tolerance.

        Ping-pong paced, like :meth:`adaptive_1ms`.
        """
        return cls(
            samples=max_samples,
            interval_ms=interval_ms,
            adaptive=AdaptiveSpec(
                relative=0.05,
                min_samples=min_samples,
                patience=patience,
                debias=debias,
            ),
        )


def min_estimate(samples: list[Milliseconds] | np.ndarray) -> Milliseconds:
    """Ting's estimator: the minimum of the RTT samples."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise MeasurementError("cannot estimate from zero samples")
    if np.any(arr < 0):
        raise MeasurementError("negative RTT sample")
    return float(arr.min())


def debiased_min_estimate(
    samples: list[Milliseconds] | np.ndarray, policy: "SamplePolicy"
) -> Milliseconds:
    """The circuit estimate for a probe run under a given policy.

    Fixed policies (and adaptive specs with ``debias=0``) get the plain
    :func:`min_estimate`. Adaptive specs with a remaining-excess
    correction subtract :meth:`AdaptiveSpec.excess_correction_ms`,
    computed purely from the kept-sample count and the policy cap — a
    deterministic function of the trace, so shard workers and the
    single-process path agree exactly.
    """
    value = min_estimate(samples)
    spec = policy.adaptive
    if spec is None:
        return value
    return value - spec.excess_correction_ms(len(samples), policy.samples, value)


def running_minimum(samples: list[Milliseconds] | np.ndarray) -> np.ndarray:
    """The prefix-minimum sequence of a sample trace."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise MeasurementError("cannot compute running minimum of zero samples")
    return np.minimum.accumulate(arr)


def samples_to_within(
    samples: list[Milliseconds] | np.ndarray,
    absolute_ms: Milliseconds | None = None,
    relative: float | None = None,
) -> int:
    """How many samples until the running minimum is within a tolerance
    of the full-trace minimum.

    Exactly one of ``absolute_ms`` (e.g. 1.0 for "within 1 ms") or
    ``relative`` (e.g. 0.05 for "within 5%") must be given. Returns a
    1-based sample count.
    """
    if (absolute_ms is None) == (relative is None):
        raise MeasurementError("pass exactly one of absolute_ms / relative")
    prefix = running_minimum(samples)
    floor = prefix[-1]
    if absolute_ms is not None:
        threshold = floor + absolute_ms
    else:
        # A 0.0 ms floor would make the relative band empty (threshold
        # == floor), declaring every prefix sample "within tolerance";
        # clamp the band width like the live stopping rule does.
        threshold = floor + max(floor * relative, RELATIVE_TOLERANCE_FLOOR_MS)
    hits = np.nonzero(prefix <= threshold)[0]
    return int(hits[0]) + 1


def convergence_profile(
    samples: list[Milliseconds] | np.ndarray,
) -> dict[str, int]:
    """The Figure 6 statistics for one sample trace.

    Returns the number of samples needed to reach the measured minimum
    exactly, and to get within 1 ms / 1% / 5% / 10% of it.
    """
    arr = np.asarray(samples, dtype=float)
    return {
        "measured_min": samples_to_within(arr, absolute_ms=0.0),
        "within_1ms": samples_to_within(arr, absolute_ms=1.0),
        "within_1pct": samples_to_within(arr, relative=0.01),
        "within_5pct": samples_to_within(arr, relative=0.05),
        "within_10pct": samples_to_within(arr, relative=0.10),
    }
