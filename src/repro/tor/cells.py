"""Tor cell framing.

Tor moves all traffic in fixed-size cells. A cell carries a circuit ID, a
command, and a payload. RELAY cells wrap an encrypted
:class:`RelayCellBody` whose plaintext layout mirrors tor-spec §6.1::

    relay command   1 byte
    'recognized'    2 bytes  (zero in plaintext)
    stream ID       2 bytes
    digest          4 bytes  (running digest of all plaintext bodies)
    length          2 bytes
    data            RELAY_DATA_LEN bytes (padded with zeros)

The body packs/unpacks to exactly :data:`RELAY_BODY_LEN` bytes so the
onion layers always cipher a fixed-size block, as real Tor does.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import ReproError

#: Total size of a cell on the wire (tor-spec: 512 bytes plus link framing).
CELL_SIZE_BYTES = 512

#: Size of the relay cell body that gets onion-encrypted.
RELAY_BODY_LEN = 509

_RELAY_HEADER = struct.Struct("!BHHIH")
RELAY_DATA_LEN = RELAY_BODY_LEN - _RELAY_HEADER.size


class CellCommand(enum.IntEnum):
    """Link-level cell commands (subset Ting's path exercises)."""

    PADDING = 0
    CREATE = 1
    CREATED = 2
    RELAY = 3
    DESTROY = 4


class RelayCommand(enum.IntEnum):
    """Relay cell sub-commands (tor-spec numbering)."""

    BEGIN = 1
    DATA = 2
    END = 3
    CONNECTED = 4
    EXTEND = 6
    EXTENDED = 7
    TRUNCATE = 8
    TRUNCATED = 9
    DROP = 10


class CellError(ReproError):
    """A cell failed to parse or validate."""


@dataclass
class Cell:
    """A link cell travelling on one OR connection.

    ``payload`` is structured data for CREATE/CREATED/DESTROY and raw
    ``bytes`` (the encrypted body) for RELAY cells.
    """

    circ_id: int
    command: CellCommand
    payload: Any = None

    @property
    def size_bytes(self) -> int:
        """All cells occupy one fixed-size frame on the wire."""
        return CELL_SIZE_BYTES


@dataclass
class RelayCellBody:
    """The plaintext of a RELAY cell body."""

    relay_command: RelayCommand
    stream_id: int
    data: bytes = b""
    recognized: int = 0
    digest: bytes = b"\x00\x00\x00\x00"

    def __post_init__(self) -> None:
        if len(self.data) > RELAY_DATA_LEN:
            raise CellError(
                f"relay data too long: {len(self.data)} > {RELAY_DATA_LEN}"
            )
        if not 0 <= self.stream_id <= 0xFFFF:
            raise CellError(f"stream id out of range: {self.stream_id}")
        if len(self.digest) != 4:
            raise CellError("digest must be exactly 4 bytes")

    def pack(self) -> bytes:
        """Serialize to exactly RELAY_BODY_LEN bytes (zero-padded)."""
        header = _RELAY_HEADER.pack(
            int(self.relay_command),
            self.recognized,
            self.stream_id,
            int.from_bytes(self.digest, "big"),
            len(self.data),
        )
        body = header + self.data
        return body + b"\x00" * (RELAY_BODY_LEN - len(body))

    def pack_for_digest(self) -> bytes:
        """Serialize with the digest field zeroed (digest computation form)."""
        header = _RELAY_HEADER.pack(
            int(self.relay_command), self.recognized, self.stream_id, 0, len(self.data)
        )
        body = header + self.data
        return body + b"\x00" * (RELAY_BODY_LEN - len(body))

    @classmethod
    def unpack(cls, raw: bytes) -> "RelayCellBody":
        """Parse a RELAY_BODY_LEN-byte plaintext body."""
        if len(raw) != RELAY_BODY_LEN:
            raise CellError(f"relay body must be {RELAY_BODY_LEN} bytes, got {len(raw)}")
        command, recognized, stream_id, digest_int, length = _RELAY_HEADER.unpack(
            raw[: _RELAY_HEADER.size]
        )
        if length > RELAY_DATA_LEN:
            raise CellError(f"relay length field too large: {length}")
        try:
            relay_command = RelayCommand(command)
        except ValueError:
            raise CellError(f"unknown relay command {command}") from None
        data = raw[_RELAY_HEADER.size : _RELAY_HEADER.size + length]
        return cls(
            relay_command=relay_command,
            stream_id=stream_id,
            data=data,
            recognized=recognized,
            digest=digest_int.to_bytes(4, "big"),
        )

    def with_digest(self, digest: bytes) -> "RelayCellBody":
        """A copy of this body carrying ``digest`` (4 bytes)."""
        return RelayCellBody(
            relay_command=self.relay_command,
            stream_id=self.stream_id,
            data=self.data,
            recognized=self.recognized,
            digest=digest,
        )
