"""Relay descriptors, exit policies, and the directory/consensus system.

Relays publish :class:`RelayDescriptor` documents to a
:class:`DirectoryAuthority`; the authority assigns flags (Guard, Exit,
Fast, Stable) and emits a :class:`Consensus` that clients use for path
selection. Bandwidth weights in the consensus drive Tor's weighted relay
selection (Section 5.1.1's "Weighted Node Selection").

The paper's experimental setup — local relays that *don't* publish their
descriptors but are hard-coded into the client's view ("PublishDescriptors
0") — is supported via :meth:`Consensus.with_private_relays`.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace

from repro.util.errors import DirectoryError


class RelayFlag(enum.Flag):
    """Consensus flags a relay can carry."""

    NONE = 0
    GUARD = enum.auto()
    EXIT = enum.auto()
    FAST = enum.auto()
    STABLE = enum.auto()
    RUNNING = enum.auto()
    VALID = enum.auto()


@dataclass(frozen=True)
class ExitRule:
    """One accept/reject rule: matches an address pattern and port range."""

    accept: bool
    address_pattern: str = "*"  # "*", exact IP, or "a.b.c.*" /24 pattern
    port_low: int = 1
    port_high: int = 65535

    def __post_init__(self) -> None:
        if not 1 <= self.port_low <= self.port_high <= 65535:
            raise DirectoryError(
                f"invalid port range {self.port_low}-{self.port_high}"
            )

    def matches(self, address: str, port: int) -> bool:
        """Whether this rule applies to ``address:port``."""
        if not self.port_low <= port <= self.port_high:
            return False
        if self.address_pattern == "*":
            return True
        if self.address_pattern.endswith(".*"):
            return address.startswith(self.address_pattern[:-1])
        return address == self.address_pattern


@dataclass(frozen=True)
class ExitPolicy:
    """An ordered rule list; first match wins, default reject."""

    rules: tuple[ExitRule, ...] = ()

    def allows(self, address: str, port: int) -> bool:
        """Whether this relay will open an exit connection to address:port."""
        for rule in self.rules:
            if rule.matches(address, port):
                return rule.accept
        return False

    @property
    def is_exit(self) -> bool:
        """True if the policy accepts anything at all."""
        return any(rule.accept for rule in self.rules)

    @classmethod
    def accept_all(cls) -> "ExitPolicy":
        """A policy accepting every destination."""
        return cls(rules=(ExitRule(accept=True),))

    @classmethod
    def reject_all(cls) -> "ExitPolicy":
        """A policy rejecting every destination (non-exit)."""
        return cls(rules=())

    @classmethod
    def accept_only(cls, *addresses: str) -> "ExitPolicy":
        """The paper's restrictive PlanetLab policy: exit only to our hosts."""
        return cls(
            rules=tuple(ExitRule(accept=True, address_pattern=a) for a in addresses)
        )


@dataclass(frozen=True)
class RelayDescriptor:
    """A relay's self-published descriptor."""

    nickname: str
    fingerprint: str
    address: str
    or_port: int
    identity_public: bytes
    bandwidth_kbps: int = 1024
    exit_policy: ExitPolicy = field(default_factory=ExitPolicy.reject_all)
    family: frozenset[str] = frozenset()
    flags: RelayFlag = RelayFlag.RUNNING | RelayFlag.VALID
    published_at_ms: float = 0.0

    def __post_init__(self) -> None:
        if not self.nickname:
            raise DirectoryError("nickname must be non-empty")
        if self.bandwidth_kbps <= 0:
            raise DirectoryError("bandwidth must be positive")

    @staticmethod
    def make_fingerprint(nickname: str, address: str, or_port: int) -> str:
        """Deterministic 40-hex-char fingerprint, like a SHA-1 key hash."""
        digest = hashlib.sha256(f"{nickname}|{address}|{or_port}".encode()).hexdigest()
        return digest[:40].upper()

    def has_flag(self, flag: RelayFlag) -> bool:
        """Whether the descriptor carries ``flag``."""
        return bool(self.flags & flag)


class Consensus:
    """A snapshot of the network: descriptors keyed by fingerprint."""

    def __init__(
        self, routers: dict[str, RelayDescriptor], valid_at_ms: float = 0.0
    ) -> None:
        self.routers = dict(routers)
        self.valid_at_ms = valid_at_ms

    def __len__(self) -> int:
        return len(self.routers)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.routers

    def get(self, fingerprint: str) -> RelayDescriptor:
        """Descriptor by fingerprint; raises DirectoryError if unknown."""
        try:
            return self.routers[fingerprint]
        except KeyError:
            raise DirectoryError(f"unknown relay {fingerprint!r}") from None

    def by_nickname(self, nickname: str) -> RelayDescriptor:
        """Descriptor by nickname; raises DirectoryError if unknown."""
        for descriptor in self.routers.values():
            if descriptor.nickname == nickname:
                return descriptor
        raise DirectoryError(f"no relay named {nickname!r}")

    def with_flag(self, flag: RelayFlag) -> list[RelayDescriptor]:
        """All descriptors carrying ``flag``."""
        return [d for d in self.routers.values() if d.has_flag(flag)]

    def total_bandwidth_kbps(self) -> int:
        """Sum of all relays' consensus bandwidths."""
        return sum(d.bandwidth_kbps for d in self.routers.values())

    def bandwidth_weight(self, fingerprint: str) -> float:
        """This relay's selection probability under bandwidth weighting."""
        total = self.total_bandwidth_kbps()
        if total == 0:
            raise DirectoryError("consensus has zero total bandwidth")
        return self.get(fingerprint).bandwidth_kbps / total

    def with_private_relays(self, *descriptors: RelayDescriptor) -> "Consensus":
        """A copy that also knows about unpublished (local) relays.

        This reproduces the paper's note that the measurement host can
        hard-code its own relays' descriptors instead of publishing them.
        """
        merged = dict(self.routers)
        for descriptor in descriptors:
            merged[descriptor.fingerprint] = descriptor
        return Consensus(routers=merged, valid_at_ms=self.valid_at_ms)


class DirectoryQuorum:
    """Several authorities voting a consensus, as the real Tor does.

    Each authority holds its own (possibly divergent) view of the relay
    population — authorities learn about relays at different times and
    may miss descriptors. The quorum's consensus contains every relay a
    **majority** of authorities list, with flags assigned by majority
    vote and bandwidth taken as the median of the listing authorities'
    values (Tor's bandwidth-authority aggregation).
    """

    def __init__(self, authorities: list["DirectoryAuthority"]) -> None:
        if len(authorities) < 1:
            raise DirectoryError("quorum needs at least one authority")
        self.authorities = list(authorities)

    @property
    def majority(self) -> int:
        """Votes needed for a majority of the quorum."""
        return len(self.authorities) // 2 + 1

    def publish(self, descriptor: RelayDescriptor, now_ms: float = 0.0) -> None:
        """Publish to every authority (relays upload to all of them)."""
        for authority in self.authorities:
            authority.publish(descriptor, now_ms=now_ms)

    def withdraw(self, fingerprint: str) -> None:
        """Remove a relay from every authority's view."""
        for authority in self.authorities:
            authority.withdraw(fingerprint)

    def make_consensus(self, now_ms: float = 0.0) -> Consensus:
        """Vote: majority listing, majority flags, median bandwidth."""
        votes = [a.make_consensus(now_ms=now_ms) for a in self.authorities]
        listed: dict[str, list[RelayDescriptor]] = {}
        for vote in votes:
            for fingerprint, descriptor in vote.routers.items():
                listed.setdefault(fingerprint, []).append(descriptor)

        routers: dict[str, RelayDescriptor] = {}
        for fingerprint, descriptors in listed.items():
            if len(descriptors) < self.majority:
                continue
            flags = RelayFlag.NONE
            for flag in RelayFlag:
                if flag is RelayFlag.NONE:
                    continue
                supporters = sum(1 for d in descriptors if d.has_flag(flag))
                if supporters >= self.majority:
                    flags |= flag
            bandwidths = sorted(d.bandwidth_kbps for d in descriptors)
            median_bw = bandwidths[len(bandwidths) // 2]
            routers[fingerprint] = replace(
                descriptors[0], flags=flags, bandwidth_kbps=median_bw
            )
        return Consensus(routers=routers, valid_at_ms=now_ms)


class DirectoryAuthority:
    """Collects descriptors, votes flags, and produces consensuses."""

    #: Bandwidth (kbps) at or above which a relay earns the Fast flag.
    FAST_THRESHOLD_KBPS = 100

    #: Bandwidth share above which relays earn Guard (simplified rule).
    GUARD_BANDWIDTH_KBPS = 500

    #: Uptime (ms) required for the Stable flag.
    STABLE_UPTIME_MS = 24 * 3600 * 1000.0

    def __init__(self) -> None:
        self._descriptors: dict[str, RelayDescriptor] = {}
        self._first_seen_ms: dict[str, float] = {}

    def publish(self, descriptor: RelayDescriptor, now_ms: float = 0.0) -> None:
        """Accept (or refresh) a relay's descriptor."""
        self._first_seen_ms.setdefault(descriptor.fingerprint, now_ms)
        self._descriptors[descriptor.fingerprint] = replace(
            descriptor, published_at_ms=now_ms
        )

    def withdraw(self, fingerprint: str) -> None:
        """Drop a relay (it went offline)."""
        self._descriptors.pop(fingerprint, None)

    @property
    def num_published(self) -> int:
        """Number of relays this authority currently lists."""
        return len(self._descriptors)

    def make_consensus(self, now_ms: float = 0.0) -> Consensus:
        """Vote flags and emit the network snapshot."""
        routers: dict[str, RelayDescriptor] = {}
        for fingerprint, descriptor in self._descriptors.items():
            flags = RelayFlag.RUNNING | RelayFlag.VALID
            if descriptor.bandwidth_kbps >= self.FAST_THRESHOLD_KBPS:
                flags |= RelayFlag.FAST
            if descriptor.bandwidth_kbps >= self.GUARD_BANDWIDTH_KBPS:
                flags |= RelayFlag.GUARD
            uptime = now_ms - self._first_seen_ms[fingerprint]
            if uptime >= self.STABLE_UPTIME_MS:
                flags |= RelayFlag.STABLE
            if descriptor.exit_policy.is_exit:
                flags |= RelayFlag.EXIT
            routers[fingerprint] = replace(descriptor, flags=flags)
        return Consensus(routers=routers, valid_at_ms=now_ms)
