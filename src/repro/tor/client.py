"""The onion proxy: client-side circuit construction and streams.

:class:`OnionProxy` plays the role of the local ``tor`` process the paper
controlled through Stem: it owns OR connections to entry relays, builds
circuits hop-by-hop (CREATE, then EXTEND per additional hop), enforces
the client policies the paper works within (no one-hop circuits, no
relay appearing twice), and multiplexes application streams onto
circuits via BEGIN/CONNECTED/DATA/END relay cells.

All operations are callback-based; the controller layer adds the
synchronous facade measurement code uses.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.netsim.engine import EventHandle, Simulator
from repro.netsim.policies import TrafficClass
from repro.obs import (
    CIRCUIT_BUILT,
    CIRCUIT_FAILED,
    NULL_METRICS,
    NULL_TRACE,
    STREAM_ATTACHED,
    STREAM_FAILED,
)
from repro.netsim.topology import Host, Topology
from repro.netsim.transport import NetworkFabric, StreamConnection
from repro.tor.cells import (
    Cell,
    CellCommand,
    CellError,
    RELAY_DATA_LEN,
    RelayCellBody,
    RelayCommand,
)
from repro.tor.crypto import ClientHandshake, CryptoError, OnionLayer
from repro.tor.directory import Consensus, RelayDescriptor
from repro.util.errors import CircuitError, StreamError
from repro.util.units import Milliseconds

#: Default deadline for building a circuit before it is abandoned.
DEFAULT_CIRCUIT_TIMEOUT_MS = 60_000.0

#: Default deadline for attaching a stream.
DEFAULT_STREAM_TIMEOUT_MS = 30_000.0


class Circuit:
    """Client-side state for one circuit."""

    def __init__(self, circ_id: int, path: list[RelayDescriptor]) -> None:
        self.circ_id = circ_id
        self.path = path
        self.layers: list[OnionLayer] = []
        self.state = "building"  # building | built | failed | closed
        self.failure_reason: str | None = None
        self.created_at_ms: Milliseconds = 0.0
        self.built_at_ms: Milliseconds | None = None
        self.streams: dict[int, "TorStream"] = {}

    @property
    def hops_completed(self) -> int:
        """Hops whose handshakes have finished."""
        return len(self.layers)

    @property
    def is_built(self) -> bool:
        """Whether the circuit is fully built and usable."""
        return self.state == "built"

    def __repr__(self) -> str:
        nicknames = ",".join(d.nickname for d in self.path)
        return f"Circuit({self.circ_id}, [{nicknames}], {self.state})"


class TorStream:
    """An application stream attached to a circuit."""

    def __init__(self, stream_id: int, circuit: Circuit, target: str) -> None:
        self.stream_id = stream_id
        self.circuit = circuit
        self.target = target
        self.state = "connecting"  # connecting | open | closed | failed
        self.on_data: Callable[[bytes], None] | None = None
        self.on_close: Callable[[], None] | None = None
        self._proxy: "OnionProxy | None" = None

    def send(self, data: bytes) -> None:
        """Send application bytes to the stream's destination."""
        if self.state != "open":
            raise StreamError(f"stream {self.stream_id} is {self.state}")
        assert self._proxy is not None
        self._proxy._send_stream_data(self, data)

    def close(self) -> None:
        """Close the stream (sends END to the exit)."""
        if self.state in ("closed", "failed"):
            return
        self.state = "closed"
        if self._proxy is not None:
            self._proxy._end_stream(self)

    def __repr__(self) -> str:
        return f"TorStream({self.stream_id} -> {self.target}, {self.state})"


class _BuildState:
    """Transient bookkeeping while a circuit is under construction."""

    def __init__(
        self,
        on_built: Callable[[Circuit], None],
        on_failure: Callable[[Circuit, str], None],
        timeout: EventHandle,
    ) -> None:
        self.on_built = on_built
        self.on_failure = on_failure
        self.timeout = timeout
        self.handshake: ClientHandshake | None = None


class OnionProxy:
    """The local Tor client process."""

    def __init__(
        self,
        sim: Simulator,
        fabric: NetworkFabric,
        topology: Topology,
        host: Host,
        consensus: Consensus,
        nonce_source: Callable[[], bytes] | None = None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.topology = topology
        self.host = host
        self.consensus = consensus
        self._nonce_source = nonce_source
        self._circ_ids = itertools.count(1)
        self._stream_ids = itertools.count(1)
        self.circuits: dict[int, Circuit] = {}
        self._builds: dict[int, _BuildState] = {}
        self._stream_waiters: dict[
            tuple[int, int],
            tuple[Callable[[TorStream], None], Callable[[str], None], EventHandle],
        ] = {}
        self._truncate_waiters: dict[
            int, tuple[int, Callable[[Circuit], None], EventHandle]
        ] = {}
        # OR connections keyed by "address:port" of the entry relay, plus
        # the mapping from connection to the circuits it carries.
        self._or_conns: dict[str, StreamConnection] = {}
        self._conn_for_circuit: dict[int, StreamConnection] = {}
        #: Observability sinks; no-ops unless a live registry is wired in.
        self.metrics = NULL_METRICS
        self.trace = NULL_TRACE

    def set_consensus(self, consensus: Consensus) -> None:
        """Install a fresh network view (e.g. after a directory fetch)."""
        self.consensus = consensus

    # ------------------------------------------------------------------
    # Circuit construction

    def create_circuit(
        self,
        path: list[RelayDescriptor] | list[str],
        on_built: Callable[[Circuit], None],
        on_failure: Callable[[Circuit, str], None],
        timeout_ms: Milliseconds = DEFAULT_CIRCUIT_TIMEOUT_MS,
    ) -> Circuit:
        """Start building a circuit through ``path`` (descriptors or
        fingerprints), enforcing the client's safety policies."""
        descriptors = [
            hop if isinstance(hop, RelayDescriptor) else self.consensus.get(hop)
            for hop in path
        ]
        if len(descriptors) < 2:
            raise CircuitError(
                "one-hop circuits are disallowed (a relay refuses to be both "
                "entry and exit); paths must have at least 2 hops"
            )
        fingerprints = [d.fingerprint for d in descriptors]
        if len(set(fingerprints)) != len(fingerprints):
            raise CircuitError("a relay cannot appear on a circuit more than once")

        circuit = Circuit(circ_id=next(self._circ_ids), path=descriptors)
        circuit.created_at_ms = self.sim.now
        self.circuits[circuit.circ_id] = circuit
        timeout = self.sim.schedule(
            timeout_ms, self._build_timed_out, circuit
        )
        self._builds[circuit.circ_id] = _BuildState(on_built, on_failure, timeout)

        entry = descriptors[0]

        def conn_ready(conn: StreamConnection) -> None:
            if circuit.state != "building":
                return
            self._conn_for_circuit[circuit.circ_id] = conn
            handshake = ClientHandshake(
                entry.identity_public, nonce=self._make_nonce()
            )
            self._builds[circuit.circ_id].handshake = handshake
            self._send_cell(
                conn,
                Cell(circuit.circ_id, CellCommand.CREATE, handshake.create_payload()),
            )

        self._entry_conn(entry, conn_ready, circuit)
        return circuit

    def _make_nonce(self) -> bytes | None:
        return self._nonce_source() if self._nonce_source is not None else None

    def _entry_conn(
        self,
        entry: RelayDescriptor,
        on_ready: Callable[[StreamConnection], None],
        circuit: Circuit,
    ) -> None:
        key = f"{entry.address}:{entry.or_port}"
        existing = self._or_conns.get(key)
        if existing is not None and existing.established and not existing.closed:
            self.sim.schedule(0.0, on_ready, existing)
            return
        if existing is not None and not existing.closed:
            previous = existing._on_established

            def chained(conn: StreamConnection) -> None:
                if previous is not None:
                    previous(conn)
                on_ready(conn)

            existing._on_established = chained
            return
        try:
            target = self.topology.host_by_address(entry.address)
        except KeyError:
            self._fail_circuit(circuit, f"cannot resolve entry {entry.address}")
            return

        def established(conn: StreamConnection) -> None:
            conn.on_data = lambda cell, c=conn: self._cell_arrived(c, cell)
            on_ready(conn)

        def failed(reason: str) -> None:
            self._or_conns.pop(key, None)
            self._fail_circuit(circuit, f"entry connection failed: {reason}")

        conn = self.fabric.connect(
            self.host, target, entry.or_port, TrafficClass.TOR, established, failed
        )
        self._or_conns[key] = conn

    def _build_timed_out(self, circuit: Circuit) -> None:
        if circuit.state == "building":
            self._fail_circuit(circuit, "circuit build timed out")

    def _fail_circuit(self, circuit: Circuit, reason: str) -> None:
        if circuit.state in ("failed", "closed"):
            return
        circuit.state = "failed"
        circuit.failure_reason = reason
        build = self._builds.pop(circuit.circ_id, None)
        for stream in list(circuit.streams.values()):
            stream.state = "failed"
        circuit.streams.clear()
        self.metrics.inc("tor.circuits_failed")
        if self.trace.enabled:
            self.trace.record(
                self.sim.now,
                CIRCUIT_FAILED,
                circ_id=circuit.circ_id,
                hops=len(circuit.path),
                reason=reason,
            )
        if build is not None:
            build.timeout.cancel()
            build.on_failure(circuit, reason)

    # ------------------------------------------------------------------
    # Cell arrival and the build state machine

    def _cell_arrived(self, conn: StreamConnection, cell: Cell) -> None:
        circuit = self.circuits.get(cell.circ_id)
        if circuit is None:
            return
        if cell.command is CellCommand.CREATED:
            self._advance_build(circuit, cell.payload)
        elif cell.command is CellCommand.RELAY:
            self._handle_relay_cell(circuit, cell.payload)
        elif cell.command is CellCommand.DESTROY:
            self._fail_circuit(circuit, f"destroyed: {cell.payload}")

    def _advance_build(self, circuit: Circuit, handshake_payload: bytes) -> None:
        build = self._builds.get(circuit.circ_id)
        if build is None or build.handshake is None or circuit.state != "building":
            return
        try:
            keys = build.handshake.complete(handshake_payload)
        except CryptoError as exc:
            self._fail_circuit(circuit, f"handshake failed: {exc}")
            return
        circuit.layers.append(OnionLayer(keys))
        build.handshake = None
        if circuit.hops_completed == len(circuit.path):
            circuit.state = "built"
            circuit.built_at_ms = self.sim.now
            build.timeout.cancel()
            self._builds.pop(circuit.circ_id, None)
            metrics = self.metrics
            if metrics.enabled:
                metrics.inc("tor.circuits_built")
                metrics.observe(
                    "tor.circuit_build_ms", self.sim.now - circuit.created_at_ms
                )
            if self.trace.enabled:
                self.trace.record(
                    self.sim.now,
                    CIRCUIT_BUILT,
                    circ_id=circuit.circ_id,
                    hops=len(circuit.path),
                    build_ms=self.sim.now - circuit.created_at_ms,
                )
            build.on_built(circuit)
            return
        # Extend to the next hop.
        next_hop = circuit.path[circuit.hops_completed]
        handshake = ClientHandshake(next_hop.identity_public, nonce=self._make_nonce())
        build.handshake = handshake
        spec = f"{next_hop.address}:{next_hop.or_port}:{next_hop.fingerprint}"
        data = spec.encode("ascii") + b"|" + handshake.create_payload()
        self._send_relay_cell(circuit, RelayCommand.EXTEND, 0, data)

    def _handle_relay_cell(self, circuit: Circuit, encrypted: bytes) -> None:
        """Unwrap backward layers until some hop's digest recognizes the cell."""
        body = encrypted
        source_hop: int | None = None
        for index, layer in enumerate(circuit.layers):
            body = layer.backward_cipher.process(body)
            if body[1:3] != b"\x00\x00":
                continue
            digest = body[5:9]
            zeroed = body[:5] + b"\x00\x00\x00\x00" + body[9:]
            # Single-hash recognize: commit() advances the digest only on
            # a tag match instead of hashing the body a second time.
            if layer.backward_digest.commit(zeroed, digest):
                source_hop = index
                break
        if source_hop is None:
            self._fail_circuit(circuit, "unrecognized backward cell")
            return
        try:
            parsed = RelayCellBody.unpack(body)
        except CellError as exc:
            self._fail_circuit(circuit, f"bad relay cell: {exc}")
            return
        self._dispatch_backward(circuit, source_hop, parsed)

    def _dispatch_backward(
        self, circuit: Circuit, source_hop: int, body: RelayCellBody
    ) -> None:
        command = body.relay_command
        if command is RelayCommand.EXTENDED:
            self._advance_build(circuit, body.data)
        elif command is RelayCommand.CONNECTED:
            self._stream_connected(circuit, body.stream_id)
        elif command is RelayCommand.DATA:
            stream = circuit.streams.get(body.stream_id)
            if stream is not None and stream.on_data is not None:
                stream.on_data(body.data)
        elif command is RelayCommand.END:
            self._stream_ended(circuit, body.stream_id, body.data)
        elif command is RelayCommand.TRUNCATED:
            self._truncated(circuit, source_hop)
        # Other backward commands are ignored.

    # ------------------------------------------------------------------
    # Streams

    def open_stream(
        self,
        circuit: Circuit,
        address: str,
        port: int,
        on_connected: Callable[[TorStream], None],
        on_failure: Callable[[str], None],
        timeout_ms: Milliseconds = DEFAULT_STREAM_TIMEOUT_MS,
    ) -> TorStream:
        """Attach a new stream to ``circuit`` targeting ``address:port``."""
        if not circuit.is_built:
            raise StreamError(f"circuit {circuit.circ_id} is {circuit.state}")
        stream_id = next(self._stream_ids) & 0xFFFF
        stream = TorStream(stream_id, circuit, f"{address}:{port}")
        stream._proxy = self
        circuit.streams[stream_id] = stream
        timeout = self.sim.schedule(
            timeout_ms, self._stream_timed_out, circuit, stream_id
        )
        self._stream_waiters[(circuit.circ_id, stream_id)] = (
            on_connected,
            on_failure,
            timeout,
        )
        self._send_relay_cell(
            circuit, RelayCommand.BEGIN, stream_id, f"{address}:{port}".encode("ascii")
        )
        return stream

    def _stream_connected(self, circuit: Circuit, stream_id: int) -> None:
        waiter = self._stream_waiters.pop((circuit.circ_id, stream_id), None)
        stream = circuit.streams.get(stream_id)
        if waiter is None or stream is None:
            return
        on_connected, _, timeout = waiter
        timeout.cancel()
        stream.state = "open"
        self.metrics.inc("tor.streams_attached")
        if self.trace.enabled:
            self.trace.record(
                self.sim.now,
                STREAM_ATTACHED,
                circ_id=circuit.circ_id,
                stream_id=stream_id,
                target=stream.target,
            )
        on_connected(stream)

    def _stream_ended(self, circuit: Circuit, stream_id: int, reason: bytes) -> None:
        waiter = self._stream_waiters.pop((circuit.circ_id, stream_id), None)
        stream = circuit.streams.pop(stream_id, None)
        if waiter is not None:
            _, on_failure, timeout = waiter
            timeout.cancel()
            if stream is not None:
                stream.state = "failed"
            decoded = reason.decode("ascii", errors="replace")
            self.metrics.inc("tor.stream_failures")
            if self.trace.enabled:
                self.trace.record(
                    self.sim.now,
                    STREAM_FAILED,
                    circ_id=circuit.circ_id,
                    stream_id=stream_id,
                    reason=decoded,
                )
            on_failure(decoded)
            return
        if stream is not None and stream.state == "open":
            stream.state = "closed"
            if stream.on_close is not None:
                stream.on_close()

    def _stream_timed_out(self, circuit: Circuit, stream_id: int) -> None:
        waiter = self._stream_waiters.pop((circuit.circ_id, stream_id), None)
        if waiter is None:
            return
        _, on_failure, _ = waiter
        stream = circuit.streams.pop(stream_id, None)
        if stream is not None:
            stream.state = "failed"
        self.metrics.inc("tor.stream_failures")
        if self.trace.enabled:
            self.trace.record(
                self.sim.now,
                STREAM_FAILED,
                circ_id=circuit.circ_id,
                stream_id=stream_id,
                reason="stream attach timed out",
            )
        on_failure("stream attach timed out")

    def _send_stream_data(self, stream: TorStream, data: bytes) -> None:
        payload = bytes(data)
        for start in range(0, len(payload), RELAY_DATA_LEN):
            self._send_relay_cell(
                stream.circuit,
                RelayCommand.DATA,
                stream.stream_id,
                payload[start : start + RELAY_DATA_LEN],
            )

    def _end_stream(self, stream: TorStream) -> None:
        stream.circuit.streams.pop(stream.stream_id, None)
        if stream.circuit.is_built:
            self._send_relay_cell(
                stream.circuit, RelayCommand.END, stream.stream_id, b""
            )

    def send_padding(self, circuit: Circuit, hop: int | None = None) -> None:
        """Send a long-range padding cell (RELAY_DROP) to a hop.

        The receiving relay absorbs it silently; clients use these to
        obscure traffic patterns. Useful in tests and traffic-analysis
        experiments as innocuous cover traffic.
        """
        if not circuit.is_built:
            raise CircuitError(f"circuit {circuit.circ_id} is {circuit.state}")
        self._send_relay_cell(
            circuit, RelayCommand.DROP, 0, b"", target_hop=hop
        )

    # ------------------------------------------------------------------
    # Truncation and in-place extension

    def truncate_circuit(
        self,
        circuit: Circuit,
        to_hop: int,
        on_truncated: Callable[[Circuit], None],
        timeout_ms: Milliseconds = DEFAULT_CIRCUIT_TIMEOUT_MS,
    ) -> None:
        """Cut the circuit back so ``to_hop`` becomes its last relay.

        Sends TRUNCATE to hop ``to_hop``; that relay destroys everything
        beyond itself and acknowledges with TRUNCATED, at which point the
        dropped hops' onion layers are discarded and ``on_truncated``
        fires. The shortened circuit can then be re-extended with
        :meth:`extend_circuit` — the mechanism that lets a measurement
        client reuse an existing circuit prefix instead of rebuilding.
        """
        if not circuit.is_built:
            raise CircuitError(f"circuit {circuit.circ_id} is {circuit.state}")
        if not 0 <= to_hop < len(circuit.layers) - 1:
            raise CircuitError(
                f"cannot truncate to hop {to_hop} of a "
                f"{len(circuit.layers)}-hop circuit"
            )
        if circuit.streams:
            raise CircuitError("close the circuit's streams before truncating")
        timeout = self.sim.schedule(
            timeout_ms, self._truncate_timed_out, circuit
        )
        self._truncate_waiters[circuit.circ_id] = (to_hop, on_truncated, timeout)
        self._send_relay_cell(
            circuit, RelayCommand.TRUNCATE, 0, b"", target_hop=to_hop
        )

    def _truncated(self, circuit: Circuit, source_hop: int) -> None:
        waiter = self._truncate_waiters.pop(circuit.circ_id, None)
        if waiter is None:
            return
        to_hop, on_truncated, timeout = waiter
        timeout.cancel()
        del circuit.layers[to_hop + 1 :]
        del circuit.path[to_hop + 1 :]
        on_truncated(circuit)

    def _truncate_timed_out(self, circuit: Circuit) -> None:
        if self._truncate_waiters.pop(circuit.circ_id, None) is not None:
            self._fail_circuit(circuit, "truncate timed out")

    def extend_circuit(
        self,
        circuit: Circuit,
        additional_path: list[RelayDescriptor] | list[str],
        on_built: Callable[[Circuit], None],
        on_failure: Callable[[Circuit, str], None],
        timeout_ms: Milliseconds = DEFAULT_CIRCUIT_TIMEOUT_MS,
    ) -> None:
        """Extend a built circuit with further hops in place."""
        if not circuit.is_built:
            raise CircuitError(f"circuit {circuit.circ_id} is {circuit.state}")
        descriptors = [
            hop if isinstance(hop, RelayDescriptor) else self.consensus.get(hop)
            for hop in additional_path
        ]
        if not descriptors:
            raise CircuitError("no hops to extend with")
        fingerprints = [d.fingerprint for d in circuit.path + descriptors]
        if len(set(fingerprints)) != len(fingerprints):
            raise CircuitError("a relay cannot appear on a circuit more than once")
        circuit.path.extend(descriptors)
        circuit.state = "building"
        circuit.created_at_ms = self.sim.now
        timeout = self.sim.schedule(timeout_ms, self._build_timed_out, circuit)
        build = _BuildState(on_built, on_failure, timeout)
        self._builds[circuit.circ_id] = build
        next_hop = circuit.path[circuit.hops_completed]
        handshake = ClientHandshake(next_hop.identity_public, nonce=self._make_nonce())
        build.handshake = handshake
        spec = f"{next_hop.address}:{next_hop.or_port}:{next_hop.fingerprint}"
        data = spec.encode("ascii") + b"|" + handshake.create_payload()
        self._send_relay_cell(
            circuit,
            RelayCommand.EXTEND,
            0,
            data,
            target_hop=circuit.hops_completed - 1,
        )

    # ------------------------------------------------------------------
    # Outbound relay cells

    def _send_relay_cell(
        self,
        circuit: Circuit,
        command: RelayCommand,
        stream_id: int,
        data: bytes,
        target_hop: int | None = None,
    ) -> None:
        """Build, digest-stamp, and onion-encrypt a relay cell.

        ``target_hop`` defaults to the last completed hop; the digest is
        stamped with that hop's forward digest and the body is encrypted
        innermost-first from that hop back to the entry.
        """
        if not circuit.layers:
            raise CircuitError("circuit has no completed hops")
        hop = target_hop if target_hop is not None else len(circuit.layers) - 1
        body = RelayCellBody(relay_command=command, stream_id=stream_id, data=data)
        digest = circuit.layers[hop].forward_digest.update(body.pack_for_digest())
        packed = body.with_digest(digest).pack()
        for index in range(hop, -1, -1):
            packed = circuit.layers[index].forward_cipher.process(packed)
        conn = self._conn_for_circuit.get(circuit.circ_id)
        if conn is None:
            raise CircuitError(f"circuit {circuit.circ_id} has no entry connection")
        self._send_cell(conn, Cell(circuit.circ_id, CellCommand.RELAY, packed))

    def _send_cell(self, conn: StreamConnection, cell: Cell) -> None:
        if conn.closed or not conn.established:
            return
        conn.send(cell, size_bytes=cell.size_bytes)

    # ------------------------------------------------------------------
    # Circuit teardown

    def close_circuit(self, circuit: Circuit) -> None:
        """Tear down a circuit (sends DESTROY toward the entry relay)."""
        if circuit.state == "closed":
            return
        previous_state = circuit.state
        circuit.state = "closed"
        build = self._builds.pop(circuit.circ_id, None)
        if build is not None:
            build.timeout.cancel()
        for stream in list(circuit.streams.values()):
            stream.state = "closed"
        circuit.streams.clear()
        conn = self._conn_for_circuit.pop(circuit.circ_id, None)
        if conn is not None and previous_state in ("building", "built"):
            self._send_cell(conn, Cell(circuit.circ_id, CellCommand.DESTROY, "closed"))

    def disconnect_or_conns(self) -> None:
        """Close and forget cached entry-relay OR connections.

        Counterpart of :meth:`~repro.tor.relay.Relay.disconnect_or_conns`
        for the client side; used by per-task isolation so each
        measurement task starts from a connection-free world.
        """
        for conn in self._or_conns.values():
            conn.close()
        self._or_conns.clear()

    @property
    def open_circuit_count(self) -> int:
        """Number of currently built circuits."""
        return sum(1 for c in self.circuits.values() if c.is_built)
