"""A Stem-like controller for the simulated onion proxy.

The paper drives its unmodified Tor client through the Stem controller
library: build an explicit circuit, attach a TCP connection to it, tear
it down. :class:`Controller` provides the same surface here, in two
flavours:

* a programmatic API (``build_circuit``, ``open_stream``,
  ``close_circuit``) with synchronous variants that drive the simulator
  until the operation resolves — this is what Ting's measurement loop
  uses; and
* a line-oriented command protocol (``raw_command``) modelled on Tor's
  control-port grammar (``EXTENDCIRCUIT``, ``CLOSECIRCUIT``,
  ``GETINFO``, ``SETEVENTS``) for protocol-level tests and realism.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.netsim.engine import Simulator
from repro.tor.client import Circuit, OnionProxy, TorStream
from repro.tor.directory import RelayDescriptor
from repro.util.errors import CircuitError, ControlProtocolError, StreamError
from repro.util.units import Milliseconds


class SimFuture:
    """A one-shot result box resolved by simulator callbacks.

    ``wait`` drives the simulator until the future resolves, giving
    measurement code a synchronous veneer over the event-driven core.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self.done = False
        self.value: Any = None
        self.error: str | None = None

    def resolve(self, value: Any = None) -> None:
        """Complete the future successfully with ``value``."""
        if not self.done:
            self.done = True
            self.value = value

    def reject(self, error: str) -> None:
        """Fail the future with an error message."""
        if not self.done:
            self.done = True
            self.error = error

    def wait(self, max_events: int = 10_000_000) -> Any:
        """Run the simulator until resolution; raise on rejection.

        The run stops at the exact event that resolves the future, so
        unrelated far-future events (e.g. timeout guards) stay queued and
        the clock does not overshoot.
        """
        self._sim.run(max_events=max_events, stop_when=lambda: self.done)
        if not self.done:
            raise CircuitError("simulation quiesced before operation completed")
        if self.error is not None:
            raise CircuitError(self.error)
        return self.value


class Controller:
    """Programmatic + textual control of one onion proxy."""

    def __init__(self, proxy: OnionProxy) -> None:
        self.proxy = proxy
        self.sim = proxy.sim
        self._event_log: list[str] = []
        self._subscribed: set[str] = set()
        self._event_listeners: list[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    # Programmatic API (what TingMeasurer uses)

    def build_circuit(
        self,
        path: list[RelayDescriptor] | list[str],
        timeout_ms: Milliseconds = 60_000.0,
    ) -> Circuit:
        """Build a circuit through ``path`` and wait for completion."""
        future = SimFuture(self.sim)

        def built(circuit: Circuit) -> None:
            self._emit(f"CIRC {circuit.circ_id} BUILT")
            future.resolve(circuit)

        def failed(circuit: Circuit, reason: str) -> None:
            self._emit(f"CIRC {circuit.circ_id} FAILED REASON={reason}")
            future.reject(reason)

        self.proxy.create_circuit(path, built, failed, timeout_ms=timeout_ms)
        return future.wait()

    def open_stream(
        self,
        circuit: Circuit,
        address: str,
        port: int,
        timeout_ms: Milliseconds = 30_000.0,
    ) -> TorStream:
        """Attach a stream to ``circuit`` and wait until it connects."""
        future = SimFuture(self.sim)

        def connected(stream: TorStream) -> None:
            self._emit(f"STREAM {stream.stream_id} SUCCEEDED {address}:{port}")
            future.resolve(stream)

        def failed(reason: str) -> None:
            self._emit(f"STREAM FAILED {address}:{port} REASON={reason}")
            future.reject(reason)

        self.proxy.open_stream(
            circuit, address, port, connected, failed, timeout_ms=timeout_ms
        )
        try:
            return future.wait()
        except CircuitError as exc:
            raise StreamError(str(exc)) from None

    def close_circuit(self, circuit: Circuit) -> None:
        """Tear down ``circuit``."""
        self.proxy.close_circuit(circuit)
        self._emit(f"CIRC {circuit.circ_id} CLOSED")

    def truncate_circuit(
        self,
        circuit: Circuit,
        to_hop: int,
        timeout_ms: Milliseconds = 60_000.0,
    ) -> Circuit:
        """Truncate ``circuit`` so hop ``to_hop`` is its last relay."""
        future = SimFuture(self.sim)

        def truncated(circ: Circuit) -> None:
            self._emit(f"CIRC {circ.circ_id} TRUNCATED LEN={len(circ.path)}")
            future.resolve(circ)

        self.proxy.truncate_circuit(circuit, to_hop, truncated, timeout_ms)
        return future.wait()

    def extend_circuit(
        self,
        circuit: Circuit,
        additional_path: list[RelayDescriptor] | list[str],
        timeout_ms: Milliseconds = 60_000.0,
    ) -> Circuit:
        """Extend a built circuit in place and wait for completion."""
        future = SimFuture(self.sim)

        def built(circ: Circuit) -> None:
            self._emit(f"CIRC {circ.circ_id} BUILT")
            future.resolve(circ)

        def failed(circ: Circuit, reason: str) -> None:
            self._emit(f"CIRC {circ.circ_id} FAILED REASON={reason}")
            future.reject(reason)

        self.proxy.extend_circuit(circuit, additional_path, built, failed, timeout_ms)
        return future.wait()

    def get_network_statuses(self) -> list[RelayDescriptor]:
        """All relays in the proxy's current consensus (Stem's
        ``get_network_statuses``)."""
        return list(self.proxy.consensus.routers.values())

    def run_for(self, duration_ms: Milliseconds) -> None:
        """Advance the simulation by ``duration_ms``."""
        self.sim.run(until=self.sim.now + duration_ms)

    # ------------------------------------------------------------------
    # Events

    def add_event_listener(self, listener: Callable[[str], None]) -> None:
        """Receive controller event lines (CIRC/STREAM) as they happen."""
        self._event_listeners.append(listener)

    def _emit(self, event: str) -> None:
        kind = event.split(" ", 1)[0]
        if not self._subscribed or kind in self._subscribed:
            self._event_log.append(event)
        for listener in self._event_listeners:
            listener(event)

    def drain_events(self) -> list[str]:
        """Return and clear the buffered event lines."""
        events, self._event_log = self._event_log, []
        return events

    # ------------------------------------------------------------------
    # Line protocol (Tor control-port grammar, simplified)

    def raw_command(self, line: str) -> str:
        """Execute one control-port command line and return the reply."""
        line = line.strip()
        if not line:
            raise ControlProtocolError("empty command")
        verb, _, rest = line.partition(" ")
        verb = verb.upper()
        handler = getattr(self, f"_cmd_{verb.lower()}", None)
        if handler is None:
            return f'510 Unrecognized command "{verb}"'
        return handler(rest.strip())

    def _cmd_extendcircuit(self, args: str) -> str:
        parts = args.split()
        if len(parts) != 2:
            return "512 syntax: EXTENDCIRCUIT 0 fp1,fp2,..."
        circ_id_text, path_text = parts
        if circ_id_text != "0":
            return "552 only new circuits (id 0) are supported"
        fingerprints = [fp for fp in path_text.split(",") if fp]
        try:
            circuit = self.build_circuit(fingerprints)
        except CircuitError as exc:
            return f"552 {exc}"
        return f"250 EXTENDED {circuit.circ_id}"

    def _cmd_closecircuit(self, args: str) -> str:
        try:
            circ_id = int(args.split()[0])
        except (ValueError, IndexError):
            return "512 syntax: CLOSECIRCUIT <id>"
        circuit = self.proxy.circuits.get(circ_id)
        if circuit is None:
            return f"552 Unknown circuit {circ_id}"
        self.close_circuit(circuit)
        return "250 OK"

    def _cmd_setevents(self, args: str) -> str:
        self._subscribed = {kind.upper() for kind in args.split()}
        return "250 OK"

    def _cmd_getinfo(self, args: str) -> str:
        if args == "circuit-status":
            lines = [
                f"{c.circ_id} {c.state.upper()} "
                + ",".join(d.fingerprint for d in c.path)
                for c in self.proxy.circuits.values()
                if c.state in ("building", "built")
            ]
            body = "\n".join(lines)
            return f"250+circuit-status=\n{body}\n.\n250 OK"
        if args == "ns/all":
            lines = [
                f"r {d.nickname} {d.fingerprint} {d.address} {d.or_port}"
                for d in self.proxy.consensus.routers.values()
            ]
            body = "\n".join(lines)
            return f"250+ns/all=\n{body}\n.\n250 OK"
        return f'552 Unrecognized key "{args}"'

    def _cmd_signal(self, args: str) -> str:
        if args.upper() == "NEWNYM":
            return "250 OK"
        return f'552 Unrecognized signal "{args}"'
