"""A from-scratch Tor overlay running on the netsim substrate.

This package implements the pieces of Tor that Ting's measurement path
exercises: fixed-size cells with layered (onion) encryption and running
digests, relay descriptors and a directory/consensus, relays with
per-cell forwarding delays, an onion-proxy client that builds circuits
hop by hop and attaches streams, bandwidth-weighted path selection with
Tor's safety constraints, and a Stem-like controller speaking a
line-oriented control protocol.

Nothing here is cryptographically secure — the handshake and ciphers are
deterministic keyed-hash constructions — but the *protocol mechanics*
(cell formats, key schedules per hop, digest checking, circuit IDs,
stream multiplexing, exit policies) follow Tor's design, so the latency
behaviour Ting measures is structurally faithful.
"""

from repro.tor.cells import Cell, CellCommand, RelayCommand, RelayCellBody
from repro.tor.crypto import LayerCipher, KeyMaterial, ClientHandshake, ServerHandshake
from repro.tor.directory import (
    RelayDescriptor,
    RelayFlag,
    ExitPolicy,
    ExitRule,
    DirectoryAuthority,
    DirectoryQuorum,
    Consensus,
)
from repro.tor.relay import (
    Relay,
    ForwardingDelayModel,
    DiurnalForwardingDelayModel,
    ServiceQueue,
)
from repro.tor.client import OnionProxy, Circuit, TorStream
from repro.tor.pathsel import PathSelector, PathConstraints
from repro.tor.control import Controller

__all__ = [
    "Cell",
    "CellCommand",
    "RelayCommand",
    "RelayCellBody",
    "LayerCipher",
    "KeyMaterial",
    "ClientHandshake",
    "ServerHandshake",
    "RelayDescriptor",
    "RelayFlag",
    "ExitPolicy",
    "ExitRule",
    "DirectoryAuthority",
    "DirectoryQuorum",
    "Consensus",
    "Relay",
    "ForwardingDelayModel",
    "DiurnalForwardingDelayModel",
    "ServiceQueue",
    "OnionProxy",
    "Circuit",
    "TorStream",
    "PathSelector",
    "PathConstraints",
    "Controller",
]
